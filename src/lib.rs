//! Workspace root crate for the JoinBoost reproduction.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests under `tests/`. The actual library code
//! lives in the `joinboost*` crates; see `DESIGN.md` for the map.

pub use joinboost;
pub use joinboost_baselines as baselines;
pub use joinboost_datagen as datagen;
pub use joinboost_engine as engine;
pub use joinboost_graph as graph;
pub use joinboost_semiring as semiring;
pub use joinboost_sql as sql;
