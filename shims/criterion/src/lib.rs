//! Minimal stand-in for `criterion`: a wall-clock sampling micro-benchmark
//! harness with criterion-compatible configuration and macros.
//!
//! Each `bench_function` warms up for `warm_up_time`, then takes
//! `sample_size` samples inside `measurement_time`, auto-scaling the
//! per-sample iteration count. It reports min / median / mean / max
//! per-iteration latency on stdout in a stable, greppable format:
//!
//! ```text
//! bench_name                time: [min 1.234 µs  median 1.301 µs  mean 1.310 µs  max 1.402 µs]  (N samples × M iters)
//! ```

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let warm_up_started = Instant::now();
        let mut b = Bencher {
            mode: Mode::WarmUp {
                until: warm_up_started + self.warm_up_time,
                iters_per_call: 1,
                calls: 0,
                total_iters: 0,
            },
        };
        // Warm-up: repeatedly invoke the closure, growing the per-call
        // iteration count, until the warm-up budget is spent.
        loop {
            f(&mut b);
            match &b.mode {
                Mode::WarmUp { until, .. } if Instant::now() < *until => {}
                _ => break,
            }
        }
        let iters_per_sample = match &b.mode {
            Mode::WarmUp { total_iters, .. } => {
                // Aim for sample_size samples inside measurement_time based
                // on the observed warm-up rate (actual iterations over the
                // actual elapsed time, not the final per-call count).
                let rate = (*total_iters).max(1) as f64
                    / warm_up_started.elapsed().as_secs_f64().max(1e-9);
                let per_sample =
                    rate * self.measurement_time.as_secs_f64() / self.sample_size as f64;
                (per_sample.ceil() as u64).max(1)
            }
            _ => 1,
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.mode = Mode::Measure {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if let Mode::Measure { elapsed, iters } = &b.mode {
                samples.push(elapsed.as_secs_f64() / *iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} time: [min {}  median {}  mean {}  max {}]  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

enum Mode {
    WarmUp {
        until: Instant,
        iters_per_call: u64,
        calls: u64,
        total_iters: u64,
    },
    Measure {
        iters: u64,
        elapsed: Duration,
    },
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match &mut self.mode {
            Mode::WarmUp {
                iters_per_call,
                calls,
                total_iters,
                ..
            } => {
                for _ in 0..*iters_per_call {
                    black_box(f());
                }
                *calls += 1;
                *total_iters += *iters_per_call;
                if *calls % 8 == 0 {
                    *iters_per_call = (*iters_per_call * 2).min(1 << 20);
                }
            }
            Mode::Measure { iters, elapsed } => {
                let t0 = Instant::now();
                for _ in 0..*iters {
                    black_box(f());
                }
                *elapsed = t0.elapsed();
            }
        }
    }
}

/// Criterion-compatible group declaration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Criterion-compatible main entry point for `harness = false` benches.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(10))
            .measurement_time(Duration::from_millis(50));
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }
}
