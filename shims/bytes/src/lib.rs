//! Minimal stand-in for the `bytes` crate: a growable byte buffer
//! ([`BytesMut`]) with little-endian `put_*` writers ([`BufMut`]),
//! cursor-style readers ([`Buf`], consuming from the front like the real
//! crate), and `split_to`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer backed by a `Vec<u8>` plus a read cursor.
///
/// Writers append at the back; readers ([`Buf`]) consume from the front.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    inner: Vec<u8>,
    read: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
            read: 0,
        }
    }

    pub fn from_vec(v: Vec<u8>) -> Self {
        BytesMut { inner: v, read: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.inner.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        self.inner.clear();
        self.read = 0;
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Split off and return the first `at` unread bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.inner[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut {
            inner: head,
            read: 0,
        }
    }

    /// Freeze into an immutable byte container (here: just the vector).
    pub fn freeze(self) -> Bytes {
        Bytes {
            inner: self.inner[self.read..].to_vec(),
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner[self.read..].to_vec()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner[self.read..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.inner[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut::from_vec(v)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut::from_vec(v.to_vec())
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.to_vec()
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for BytesMut {}

/// Immutable byte container produced by [`BytesMut::freeze`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Little-endian writers.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian readers consuming from the front. Panics on underflow,
/// like `bytes`.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn advance(&mut self, cnt: usize) {
        let mut scratch = vec![0u8; cnt];
        self.copy_to_slice(&mut scratch);
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.inner[self.read..self.read + dst.len()]);
        self.read += dst.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD);
        buf.put_u64_le(42);
        buf.put_i64_le(-5);
        buf.put_f64_le(1.5);
        buf.put_slice(b"ok");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -5);
        assert_eq!(r.get_f64_le(), 1.5);
        let mut s = [0u8; 2];
        r.copy_to_slice(&mut s);
        assert_eq!(&s, b"ok");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytesmut_reads_consume_front() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(3);
        buf.put_slice(b"abcdef");
        assert_eq!(buf.get_u32_le(), 3);
        let head = buf.split_to(3);
        assert_eq!(&head[..], b"abc");
        assert_eq!(&buf[..], b"def");
        assert_eq!(buf.len(), 3);
        // Writes after reads still append at the back.
        buf.put_u8(b'!');
        assert_eq!(&buf[..], b"def!");
    }
}
