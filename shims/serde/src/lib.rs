//! Minimal stand-in for `serde`: empty marker traits plus derives.
//!
//! Nothing in this workspace currently serializes — the derives on model
//! and parameter types exist so models stay serialization-ready. The shim
//! keeps those derives compiling without pulling in the real serde; when a
//! registry is available, swapping the workspace dependency back to real
//! serde requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;

    /// Owned-deserialization alias mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(bool, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl Serialize for str {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::HashMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
