//! Minimal, dependency-free stand-in for the `rand` crate (0.9 API names).
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], uniform sampling through
//! [`Rng::random`] / [`Rng::random_range`], and Fisher–Yates
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** with a
//! SplitMix64 seed expansion — high quality for test/data-gen purposes and
//! fully deterministic per seed.

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of type `T` (full range for integers, `[0, 1)` for
    /// floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from a (half-open or inclusive) range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly without extra parameters.
pub trait Standard {
    fn from_rng(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = <$t as Standard>::from_rng(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded through SplitMix64 — deterministic and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Fisher–Yates shuffling on slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.random_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = r.random_range(1..=5i64);
            assert!((1..=5).contains(&y));
            let f = r.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u = r.random::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
