//! Minimal stand-in for `parking_lot`: `Mutex` / `RwLock` with the
//! non-poisoning `lock()` / `read()` / `write()` API, backed by `std::sync`.
//! Poisoned std locks are recovered transparently, matching parking_lot's
//! behaviour of not exposing poisoning at all.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable paired with [`Mutex`]. The API is `std`-style
/// (`wait` consumes and returns the guard) because the shim's guards
/// *are* std guards; poisoned guards are recovered transparently like
/// everywhere else in the shim.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard and block until notified; relocks
    /// before returning. Spurious wakeups are possible — callers loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
