//! Minimal stand-in for `crossbeam`'s scoped threads, layered over
//! `std::thread::scope` (stable since 1.63). Spawn closures receive a dummy
//! `&ScopeRef` argument to match crossbeam's `|scope| ...` signature (all
//! call sites in this workspace spawn with `|_|`).

pub mod thread {
    use std::thread as stdthread;

    /// Result type matching `crossbeam::thread::scope`.
    pub type ScopeResult<T> = stdthread::Result<T>;

    /// The scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Dummy argument passed to spawned closures (crossbeam passes a
    /// nested scope there; this workspace never uses it).
    pub struct ScopeRef;

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> stdthread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&ScopeRef) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&ScopeRef)),
            }
        }
    }

    /// Run `f` with a scope in which borrowing, scoped threads can be
    /// spawned; all are joined before `scope` returns.
    ///
    /// Unlike crossbeam this never returns `Err`: panics in threads whose
    /// handles were joined are reported through the handle, and panics in
    /// unjoined threads propagate (abort the scope) as in `std`.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|x| s.spawn(move |_| *x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
