//! Deterministic RNG for the proptest shim (xorshift* variant).

#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        let mixed = seed ^ 0x9E37_79B9_7F4A_7C15;
        TestRng {
            // xorshift* fixes the all-zero state, which would make every
            // strategy constant; remap it to an arbitrary nonzero state.
            state: if mixed == 0 {
                0x0123_4567_89AB_CDEF
            } else {
                mixed
            },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}
