//! The `Strategy` trait and combinators for the proptest shim.

use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one value directly.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Resample until `pred` accepts, up to an attempt cap; panics with
    /// `reason` if the cap is exhausted (there is no case-rejection
    /// bookkeeping in the shim).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    fn prop_flat_map<S2: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `depth` levels of `recurse` over the base
    /// strategy. `_desired_size` / `_expected_branch` exist for signature
    /// compatibility and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            // Half the draws stay shallow so sizes remain bounded.
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted 1000 attempts without a value satisfying: {}",
            self.reason
        );
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// --- numeric range strategies ---------------------------------------------

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start() as i128, *self.end() as i128);
                assert!(s <= e, "empty range strategy");
                // Span in u128: full-width ranges like i64::MIN..=i64::MAX
                // would overflow u64 here.
                let span = (e - s) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (s + draw as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                s + (rng.unit_f64() as $t) * (e - s)
            }
        }
    )*};
}

float_strategy!(f32, f64);

// --- tuple strategies ------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// --- string strategies from a regex subset ---------------------------------

/// `&str` strategies interpret the string as a small regex subset:
/// literal characters, character classes `[a-z0-9_]` (ranges and single
/// characters, no negation), and quantifiers `{n}`, `{m,n}`, `?`, `*`,
/// `+` (the unbounded ones capped at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum PatternItem {
    Literal(char),
    Class(Vec<(char, char)>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut prev: Option<char> = None;
    let mut pending_dash = false;
    for c in chars.by_ref() {
        match c {
            ']' => {
                if let Some(p) = prev.take() {
                    ranges.push((p, p));
                }
                if pending_dash {
                    ranges.push(('-', '-'));
                }
                return ranges;
            }
            '-' if prev.is_some() => pending_dash = true,
            c => {
                if pending_dash {
                    let lo = prev.take().expect("range start");
                    assert!(lo <= c, "invalid class range {lo}-{c}");
                    ranges.push((lo, c));
                    pending_dash = false;
                } else {
                    if let Some(p) = prev.replace(c) {
                        ranges.push((p, p));
                    }
                }
            }
        }
    }
    panic!("unterminated character class in pattern");
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            if let Some((lo, hi)) = spec.split_once(',') {
                let lo: usize = lo.trim().parse().expect("bad quantifier");
                let hi: usize = hi.trim().parse().expect("bad quantifier");
                (lo, hi)
            } else {
                let n: usize = spec.trim().parse().expect("bad quantifier");
                (n, n)
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => PatternItem::Class(parse_class(&mut chars)),
            '\\' => PatternItem::Literal(chars.next().expect("dangling escape")),
            c => PatternItem::Literal(c),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        let count = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..count {
            match &item {
                PatternItem::Literal(c) => out.push(*c),
                PatternItem::Class(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    for (a, b) in ranges {
                        let span = (*b as u64) - (*a as u64) + 1;
                        if pick < span {
                            out.push(char::from_u32(*a as u32 + pick as u32).unwrap());
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()), "bad len: {s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = "[a-z][a-z0-9_]{0,5}".generate(&mut rng);
            assert!(!t.is_empty() && t.len() <= 6);
            assert!(t.chars().next().unwrap().is_ascii_lowercase());
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn ranges_tuples_unions() {
        let mut rng = TestRng::new(7);
        let strat = (0i64..10, -1.0f64..1.0).prop_map(|(i, f)| (i, f));
        for _ in 0..100 {
            let (i, f) = strat.generate(&mut rng);
            assert!((0..10).contains(&i));
            assert!((-1.0..1.0).contains(&f));
        }
        let u = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_bounded() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::new(5);
        let strat = Just(T::Leaf).prop_recursive(3, 8, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }
}
