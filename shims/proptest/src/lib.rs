//! Minimal stand-in for `proptest`: deterministic random-input property
//! testing without shrinking.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_filter` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, strategies for numeric ranges, tuples,
//! collections, options, `Just`, `any::<T>()` and a character-class
//! regex subset for `&str` strategies, plus the [`proptest!`],
//! [`prop_oneof!`] and `prop_assert*!` macros.
//!
//! Failing cases are reported with their `Debug` representation instead of
//! being shrunk. Each test's RNG seed is derived from the test name (or
//! `PROPTEST_SEED` if set), so runs are reproducible.

pub mod rng;
pub mod strategy;

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Seed for a named test: `PROPTEST_SEED` env override, else a stable
    /// hash of the test name.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse() {
                return v;
            }
        }
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// Strategies for `any::<T>()`.
pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        /// Finite floats in a wide but well-behaved range.
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            (rng.unit_f64() - 0.5) * 2e6
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Size specification: an exact length or a range of lengths.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    (rng.next_u64() % span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose elements come from `element` and whose length comes
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some so optional branches are actually exercised.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` with probability 3/4, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: module-style access to the
    /// strategy constructors.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// The test macro: declares one `#[test]` function per property.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::rng::TestRng::new(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);
                )+
                let debug_repr = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} failed for inputs: {}",
                        case + 1, config.cases, debug_repr
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Union of same-valued strategies, uniformly weighted.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}
