//! Derive macros for the `serde` shim: emit empty marker-trait impls.
//!
//! Parses just enough of the item — its name and generic parameter names —
//! without `syn`, which is unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// `struct Foo<T: Bound, 'a> { .. }` → `("Foo", vec!["T", "'a"])`.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut tokens = input.into_iter().peekable();
    // Skip until the `struct` / `enum` / `union` keyword (past attributes
    // and visibility).
    let mut name = None;
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
                break;
            }
        }
    }
    let name = name.expect("serde_derive shim: could not find type name");

    // Collect generic parameter *names* (identifiers and lifetimes at
    // depth 1, before any `:` bound or `=` default).
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1i32;
            let mut expect_param = true;
            let mut lifetime_pending = false;
            while depth > 0 {
                let Some(tt) = tokens.next() else { break };
                match tt {
                    TokenTree::Punct(p) => match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 1 => expect_param = true,
                        '\'' if depth == 1 && expect_param => lifetime_pending = true,
                        _ => {}
                    },
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        if s == "const" {
                            continue; // next ident is the const param name
                        }
                        if lifetime_pending {
                            params.push(format!("'{s}"));
                            lifetime_pending = false;
                        } else {
                            params.push(s);
                        }
                        expect_param = false;
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::None => {}
                    _ => {}
                }
            }
        }
    }
    (name, params)
}

fn generics_decl(params: &[String], extra: Option<&str>) -> (String, String) {
    let mut decl: Vec<String> = extra.map(|e| e.to_string()).into_iter().collect();
    decl.extend(params.iter().cloned());
    let args = params.to_vec();
    let fmt = |v: &[String]| {
        if v.is_empty() {
            String::new()
        } else {
            format!("<{}>", v.join(", "))
        }
    };
    (fmt(&decl), fmt(&args))
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let (decl, args) = generics_decl(&params, None);
    format!("impl{decl} ::serde::Serialize for {name}{args} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_item(input);
    let (decl, args) = generics_decl(&params, Some("'de"));
    format!("impl{decl} ::serde::Deserialize<'de> for {name}{args} {{}}")
        .parse()
        .unwrap()
}
