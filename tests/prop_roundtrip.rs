//! Property tests across crates: SQL printer/parser round-trips,
//! semi-ring laws, and engine-mode agreement.

use proptest::prelude::*;

use joinboost_semiring::ring::SemiRing;
use joinboost_semiring::{ClassCountRing, GradientRing, VarianceRing};
use joinboost_sql::ast::{BinaryOp, Expr, OrderByItem, Query, SelectItem, TableRef, Value};
use joinboost_sql::{parse_query, parse_statement};

// ---------------------------------------------------------------------------
// SQL round-trip: parse(print(q)) == q
// ---------------------------------------------------------------------------

// Literals are non-negative: `-1` prints identically to `Neg(1)`, so the
// AST-level round-trip covers negation through the `Neg` node instead.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..1000).prop_map(Value::Int),
        (0.0f64..100.0).prop_map(|v| Value::Float((v * 64.0).round() / 64.0)),
        "[a-z]{1,6}".prop_map(Value::Str),
        Just(Value::Null),
    ]
}

/// Identifier strategy avoiding SQL reserved words.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("not a keyword", |s| {
        joinboost_sql::parse_expr(s)
            .map(|e| matches!(e, Expr::Column { .. }))
            .unwrap_or(false)
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Literal),
        ident().prop_map(Expr::col),
        (ident(), ident()).prop_map(|(t, c)| Expr::qcol(t, c)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::GtEq),
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(Expr::neg),
            inner.clone().prop_map(Expr::not),
            inner.clone().prop_map(|e| Expr::func("ABS", vec![e])),
            (inner.clone(), inner.clone()).prop_map(|(c, t)| Expr::Case {
                whens: vec![(c, t)],
                else_expr: None,
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner, any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
        ]
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec((arb_expr(), prop::option::of(ident())), 1..4),
        prop::option::of(ident()),
        prop::option::of(arb_expr()),
        prop::option::of((arb_expr(), any::<bool>())),
        prop::option::of(0u64..100),
    )
        .prop_map(|(items, from, where_clause, order, limit)| Query {
            items: items
                .into_iter()
                .map(|(expr, alias)| SelectItem { expr, alias })
                .collect(),
            from: from.map(TableRef::named),
            joins: Vec::new(),
            where_clause,
            group_by: Vec::new(),
            order_by: order
                .map(|(expr, desc)| vec![OrderByItem { expr, desc }])
                .unwrap_or_default(),
            limit,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_roundtrips(e in arb_expr()) {
        let sql = format!("SELECT {e}");
        let parsed = parse_query(&sql).expect("printed SQL must parse");
        prop_assert_eq!(&parsed.items[0].expr, &e, "printed: {}", sql);
    }

    #[test]
    fn query_roundtrips(q in arb_query()) {
        let sql = q.to_string();
        let parsed = parse_query(&sql).expect("printed SQL must parse");
        prop_assert_eq!(parsed, q, "printed: {}", sql);
    }

    #[test]
    fn statement_roundtrips(q in arb_query(), name in ident()) {
        let stmt = joinboost_sql::ast::Statement::CreateTableAs {
            name,
            query: q,
            or_replace: true,
        };
        let sql = stmt.to_string();
        let parsed = parse_statement(&sql).expect("printed SQL must parse");
        prop_assert_eq!(parsed, stmt);
    }
}

// ---------------------------------------------------------------------------
// Semi-ring laws on random annotations
// ---------------------------------------------------------------------------

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs())))
}

fn check_laws<R: SemiRing>(ring: &R, xs: &[Vec<f64>]) {
    let (a, b, c) = (&xs[0], &xs[1], &xs[2]);
    // ⊕ commutative + associative.
    assert!(close(&ring.add(a, b), &ring.add(b, a)));
    assert!(close(
        &ring.add(&ring.add(a, b), c),
        &ring.add(a, &ring.add(b, c))
    ));
    // ⊗ commutative + associative.
    assert!(close(&ring.mul(a, b), &ring.mul(b, a)));
    assert!(close(
        &ring.mul(&ring.mul(a, b), c),
        &ring.mul(a, &ring.mul(b, c))
    ));
    // Identities.
    assert!(close(&ring.mul(a, &ring.one()), a));
    assert!(close(&ring.add(a, &ring.zero()), a));
    assert!(close(&ring.mul(a, &ring.zero()), &ring.zero()));
    // Distributivity: a ⊗ (b ⊕ c) = (a ⊗ b) ⊕ (a ⊗ c).
    assert!(close(
        &ring.mul(a, &ring.add(b, c)),
        &ring.add(&ring.mul(a, b), &ring.mul(a, c))
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn variance_ring_laws(vals in prop::collection::vec(-8.0f64..8.0, 9)) {
        let xs: Vec<Vec<f64>> = vals.chunks(3).map(<[f64]>::to_vec).collect();
        check_laws(&VarianceRing, &xs);
    }

    #[test]
    fn gradient_ring_laws(vals in prop::collection::vec(-8.0f64..8.0, 6)) {
        let xs: Vec<Vec<f64>> = vals.chunks(2).map(<[f64]>::to_vec).collect();
        check_laws(&GradientRing, &xs);
    }

    #[test]
    fn class_count_ring_laws(vals in prop::collection::vec(-8.0f64..8.0, 12)) {
        let xs: Vec<Vec<f64>> = vals.chunks(4).map(<[f64]>::to_vec).collect();
        check_laws(&ClassCountRing::new(3), &xs);
    }

    #[test]
    fn variance_lift_is_add_to_mul_preserving(d1 in -50.0f64..50.0, d2 in -50.0f64..50.0) {
        let ring = VarianceRing;
        let lhs = ring.lift(d1 + d2);
        let rhs = ring.mul(&ring.lift(d1), &ring.lift(d2));
        prop_assert!(close(&lhs, &rhs));
    }

    #[test]
    fn variance_matches_direct_computation(ys in prop::collection::vec(-100.0f64..100.0, 1..40)) {
        let ring = VarianceRing;
        let agg = ring.sum_lifted(ys.iter());
        let via_ring = joinboost_semiring::variance(agg[0], agg[1], agg[2]);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let direct: f64 = ys.iter().map(|y| (y - mean) * (y - mean)).sum();
        prop_assert!((via_ring - direct).abs() < 1e-6 * (1.0 + direct.abs()));
    }
}
