//! The paper's worked examples, end to end across crates.

use joinboost::messages::{Factorizer, NodeContext, Pred};
use joinboost::sqlgen::RingKind;
use joinboost::tree::{Split, SplitCondition};
use joinboost::Dataset;
use joinboost_engine::{Column, Database, Datum, Table};
use joinboost_graph::{JoinGraph, Multiplicity};
use joinboost_semiring::{ring::SemiRing, VarianceRing};
use joinboost_sql::ast::Expr;

/// Figure 1's relations: R(A,B) with target B, S(A,C), T(A,D).
fn figure1_db() -> (Database, JoinGraph) {
    let db = Database::in_memory();
    db.create_table(
        "r",
        Table::from_columns(vec![
            ("a", Column::int(vec![1, 1, 2, 2])),
            ("b", Column::float(vec![2.0, 3.0, 1.0, 2.0])),
        ]),
    )
    .unwrap();
    db.create_table(
        "s",
        Table::from_columns(vec![
            ("a", Column::int(vec![1, 2, 2])),
            ("c", Column::int(vec![2, 1, 3])),
        ]),
    )
    .unwrap();
    db.create_table(
        "t",
        Table::from_columns(vec![
            ("a", Column::int(vec![1, 1, 2])),
            ("d", Column::int(vec![1, 2, 2])),
        ]),
    )
    .unwrap();
    let mut g = JoinGraph::new();
    g.add_relation("r", &[]).unwrap();
    g.add_relation("s", &["c"]).unwrap();
    g.add_relation("t", &["d"]).unwrap();
    g.add_edge_with("r", "s", &["a"], Multiplicity::ManyToMany)
        .unwrap();
    g.add_edge_with("s", "t", &["a"], Multiplicity::ManyToMany)
        .unwrap();
    (db, g)
}

#[test]
fn example_1_variance_is_4_without_materializing() {
    // Naive path: materialize R⋈ (8 rows) and compute the variance.
    let (db, g) = figure1_db();
    let joined = db
        .query("SELECT b FROM r JOIN s USING (a) JOIN t USING (a)")
        .unwrap();
    assert_eq!(joined.num_rows(), 8, "Figure 1b join has 8 tuples");
    let agg = db
        .query(
            "SELECT COUNT(*) AS c, SUM(b) AS s, SUM(b * b) AS q \
             FROM r JOIN s USING (a) JOIN t USING (a)",
        )
        .unwrap();
    let (c, s, q) = (
        agg.scalar_f64("c").unwrap(),
        agg.scalar_f64("s").unwrap(),
        agg.scalar_f64("q").unwrap(),
    );
    assert_eq!((c, s, q), (8.0, 16.0, 36.0), "γ(R⋈) = (8, 16, 36)");
    assert_eq!(q - s * s / c, 4.0, "variance = Q − S²/C = 4");

    // Factorized path: message passing computes (8, 16) with no join.
    let set = Dataset::new(&db, g, "r", "b").unwrap();
    let mut fx = Factorizer::new(&set, RingKind::Variance);
    fx.set_annotation(set.target_rel(), vec![Expr::int(1), Expr::col("b")]);
    let (fc, fs) = fx.totals(set.target_rel(), &NodeContext::root()).unwrap();
    assert_eq!((fc, fs), (8.0, 16.0));
}

#[test]
fn example_4_update_relation_via_add_to_mul() {
    // Figure 2: the tree (σ_{D≤1}, p=2.5), (σ_{D>1 ∧ C≤1}, p=1.5),
    // (σ_{D>1 ∧ C>1}, p=2). The residual-lifted annotations of the
    // materialized join must equal lift(y) ⊗ lift(−p), leaf by leaf.
    let ring = VarianceRing;
    type LeafPred = fn(i64, i64) -> bool;
    let leaves: [(f64, LeafPred); 3] = [
        (2.5, |_c, d| d <= 1),
        (1.5, |c, d| d > 1 && c <= 1),
        (2.0, |c, d| d > 1 && c > 1),
    ];
    let (db, _) = figure1_db();
    let joined = db
        .query("SELECT b, c, d FROM r JOIN s USING (a) JOIN t USING (a)")
        .unwrap();
    for i in 0..joined.num_rows() {
        let y = joined.column(None, "b").unwrap().f64_at(i).unwrap();
        let c = joined.column(None, "c").unwrap().get(i).as_i64().unwrap();
        let d = joined.column(None, "d").unwrap().get(i).as_i64().unwrap();
        let p = leaves.iter().find(|(_, m)| m(c, d)).expect("exhaustive").0;
        // Naive: lift the materialized residual.
        let naive = ring.lift(y - p);
        // Factorized: lift(y) ⊗ lift(−p) (Proposition 4.1).
        let fact = ring.mul(&ring.lift(y), &ring.lift(-p));
        for (a, b) in naive.iter().zip(&fact) {
            assert!((a - b).abs() < 1e-9, "row {i}: {naive:?} != {fact:?}");
        }
    }
}

#[test]
fn example_3_and_7_message_sharing_between_queries_and_nodes() {
    // γ_C and γ_D share the message m_{R→S}; after a split on D (in T),
    // messages from R's side are reused by both children.
    let (db, g) = figure1_db();
    let set = Dataset::new(&db, g, "r", "b").unwrap();
    let mut fx = Factorizer::new(&set, RingKind::Variance);
    fx.set_annotation(set.target_rel(), vec![Expr::int(1), Expr::col("b")]);
    let s_rel = set.graph.rel_id("s").unwrap();
    let t_rel = set.graph.rel_id("t").unwrap();
    let ctx = NodeContext::root();
    let _gc = fx.absorb(s_rel, None, &ctx).unwrap();
    let after_c = fx.stats.message_queries;
    let _gd = fx.absorb(t_rel, None, &ctx).unwrap();
    let after_d = fx.stats.message_queries;
    // γ_D needed m_{S→T}, but reused m_{R→S} from γ_C: exactly one new
    // message (Example 3's reusable message m1).
    assert_eq!(after_d - after_c, 1);

    // Example 7: split on D (in T); messages R→S and S→T are unchanged for
    // the children (they flow *away* from T), only T-side messages differ.
    let split = Split {
        feature: "d".into(),
        relation: "t".into(),
        cond: SplitCondition::LtEq(1.0),
        default_left: false,
    };
    let child = ctx.with_pred(t_rel, Pred::from_split(&split, false));
    let before = fx.stats.message_queries;
    let _ = fx.absorb(t_rel, None, &child).unwrap();
    let new_msgs = fx.stats.message_queries - before;
    assert_eq!(new_msgs, 0, "both upstream messages hit the cache");
    assert!(fx.stats.cache_hits > 0);
}

#[test]
fn engine_backends_agree_on_query_results() {
    // Same SQL on columnar, row, compressed and disk-backed engines.
    use joinboost_engine::EngineConfig;
    let queries = [
        "SELECT a, SUM(b) AS s, COUNT(*) AS c FROM r GROUP BY a ORDER BY a",
        "SELECT c, SUM(b) AS s FROM r JOIN s USING (a) GROUP BY c ORDER BY c",
        "SELECT COUNT(*) AS n FROM r JOIN s USING (a) JOIN t USING (a) WHERE d > 1",
        "SELECT a FROM r WHERE b IN (2.0, 3.0) GROUP BY a ORDER BY a",
    ];
    let configs = [
        EngineConfig::duckdb_mem(),
        EngineConfig::dbms_x_row(),
        EngineConfig::duckdb_disk(),
        EngineConfig::d_swap(),
    ];
    let mut reference: Vec<Option<Vec<Vec<Datum>>>> = vec![None; queries.len()];
    for config in configs {
        let db = Database::new(config);
        let (src, _) = figure1_db();
        for name in ["r", "s", "t"] {
            db.create_table(name, src.snapshot(name).unwrap()).unwrap();
        }
        for (qi, q) in queries.iter().enumerate() {
            let t = db.query(q).unwrap();
            let rows: Vec<Vec<Datum>> = (0..t.num_rows()).map(|i| t.row(i)).collect();
            match &reference[qi] {
                None => reference[qi] = Some(rows),
                Some(r) => {
                    assert_eq!(r.len(), rows.len(), "query {q}");
                    for (a, b) in r.iter().zip(&rows) {
                        for (x, y) in a.iter().zip(b) {
                            assert_eq!(x.as_f64(), y.as_f64(), "query {q}");
                        }
                    }
                }
            }
        }
    }
}
