//! Extended coverage: engine join edge cases, theta joins, binary
//! classification through the gradient semi-ring, depth-wise growth, and
//! the missing-join-key extension (Appendix B.1 / D.2).

#![allow(clippy::field_reassign_with_default)]

use joinboost::predict::{materialize_features, targets};
use joinboost::{train_decision_tree, train_gbm, Dataset, Growth, TrainParams};
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::{Column, Database, Datum, Table};
use joinboost_graph::JoinGraph;
use joinboost_semiring::Objective;

fn two_tables() -> Database {
    let db = Database::in_memory();
    db.create_table(
        "l",
        Table::from_columns(vec![
            ("k", Column::int(vec![1, 2, 3])),
            ("x", Column::int(vec![10, 20, 30])),
        ]),
    )
    .unwrap();
    db.create_table(
        "r",
        Table::from_columns(vec![
            ("k", Column::int(vec![2, 3, 4])),
            ("y", Column::int(vec![200, 300, 400])),
        ]),
    )
    .unwrap();
    db
}

#[test]
fn full_outer_join_keeps_both_sides() {
    let db = two_tables();
    let t = db
        .query("SELECT k, x, y FROM l FULL JOIN r USING (k) ORDER BY k")
        .unwrap();
    assert_eq!(t.num_rows(), 4);
    // k=1 has NULL y; k=4 has NULL x but a real merged key.
    assert_eq!(t.column(None, "k").unwrap().get(0), Datum::Int(1));
    assert_eq!(t.column(None, "y").unwrap().get(0), Datum::Null);
    assert_eq!(t.column(None, "k").unwrap().get(3), Datum::Int(4));
    assert_eq!(t.column(None, "x").unwrap().get(3), Datum::Null);
    assert_eq!(t.column(None, "y").unwrap().get(3), Datum::Int(400));
}

#[test]
fn theta_join_on_predicate() {
    let db = two_tables();
    // Inner join with an extra ON predicate (theta-join extension).
    let t = db
        .query("SELECT k, x, y FROM l JOIN r USING (k) ON y > 250 ORDER BY k")
        .unwrap();
    assert_eq!(t.num_rows(), 1);
    assert_eq!(t.column(None, "k").unwrap().get(0), Datum::Int(3));
}

#[test]
fn cross_product_via_bare_inner_join() {
    let db = two_tables();
    let t = db
        .query("SELECT COUNT(*) AS n FROM l JOIN r ON x + y > 0")
        .unwrap();
    assert_eq!(t.scalar_f64("n").unwrap(), 9.0, "3 x 3 nested-loop pairs");
}

#[test]
fn aggregates_ignore_nulls_and_count_star_does_not() {
    let db = Database::in_memory();
    db.create_table(
        "t",
        Table::from_columns(vec![(
            "v",
            Column::from_datums(&[Datum::Float(1.0), Datum::Null, Datum::Float(3.0)]),
        )]),
    )
    .unwrap();
    let r = db
        .query("SELECT COUNT(*) AS all_rows, COUNT(v) AS non_null, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM t")
        .unwrap();
    assert_eq!(r.scalar_f64("all_rows").unwrap(), 3.0);
    assert_eq!(r.scalar_f64("non_null").unwrap(), 2.0);
    assert_eq!(r.scalar_f64("s").unwrap(), 4.0);
    assert_eq!(r.scalar_f64("a").unwrap(), 2.0);
    assert_eq!(r.scalar_f64("lo").unwrap(), 1.0);
    assert_eq!(r.scalar_f64("hi").unwrap(), 3.0);
}

#[test]
fn binary_classification_via_logistic_gbm() {
    // A separable binary target over a star schema: train with the
    // logistic objective (gradient semi-ring); accuracy must beat the
    // base rate.
    let db = Database::in_memory();
    let n = 2000;
    let keys: Vec<i64> = (0..n).map(|i| (i % 50) as i64).collect();
    let dim_f: Vec<i64> = (0..50).map(|d| d % 10).collect();
    let labels: Vec<f64> = keys
        .iter()
        .map(|&k| ((dim_f[k as usize] >= 5) as i64) as f64)
        .collect();
    db.create_table(
        "fact",
        Table::from_columns(vec![
            ("k", Column::int(keys)),
            ("label", Column::float(labels)),
        ]),
    )
    .unwrap();
    db.create_table(
        "dim",
        Table::from_columns(vec![
            ("k", Column::int((0..50).collect())),
            ("f", Column::int(dim_f)),
        ]),
    )
    .unwrap();
    let mut g = JoinGraph::new();
    g.add_relation("fact", &[]).unwrap();
    g.add_relation("dim", &["f"]).unwrap();
    g.add_edge("fact", "dim", &["k"]).unwrap();
    let set = Dataset::new(&db, g, "fact", "label").unwrap();
    let mut params = TrainParams::default();
    params.objective = Objective::Logistic;
    params.num_iterations = 20;
    params.learning_rate = 0.5;
    params.num_leaves = 4;
    let model = train_gbm(&set, &params).unwrap();
    let eval = materialize_features(&set).unwrap();
    let ys = targets(&eval).unwrap();
    let probs = model.predict(&eval);
    let correct = ys
        .iter()
        .zip(&probs)
        .filter(|(&y, &p)| (p >= 0.5) == (y >= 0.5))
        .count();
    let acc = correct as f64 / ys.len() as f64;
    assert!(acc > 0.95, "logistic GBM accuracy {acc}");
    // Probabilities are actual probabilities.
    assert!(probs.iter().all(|p| (0.0..=1.0).contains(p)));
}

#[test]
fn depth_wise_growth_builds_balanced_trees() {
    let gen = favorita(&FavoritaConfig {
        fact_rows: 2000,
        dim_rows: 30,
        ..Default::default()
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.growth = Growth::DepthWise;
    params.num_leaves = 8;
    let (tree, _) = train_decision_tree(&set, &params).unwrap();
    // Depth-wise with 8 leaves on rich data: depth stays at 3 (balanced),
    // while best-first may go deeper.
    assert!(tree.num_leaves() <= 8);
    assert!(
        tree.max_depth() <= 3,
        "depth-wise must stay balanced, got depth {}",
        tree.max_depth()
    );
}

#[test]
fn missing_join_keys_with_left_outer_materialization() {
    // A fact row referencing a missing dimension key: the engine's LEFT
    // JOIN keeps it with NULL features, and prediction routes it through
    // the split's default branch.
    let db = Database::in_memory();
    db.create_table(
        "fact",
        Table::from_columns(vec![
            ("k", Column::int(vec![1, 2, 99])), // 99 missing in dim
            ("y", Column::float(vec![1.0, 2.0, 3.0])),
        ]),
    )
    .unwrap();
    db.create_table(
        "dim",
        Table::from_columns(vec![
            ("k", Column::int(vec![1, 2])),
            ("f", Column::int(vec![10, 20])),
        ]),
    )
    .unwrap();
    let t = db
        .query("SELECT f, y FROM fact LEFT JOIN dim USING (k) ORDER BY y")
        .unwrap();
    assert_eq!(t.num_rows(), 3);
    assert_eq!(t.column(None, "f").unwrap().get(2), Datum::Null);
    // Training applies the identity-message optimization, which assumes
    // no missing join keys (paper footnote 2): the dangling fact row is
    // still counted (as if the dimension were left-outer-joined with NULL
    // features), so leaf weights cover all 3 rows.
    let mut g = JoinGraph::new();
    g.add_relation("fact", &[]).unwrap();
    g.add_relation("dim", &["f"]).unwrap();
    g.add_edge("fact", "dim", &["k"]).unwrap();
    let set = Dataset::new(&db, g, "fact", "y").unwrap();
    let (tree, _) = train_decision_tree(&set, &TrainParams::default()).unwrap();
    let leaf_weight: f64 = tree
        .nodes
        .iter()
        .filter(|n| n.split.is_none())
        .map(|n| n.weight)
        .sum();
    assert_eq!(
        leaf_weight, 3.0,
        "identity optimization keeps dangling rows (FK-integrity assumption)"
    );
}

#[test]
fn string_categorical_features_split_by_equality() {
    let db = Database::in_memory();
    db.create_table(
        "fact",
        Table::from_columns(vec![
            ("k", Column::int(vec![0, 0, 1, 1, 2, 2])),
            ("y", Column::float(vec![1.0, 1.2, 8.0, 8.2, 1.1, 0.9])),
        ]),
    )
    .unwrap();
    db.create_table(
        "dim",
        Table::from_columns(vec![
            ("k", Column::int(vec![0, 1, 2])),
            (
                "color",
                Column::str(vec!["red".into(), "green".into(), "blue".into()]),
            ),
        ]),
    )
    .unwrap();
    let mut g = JoinGraph::new();
    g.add_relation("fact", &[]).unwrap();
    g.add_relation("dim", &["color"]).unwrap();
    g.add_edge("fact", "dim", &["k"]).unwrap();
    let set = Dataset::new(&db, g, "fact", "y").unwrap();
    let mut params = TrainParams::default();
    params.num_leaves = 2;
    let (tree, _) = train_decision_tree(&set, &params).unwrap();
    let split = tree.nodes[0].split.as_ref().expect("must split");
    assert_eq!(split.feature, "color");
    assert_eq!(
        split.cond,
        joinboost::SplitCondition::EqStr("green".into()),
        "the green group (y≈8) separates best"
    );
    // Left leaf mean ≈ 8.1.
    let left = &tree.nodes[tree.nodes[0].left];
    assert!((left.value - 8.1).abs() < 1e-9);
}

#[test]
fn quoted_identifiers_and_case_insensitivity() {
    let db = Database::in_memory();
    db.create_table(
        "weird",
        Table::from_columns(vec![("My Col", Column::int(vec![1, 2]))]),
    )
    .unwrap();
    let t = db.query("SELECT SUM(\"My Col\") AS s FROM WEIRD").unwrap();
    assert_eq!(t.scalar_f64("s").unwrap(), 3.0);
}
