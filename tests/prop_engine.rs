//! Property tests on the engine: row mode, compression, WAL, and the
//! factorized totals must never change query answers.

use proptest::prelude::*;

use joinboost::messages::{Factorizer, NodeContext};
use joinboost::sqlgen::RingKind;
use joinboost::Dataset;
use joinboost_engine::{Column, Database, EngineConfig, Table};
use joinboost_graph::JoinGraph;
use joinboost_sql::ast::Expr;

/// A random star: fact(k, y) with a dim(k, f).
#[derive(Debug, Clone)]
struct StarData {
    fact_keys: Vec<i64>,
    ys: Vec<f64>,
    dim_f: Vec<i64>,
}

fn arb_star() -> impl Strategy<Value = StarData> {
    (1usize..8).prop_flat_map(|dim_n| {
        (
            prop::collection::vec(0..dim_n as i64, 1..60),
            prop::collection::vec(-50.0f64..50.0, 60),
            prop::collection::vec(0i64..5, dim_n),
        )
            .prop_map(|(fact_keys, ys, dim_f)| {
                let n = fact_keys.len();
                StarData {
                    fact_keys,
                    ys: ys[..n].to_vec(),
                    dim_f,
                }
            })
    })
}

fn load_star(db: &Database, data: &StarData) {
    db.create_table(
        "fact",
        Table::from_columns(vec![
            ("k", Column::int(data.fact_keys.clone())),
            ("y", Column::float(data.ys.clone())),
        ]),
    )
    .unwrap();
    db.create_table(
        "dim",
        Table::from_columns(vec![
            ("k", Column::int((0..data.dim_f.len() as i64).collect())),
            ("f", Column::int(data.dim_f.clone())),
        ]),
    )
    .unwrap();
}

/// Rows for randomized grouped queries: NULL-able int key, NULL-able
/// string key, float value. Sizes include the empty table.
#[derive(Debug, Clone)]
struct GroupedData {
    rows: Vec<(Option<i64>, Option<u8>, f64)>,
}

fn arb_grouped() -> impl Strategy<Value = GroupedData> {
    prop::collection::vec(
        (
            prop::option::of(-3i64..3),
            prop::option::of(0u8..4),
            -100.0f64..100.0,
        ),
        0..50,
    )
    .prop_map(|rows| GroupedData { rows })
}

fn load_grouped(db: &Database, data: &GroupedData) {
    use joinboost_engine::Datum;
    let k: Vec<Datum> = data
        .rows
        .iter()
        .map(|(k, _, _)| k.map_or(Datum::Null, Datum::Int))
        .collect();
    let ks: Vec<Datum> = data
        .rows
        .iter()
        .map(|(_, s, _)| s.map_or(Datum::Null, |v| Datum::Str(format!("s{v}"))))
        .collect();
    let v: Vec<Datum> = data.rows.iter().map(|(_, _, v)| Datum::Float(*v)).collect();
    db.create_table(
        "t",
        Table::from_columns(vec![
            ("k", Column::from_datums(&k)),
            ("ks", Column::from_datums(&ks)),
            ("v", Column::from_datums(&v)),
        ]),
    )
    .unwrap();
}

fn star_graph() -> JoinGraph {
    let mut g = JoinGraph::new();
    g.add_relation("fact", &[]).unwrap();
    g.add_relation("dim", &["f"]).unwrap();
    g.add_edge("fact", "dim", &["k"]).unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Factorized totals equal the aggregate over the materialized join,
    /// for every random star instance.
    #[test]
    fn factorized_totals_match_naive_join(data in arb_star()) {
        let db = Database::in_memory();
        load_star(&db, &data);
        let naive = db
            .query("SELECT COUNT(*) AS c, SUM(y) AS s FROM fact JOIN dim USING (k)")
            .unwrap();
        let nc = naive.scalar_f64("c").unwrap_or(0.0);
        let ns = naive.scalar_f64("s").unwrap_or(0.0);
        let set = Dataset::new(&db, star_graph(), "fact", "y").unwrap();
        let mut fx = Factorizer::new(&set, RingKind::Variance);
        fx.set_annotation(set.target_rel(), vec![Expr::int(1), Expr::col("y")]);
        let (fc, fs) = fx.totals(set.target_rel(), &NodeContext::root()).unwrap();
        prop_assert!((fc - nc).abs() < 1e-9);
        prop_assert!((fs - ns).abs() < 1e-6 * (1.0 + ns.abs()));
    }

    /// Row-mode execution and every storage configuration return the same
    /// aggregate answers as the default columnar engine.
    #[test]
    fn engine_configurations_agree(data in arb_star()) {
        let sqls = [
            "SELECT f, COUNT(*) AS c, SUM(y) AS s FROM fact JOIN dim USING (k) GROUP BY f ORDER BY f",
            "SELECT COUNT(*) AS c FROM fact WHERE y > 0.0",
        ];
        let mut reference: Vec<Option<Vec<Vec<Option<f64>>>>> = vec![None; sqls.len()];
        for config in [
            EngineConfig::duckdb_mem(),
            EngineConfig::dbms_x_row(),
            EngineConfig {
                compression: false,
                ..EngineConfig::duckdb_mem()
            },
            EngineConfig::duckdb_disk(),
        ] {
            let db = Database::new(config);
            load_star(&db, &data);
            for (qi, sql) in sqls.iter().enumerate() {
                let t = db.query(sql).unwrap();
                let rows: Vec<Vec<Option<f64>>> = (0..t.num_rows())
                    .map(|i| t.columns.iter().map(|c| c.f64_at(i)).collect())
                    .collect();
                match &reference[qi] {
                    None => reference[qi] = Some(rows),
                    Some(r) => {
                        prop_assert_eq!(r.len(), rows.len());
                        for (a, b) in r.iter().zip(&rows) {
                            for (x, y) in a.iter().zip(b) {
                                match (x, y) {
                                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
                                    (a, b) => prop_assert_eq!(a, b),
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Randomized grouped queries (NULL-able int keys, string keys,
    /// ORDER BY + LIMIT, empty inputs): columnar vs row execution *and*
    /// serial vs parallel fused aggregation must agree. The parallel
    /// configuration must match serial columnar execution bit for bit.
    #[test]
    fn grouped_queries_agree_across_modes(data in arb_grouped()) {
        let sqls = [
            // The sqlgen shape: one SUM per ring component over two keys.
            "SELECT k, ks, COUNT(*) AS c, SUM(v) AS s, SUM(v * v) AS q \
             FROM t GROUP BY k, ks ORDER BY k, ks",
            // MIN/MAX and AVG share the fused pass.
            "SELECT ks, MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS m \
             FROM t GROUP BY ks ORDER BY ks",
            // Top-k pushdown (split-query winner selection).
            "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY s DESC LIMIT 1",
            // LIMIT 0 and prefix-truncation LIMIT without ORDER BY.
            "SELECT k, v FROM t LIMIT 0",
            "SELECT k, v FROM t LIMIT 3",
        ];
        let reference = Database::new(EngineConfig::duckdb_mem());
        load_grouped(&reference, &data);
        for (config, exact) in [
            (EngineConfig::dbms_x_row(), false),
            (EngineConfig { compression: false, ..EngineConfig::duckdb_mem() }, true),
            (EngineConfig { agg_threads: 4, ..EngineConfig::duckdb_mem() }, true),
        ] {
            let db = Database::new(config);
            load_grouped(&db, &data);
            for sql in sqls {
                let want = reference.query(sql).unwrap();
                let got = db.query(sql).unwrap();
                prop_assert_eq!(want.num_rows(), got.num_rows(), "{}", sql);
                prop_assert_eq!(want.num_columns(), got.num_columns(), "{}", sql);
                for col in 0..want.num_columns() {
                    for row in 0..want.num_rows() {
                        let (a, b) = (want.columns[col].get(row), got.columns[col].get(row));
                        match (a, b) {
                            (joinboost_engine::Datum::Float(x), joinboost_engine::Datum::Float(y))
                                if exact =>
                            {
                                prop_assert_eq!(
                                    x.to_bits(), y.to_bits(),
                                    "{} col {} row {}: {} vs {}", sql, col, row, x, y
                                );
                            }
                            (joinboost_engine::Datum::Float(x), joinboost_engine::Datum::Float(y)) => {
                                prop_assert!((x - y).abs() < 1e-9, "{} col {} row {}", sql, col, row);
                            }
                            (a, b) => prop_assert_eq!(a, b, "{} col {} row {}", sql, col, row),
                        }
                    }
                }
            }
        }
    }

    /// UPDATE must agree with a recomputed CREATE TABLE projection.
    #[test]
    fn update_equals_projection(data in arb_star(), delta in -5.0f64..5.0) {
        let db = Database::in_memory();
        load_star(&db, &data);
        db.execute(&format!(
            "CREATE TABLE want AS SELECT k, CASE WHEN k <= 2 THEN y - {delta} ELSE y END AS y FROM fact"
        ))
        .unwrap();
        db.execute(&format!("UPDATE fact SET y = y - {delta} WHERE k <= 2"))
            .unwrap();
        let got = db.query("SELECT SUM(y) AS s FROM fact").unwrap();
        let want = db.query("SELECT SUM(y) AS s FROM want").unwrap();
        let (g, w) = (
            got.scalar_f64("s").unwrap_or(0.0),
            want.scalar_f64("s").unwrap_or(0.0),
        );
        prop_assert!((g - w).abs() < 1e-6 * (1.0 + w.abs()));
    }
}
