#!/usr/bin/env bash
# Compare two bench logs produced by the criterion(-shim) harness and
# print an old-vs-new median table, so perf PRs can paste a comparison.
#
# Usage:
#   cargo bench -p joinboost-bench 2>/dev/null | tee /tmp/bench_old.log
#   # ... apply your change, rebuild ...
#   cargo bench -p joinboost-bench 2>/dev/null | tee /tmp/bench_new.log
#   scripts/bench_diff.sh /tmp/bench_old.log /tmp/bench_new.log
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 <old.log> <new.log>" >&2
    exit 1
fi

awk '
    function to_ns(v, u) {
        if (u == "s") return v * 1e9
        if (u == "ms") return v * 1e6
        if (u == "us") return v * 1e3
        return v
    }
    function fmt(x) {
        if (x >= 1e9) return sprintf("%.3f s", x / 1e9)
        if (x >= 1e6) return sprintf("%.3f ms", x / 1e6)
        if (x >= 1e3) return sprintf("%.3f us", x / 1e3)
        return sprintf("%.1f ns", x)
    }
    /time: \[/ {
        name = $1
        for (i = 1; i <= NF; i++)
            if ($i == "median") { v = $(i + 1); u = $(i + 2) }
        sub(/\]$/, "", u)
        m = to_ns(v, u)
        if (FILENAME == ARGV[1]) {
            olds[name] = m
        } else {
            news[name] = m
            if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
        }
    }
    END {
        printf "%-40s %12s %12s %9s\n", "benchmark", "old", "new", "speedup"
        for (i = 1; i <= n; i++) {
            name = order[i]
            if (name in olds)
                printf "%-40s %12s %12s %8.2fx\n", name, fmt(olds[name]), fmt(news[name]), olds[name] / news[name]
            else
                printf "%-40s %12s %12s %9s\n", name, "-", fmt(news[name]), "new"
        }
        # Benchmarks that disappeared between runs must not vanish silently.
        for (name in olds)
            if (!(name in news))
                printf "%-40s %12s %12s %9s\n", name, fmt(olds[name]), "-", "gone"
    }
' "$1" "$2"
