//! Gradient boosting over a galaxy schema — the workload single-table
//! libraries *cannot run at all* (paper Section 6.2, Figure 14): the
//! IMDB join result explodes from 1.2 GB of base data to over 1 TB, so
//! there is nothing to export. JoinBoost trains with Clustered Predicate
//! Trees (CPT): the root split picks a cluster, the rest of the tree is
//! confined to it, and residuals update the cluster fact's semi-ring
//! annotations via the addition-to-multiplication-preserving property.
//!
//! ```text
//! cargo run --release --example imdb_galaxy
//! ```

use joinboost::predict::{materialize_features, targets};
use joinboost::{train_gbm, Dataset, TrainParams, UpdateMethod};
use joinboost_datagen::{imdb_galaxy, ImdbConfig};
use joinboost_engine::Database;
use joinboost_graph::cluster::clusters;
use joinboost_semiring::loss::rmse;

fn main() {
    let gen = imdb_galaxy(&ImdbConfig {
        persons: 200,
        movies: 150,
        cast_rows: 8_000,
        person_info_rows: 2_000,
        movie_info_rows: 1_500,
        seed: 42,
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();

    // Show why this is a galaxy: no single fact covers the graph, and the
    // join result is much larger than any base table.
    assert!(gen.graph.snowflake_fact().is_none());
    let set = Dataset::new(&db, gen.graph.clone(), "cast_info", "rating").unwrap();
    println!("CPT clusters (paper Figure 3 shape):");
    for c in clusters(&gen.graph) {
        let members: Vec<&str> = c.members.iter().map(|&m| gen.graph.name(m)).collect();
        println!(
            "  fact {:<12} members: {}",
            gen.graph.name(c.fact),
            members.join(", ")
        );
    }

    let params = TrainParams {
        num_iterations: 15,
        learning_rate: 0.3,
        num_leaves: 6,
        update_method: UpdateMethod::CreateTable,
        ..Default::default()
    };
    let model = train_gbm(&set, &params).unwrap();

    // Each tree is confined to one cluster after its root split.
    println!("\nper-tree root splits and clusters:");
    for (i, tree) in model.trees.iter().enumerate().take(5) {
        match &tree.nodes[0].split {
            Some(s) => println!(
                "  tree {i}: root split on {} (relation {})",
                s.feature, s.relation
            ),
            None => println!("  tree {i}: stump"),
        }
    }

    let eval = materialize_features(&set).unwrap();
    let ys = targets(&eval).unwrap();
    let base = rmse(&ys, &vec![model.init_score; ys.len()]);
    let fit = rmse(&ys, &model.predict(&eval));
    println!(
        "\njoin result: {} tuples (vs {} cast_info rows)",
        ys.len(),
        gen.table("cast_info").unwrap().num_rows()
    );
    println!("rmse: constant predictor {base:.3} -> gbm {fit:.3}");
}
