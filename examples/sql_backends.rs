//! Portability tour: the same training run against every [`SqlBackend`]
//! implementation (paper Section 5, Figure 15) — not engine presets, the
//! real pluggable backends:
//!
//! * engine backends (AST fast path) in three DBMS personalities,
//! * the SQL-text backend, which proves every emitted statement survives
//!   a `print ∘ parse ∘ print` round-trip,
//! * a remote backend speaking SQL text + columnar blocks over a real
//!   loopback socket to a wire server,
//! * sharded backends that hash-partition the fact table over 2 and 4
//!   engine instances and ⊕-merge partial semi-ring aggregates — both
//!   in-process and with every shard behind its own socket
//!   (multi-process sharding).
//!
//! Portability means *identical models*: the run asserts every backend
//! trains a bit-identical GBM. The workload follows the dyadic recipe of
//! `DESIGN.md` § Backends (quantized target + `leaf_quantization`), which
//! makes floating-point ⊕ exactly associative so shard merge order cannot
//! matter.
//!
//! ```text
//! cargo run --release --example sql_backends
//! ```

use joinboost::backend::{
    EngineBackend, RemoteBackend, RemoteOptions, ShardedBackend, SqlBackend, SqlTextBackend,
    WireServer,
};
use joinboost::{train_gbm, Dataset, GbmModel, TrainParams};
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::{Database, EngineConfig};
use joinboost_sql::parse_statement;

fn train_on(backend: &dyn SqlBackend) -> GbmModel {
    // 600 dimension rows give each feature ~430 distinct values — enough
    // for the sharded backends to push split evaluation to the shards
    // instead of shipping every per-value aggregate to the coordinator.
    let gen = favorita(&FavoritaConfig {
        fact_rows: 10_000,
        dim_rows: 600,
        noise: 100.0,
        ..Default::default()
    });
    for (name, t) in &gen.tables {
        backend.create_table(name, t.clone()).unwrap();
    }
    // Dyadic recipe: targets on the 1/8 grid, leaves on the 2⁻¹⁰ grid,
    // learning rate 0.5 — every sum the trainer performs is then exact.
    backend
        .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
        .unwrap();
    let set = Dataset::new(backend, gen.graph.clone(), "sales", "net_profit").unwrap();
    let params = TrainParams {
        num_iterations: 3,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    train_gbm(&set, &params).unwrap()
}

fn main() {
    // The SQL subset JoinBoost emits is vendor-neutral; here is the exact
    // best-split query of the paper's Example 2, parsed and printed back.
    let example2 = "SELECT A, -(stotal/ctotal)*stotal + (s/c)*s \
                    + (stotal - s)/(ctotal - c)*(stotal - s) AS criteria \
                    FROM (SELECT A, SUM(c) OVER (ORDER BY A) AS c, SUM(s) OVER (ORDER BY A) AS s \
                          FROM (SELECT A, SUM(Y) AS s, COUNT(*) AS c FROM R GROUP BY A) AS g) AS w \
                    ORDER BY criteria DESC LIMIT 1";
    let stmt = parse_statement(example2).unwrap();
    println!("paper Example 2 round-trips through the parser:\n  {stmt}\n");

    let mut backends: Vec<(Box<dyn SqlBackend>, &str)> = vec![
        (
            Box::new(EngineBackend::labeled(EngineConfig::duckdb_mem(), "D-mem")),
            "in-memory engine, AST fast path",
        ),
        (
            Box::new(EngineBackend::labeled(
                EngineConfig::duckdb_disk(),
                "D-disk",
            )),
            "disk-backed engine (WAL on writes)",
        ),
        (
            Box::new(EngineBackend::labeled(EngineConfig::dbms_x_row(), "X-row")),
            "row-store engine, tuple-at-a-time",
        ),
        (
            Box::new(SqlTextBackend::in_memory()),
            "every statement via print∘parse∘print",
        ),
        (
            Box::new(ShardedBackend::new(
                2,
                EngineConfig::duckdb_mem(),
                "sales",
                "items_id",
            )),
            "fact hash-partitioned over 2 engines",
        ),
    ];

    // Socket-backed backends: one engine behind a wire server, and the
    // fact partitioned over two servers (multi-process sharding). The
    // servers here run on background threads; the `shard_server` binary
    // hosts the identical loop as a standalone process.
    let single_server = WireServer::builder(Database::in_memory())
        .spawn()
        .expect("wire server");
    let shard_servers: Vec<WireServer> = (0..2)
        .map(|_| {
            WireServer::builder(Database::in_memory())
                .spawn()
                .expect("server")
        })
        .collect();
    let shard_addrs: Vec<std::net::SocketAddr> = shard_servers.iter().map(|s| s.addr()).collect();
    backends.push((
        Box::new(
            RemoteBackend::builder(single_server.addr())
                .connect()
                .expect("connect"),
        ),
        "engine in another process: SQL text + columnar blocks over a socket",
    ));
    backends.push((
        Box::new(
            ShardedBackend::remote(
                &shard_addrs,
                EngineConfig::duckdb_mem(),
                "sales",
                "items_id",
                RemoteOptions::default(),
            )
            .expect("connect shards"),
        ),
        "multi-process sharding: fact over 2 socket servers",
    ));

    let header = ["backend", "caps", "train(s)", "update(s)", "notes"];
    println!(
        "{:<14}{:<10}{:>10}{:>11}  {}",
        header[0], header[1], header[2], header[3], header[4]
    );
    println!("{}", "-".repeat(78));
    let mut reference: Option<GbmModel> = None;
    for (backend, notes) in &backends {
        let model = train_on(backend.as_ref());
        let caps = backend.capabilities();
        let caps_str = format!(
            "{}{}{}x{}",
            if caps.ast_statements { "a" } else { "-" },
            if caps.window_functions { "w" } else { "-" },
            if caps.external_interop { "i" } else { "-" },
            caps.shards
        );
        println!(
            "{:<14}{:<10}{:>10.3}{:>11.3}  {notes}",
            backend.name(),
            caps_str,
            model.train_time.as_secs_f64(),
            model.update_time.as_secs_f64(),
        );
        // Portability = identical models, down to the last bit.
        match &reference {
            None => reference = Some(model),
            Some(r) => {
                assert_eq!(r.trees, model.trees, "{} diverged", backend.name());
                assert_eq!(r.init_score.to_bits(), model.init_score.to_bits());
            }
        }
    }
    // The 4-shard backend, held concretely so its counters are readable.
    // Feature cardinality here (~430 distinct values per dimension) is
    // above the pushdown threshold, so split queries evaluate
    // shard-locally — and the model still comes out bit-identical.
    let sharded = ShardedBackend::new(4, EngineConfig::duckdb_mem(), "sales", "items_id");
    let model = train_on(&sharded);
    let reference = reference.expect("lineup trained");
    assert_eq!(reference.trees, model.trees, "sharded x4 diverged");
    assert_eq!(reference.init_score.to_bits(), model.init_score.to_bits());
    let stats = sharded.stats();
    println!(
        "{:<14}{:<10}{:>10.3}{:>11.3}  fact hash-partitioned over 4 engines",
        sharded.name(),
        format!("aw-x{}", sharded.num_shards()),
        model.train_time.as_secs_f64(),
        model.update_time.as_secs_f64(),
    );
    println!(
        "\nall {} backends produced bit-identical models.",
        backends.len() + 1
    );
    println!(
        "\nsharded x4 work: {} fanned-out aggregates ({} split queries evaluated \
         shard-locally), {} broadcast statements, {} rows shipped to the coordinator",
        stats.fanout_selects, stats.pushdown_splits, stats.broadcast_statements, stats.rows_shipped
    );
    println!("fact partition sizes: {:?}", sharded.partition_sizes());

    // The socket-backed backends measured their shuffle in real bytes.
    let mb = |b: u64| b as f64 / (1024.0 * 1024.0);
    for (backend, _) in &backends {
        let s = backend.stats();
        if s.bytes_sent > 0 {
            println!(
                "{:<14} wire traffic: {:.2} MB sent, {:.2} MB received",
                backend.name(),
                mb(s.bytes_sent),
                mb(s.bytes_received)
            );
        }
    }
}
