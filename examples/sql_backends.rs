//! Portability tour: the same training run against every DBMS backend
//! configuration, plus a peek at the SQL JoinBoost actually emits
//! (paper Sections 5.1–5.4, Figure 15).
//!
//! ```text
//! cargo run --release --example sql_backends
//! ```

use joinboost::{train_gbm, Dataset, TrainParams, UpdateMethod};
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::{Database, EngineConfig};
use joinboost_sql::parse_statement;

fn main() {
    let gen = favorita(&FavoritaConfig {
        fact_rows: 10_000,
        dim_rows: 50,
        noise: 100.0,
        ..Default::default()
    });

    // The SQL subset JoinBoost emits is vendor-neutral; here is the exact
    // best-split query of the paper's Example 2, parsed and printed back.
    let example2 = "SELECT A, -(stotal/ctotal)*stotal + (s/c)*s \
                    + (stotal - s)/(ctotal - c)*(stotal - s) AS criteria \
                    FROM (SELECT A, SUM(c) OVER (ORDER BY A) AS c, SUM(s) OVER (ORDER BY A) AS s \
                          FROM (SELECT A, SUM(Y) AS s, COUNT(*) AS c FROM R GROUP BY A) AS g) AS w \
                    ORDER BY criteria DESC LIMIT 1";
    let stmt = parse_statement(example2).unwrap();
    println!("paper Example 2 round-trips through the parser:\n  {stmt}\n");

    let backends: Vec<(&str, EngineConfig, UpdateMethod)> = vec![
        (
            "X-col  (commercial column store)",
            EngineConfig::dbms_x_col(),
            UpdateMethod::CreateTable,
        ),
        (
            "X-row  (commercial row store)",
            EngineConfig::dbms_x_row(),
            UpdateMethod::CreateTable,
        ),
        (
            "D-disk (disk-backed columnar)",
            EngineConfig::duckdb_disk(),
            UpdateMethod::CreateTable,
        ),
        (
            "D-mem  (in-memory columnar)",
            EngineConfig::duckdb_mem(),
            UpdateMethod::UpdateInPlace,
        ),
        (
            "DP     (dataframe interop)",
            EngineConfig::duckdb_mem(),
            UpdateMethod::Interop,
        ),
        (
            "D-Swap (column-swap extension)",
            EngineConfig::d_swap(),
            UpdateMethod::ColumnSwap,
        ),
    ];
    println!(
        "{:<36}{:>10}{:>10}{:>12}",
        "backend", "train(s)", "update(s)", "wal bytes"
    );
    println!("{}", "-".repeat(68));
    let mut reference: Option<Vec<joinboost::Tree>> = None;
    for (name, config, method) in backends {
        let db = Database::new(config);
        gen.load_into(&db).unwrap();
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let params = TrainParams {
            num_iterations: 3,
            update_method: method,
            ..Default::default()
        };
        let model = train_gbm(&set, &params).unwrap();
        let stats = db.stats();
        println!(
            "{:<36}{:>10.3}{:>10.3}{:>12}",
            name,
            model.train_time.as_secs_f64(),
            model.update_time.as_secs_f64(),
            stats.wal_bytes
        );
        // Portability also means *identical models* everywhere.
        match &reference {
            None => reference = Some(model.trees),
            Some(r) => assert_eq!(r, &model.trees, "backends must agree on the model"),
        }
    }
    println!("\nall backends produced byte-identical trees.");
}
