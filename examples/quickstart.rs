//! Quickstart: train a gradient-boosting model over a normalized
//! two-table database — the example of the paper's Figure 4.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use joinboost::predict::{materialize_features, targets};
use joinboost::{train_gbm, Dataset, TrainParams};
use joinboost_engine::{Column, Database, Table};
use joinboost_graph::JoinGraph;
use joinboost_semiring::loss::rmse;

fn main() {
    // 1. A tiny normalized database: `sales` (fact, holds net_profit) and
    //    `dates` (dimension with the features).
    let db = Database::in_memory();
    let n = 2_000;
    let date_ids: Vec<i64> = (0..n).map(|i| (i % 365) as i64).collect();
    let holiday: Vec<i64> = (0..365).map(|d| ((d % 7) == 6) as i64).collect();
    let weekend: Vec<i64> = (0..365).map(|d| ((d % 7) >= 5) as i64).collect();
    let profit: Vec<f64> = date_ids
        .iter()
        .map(|&d| {
            let base = 100.0 + (d % 30) as f64;
            base + 50.0 * holiday[d as usize] as f64 + 20.0 * weekend[d as usize] as f64
        })
        .collect();
    db.create_table(
        "sales",
        Table::from_columns(vec![
            ("date_id", Column::int(date_ids)),
            ("net_profit", Column::float(profit)),
        ]),
    )
    .unwrap();
    db.create_table(
        "dates",
        Table::from_columns(vec![
            ("date_id", Column::int((0..365).collect())),
            ("holiday", Column::int(holiday)),
            ("weekend", Column::int(weekend)),
        ]),
    )
    .unwrap();

    // 2. Describe the training set as a join graph (paper Example 6).
    let mut graph = JoinGraph::new();
    graph.add_relation("sales", &[]).unwrap();
    graph
        .add_relation("dates", &["holiday", "weekend"])
        .unwrap();
    graph.add_edge("sales", "dates", &["date_id"]).unwrap();
    let train_set = Dataset::new(&db, graph, "sales", "net_profit").unwrap();

    // 3. Train with LightGBM-style parameters — the join is never
    //    materialized; every heavy step runs as SQL on the engine.
    let params = TrainParams {
        num_iterations: 30,
        learning_rate: 0.3,
        num_leaves: 8,
        ..Default::default()
    };
    let model = train_gbm(&train_set, &params).unwrap();

    // 4. Evaluate.
    let eval = materialize_features(&train_set).unwrap();
    let ys = targets(&eval).unwrap();
    let preds = model.predict(&eval);
    println!(
        "trained {} trees; init score {:.2}",
        model.trees.len(),
        model.init_score
    );
    println!("first tree:\n{}", model.trees[0].dump());
    println!("training rmse: {:.3}", rmse(&ys, &preds));
    let stats = db.stats();
    println!(
        "engine work: {} queries, {} statements",
        stats.queries, stats.statements
    );
}
