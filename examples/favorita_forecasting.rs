//! Grocery-sales forecasting over a Favorita-like star schema — the
//! paper's primary workload (Section 6.1), comparing JoinBoost with the
//! LightGBM-like single-table baseline (which must materialize, export and
//! load the join first).
//!
//! ```text
//! cargo run --release --example favorita_forecasting
//! ```

use std::time::Instant;

use joinboost::predict::{materialize_features, targets};
use joinboost::{train_gbm, train_random_forest, Dataset, TrainParams, UpdateMethod};
use joinboost_baselines::lightgbm::{self, LgbmParams};
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::{Database, EngineConfig};
use joinboost_semiring::loss::rmse;

fn main() {
    let gen = favorita(&FavoritaConfig {
        fact_rows: 30_000,
        dim_rows: 100,
        noise: 100.0,
        ..Default::default()
    });
    // The D-Swap backend supports the column-swap residual update.
    let db = Database::new(EngineConfig::d_swap());
    gen.load_into(&db).unwrap();
    println!(
        "loaded Favorita-like star: sales ({} rows) + {} dimensions",
        gen.table("sales").unwrap().num_rows(),
        gen.tables.len() - 1
    );

    // --- JoinBoost gradient boosting (factorized; join never built). ---
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let params = TrainParams {
        num_iterations: 30,
        update_method: UpdateMethod::ColumnSwap,
        threads: 4,
        ..TrainParams::paper_gbm()
    };
    let t0 = Instant::now();
    let gbm = train_gbm(&set, &params).unwrap();
    let jb_time = t0.elapsed();

    // --- Random forest (fact-table sampling, tree-parallel). ---
    let set_rf = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let rf_params = TrainParams {
        num_iterations: 20,
        threads: 4,
        ..TrainParams::paper_rf()
    };
    let t1 = Instant::now();
    let rf = train_random_forest(&set_rf, &rf_params).unwrap();
    let rf_time = t1.elapsed();

    // --- Baseline: materialize + export + load + train. ---
    let set_b = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let (flat, export) = lightgbm::export_join(&set_b).unwrap();
    let lgbm = lightgbm::train_gbdt(
        &flat,
        &LgbmParams {
            num_iterations: 30,
            ..Default::default()
        },
    )
    .unwrap();

    // --- Evaluate everything on the joined data. ---
    let eval = materialize_features(&set).unwrap();
    let ys = targets(&eval).unwrap();
    println!("\n{:<24}{:>10}{:>12}", "model", "time (s)", "rmse");
    println!("{}", "-".repeat(46));
    println!(
        "{:<24}{:>10.2}{:>12.1}",
        "joinboost gbm (swap)",
        jb_time.as_secs_f64(),
        rmse(&ys, &gbm.predict(&eval))
    );
    println!(
        "{:<24}{:>10.2}{:>12.1}",
        "joinboost rf",
        rf_time.as_secs_f64(),
        rmse(&ys, &rf.predict(&eval))
    );
    println!(
        "{:<24}{:>10.2}{:>12.1}",
        "lightgbm-like (+export)",
        (lgbm.train_time + export.total()).as_secs_f64(),
        rmse(&ys, &lgbm.predict_table(&eval))
    );
    println!(
        "\nbaseline paid {:.2} s join+export+load for {} exported bytes;",
        export.total().as_secs_f64(),
        export.exported_bytes
    );
    println!(
        "joinboost ran {} split queries and {} message queries instead.",
        gbm.stats.split_queries, gbm.stats.message_queries
    );
}
