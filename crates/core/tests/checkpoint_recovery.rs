//! WAL checkpointing under crashes: the log stays bounded, and a crash
//! at *any* byte offset — before, during, or after a checkpoint —
//! recovers exactly a committed statement prefix.
//!
//! Three attack angles:
//!
//! * **bounded log** — with a small `checkpoint_bytes` budget, a
//!   200-statement workload must never let `wal.log` grow past the
//!   budget plus one statement;
//! * **arbitrary post-checkpoint tears** (proptest) — the WAL suffix
//!   written after a checkpoint is cut at arbitrary byte offsets and
//!   reopen must recover the checkpoint plus the longest committed
//!   suffix prefix, never a torn half-statement;
//! * **crash windows inside the checkpoint itself** — a torn tmp
//!   snapshot is ignored, and the rename-installed-but-WAL-not-yet-
//!   truncated window replays the stale log idempotently onto the new
//!   snapshot.

use proptest::prelude::*;

use joinboost_engine::{Column, Database, EngineConfig, Table};

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jb_ckptrec_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_table() -> Table {
    Table::from_columns(vec![
        ("k", Column::int((0..64).collect())),
        (
            "v",
            Column::float((0..64).map(|i| i as f64 * 0.25).collect()),
        ),
    ])
}

fn paged_with_budget(dir: &std::path::Path, budget: Option<u64>) -> EngineConfig {
    EngineConfig {
        checkpoint_bytes: budget,
        ..EngineConfig::paged(dir)
    }
}

/// 200 statements against a small checkpoint budget: the log file must
/// stay under `budget + one statement` after every single statement, at
/// least one checkpoint must actually fire, and the final recovered
/// state must match an uncrashed in-memory reference bit for bit.
#[test]
fn checkpoints_bound_the_log_across_200_statements() {
    let stmt = |i: usize| format!("UPDATE t SET v = v + {}.0 WHERE k > {}", i % 7, i % 50);

    // Measure one statement's log footprint with checkpointing disabled:
    // the workload is homogeneous UPDATEs over one table, so every
    // statement logs the same after-image size (± the predicate text).
    let probe_dir = fresh_dir("probe");
    let stmt_bytes = {
        let db = Database::new(paged_with_budget(&probe_dir, None));
        db.create_table("seed", seed_table()).unwrap();
        db.execute("CREATE TABLE t AS SELECT * FROM seed").unwrap();
        let before = db.stats().wal_bytes;
        db.execute(&stmt(0)).unwrap();
        db.stats().wal_bytes - before
    };
    let _ = std::fs::remove_dir_all(&probe_dir);
    assert!(stmt_bytes > 0, "probe statement must hit the WAL");

    // Budget: a handful of statements, so the workload checkpoints many
    // times rather than once at the end.
    let budget = stmt_bytes * 4;
    let dir = fresh_dir("bound");
    {
        let db = Database::new(paged_with_budget(&dir, Some(budget)));
        db.create_table("seed", seed_table()).unwrap();
        db.execute("CREATE TABLE t AS SELECT * FROM seed").unwrap();
        for i in 0..200 {
            db.execute(&stmt(i)).unwrap();
            let log_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
            assert!(
                log_len <= budget + stmt_bytes,
                "after statement {i}: log is {log_len} bytes, budget {budget} + \
                 statement {stmt_bytes} exceeded"
            );
        }
        let stats = db.stats();
        assert!(
            stats.checkpoints >= 10,
            "a 200-statement workload over a {budget}-byte budget must checkpoint \
             repeatedly, saw {}",
            stats.checkpoints
        );
        db.simulate_crash().unwrap();
    }

    let reference = Database::in_memory();
    reference.create_table("seed", seed_table()).unwrap();
    reference
        .execute("CREATE TABLE t AS SELECT * FROM seed")
        .unwrap();
    for i in 0..200 {
        reference.execute(&stmt(i)).unwrap();
    }
    let recovered = Database::new(paged_with_budget(&dir, Some(budget)));
    for name in ["seed", "t"] {
        assert_eq!(
            recovered.snapshot(name).unwrap(),
            reference.snapshot(name).unwrap(),
            "{name} diverged after crash recovery through checkpoints"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Build a directory whose state is: seed + `pre` statements,
/// checkpointed, then `post` statements in the WAL suffix. Returns the
/// suffix bytes so callers can tear them.
fn checkpointed_dir(name: &str, pre: &[String], post: &[String]) -> (std::path::PathBuf, Vec<u8>) {
    let dir = fresh_dir(name);
    {
        let db = Database::new(paged_with_budget(&dir, None));
        db.create_table("seed", seed_table()).unwrap();
        for s in pre {
            db.execute(s).unwrap();
        }
        db.checkpoint().unwrap();
        for s in post {
            db.execute(s).unwrap();
        }
    }
    let suffix = std::fs::read(dir.join("wal.log")).unwrap();
    (dir, suffix)
}

fn post_script() -> Vec<String> {
    vec![
        "CREATE TABLE u AS SELECT k, v * 2.0 AS w FROM t".to_string(),
        "UPDATE u SET w = w + 1.0 WHERE k < 20".to_string(),
        "UPDATE t SET v = v - 0.5 WHERE k > 30".to_string(),
        "DROP TABLE t".to_string(),
        "CREATE TABLE t AS SELECT k, w FROM u WHERE k < 48".to_string(),
    ]
}

fn pre_script() -> Vec<String> {
    vec![
        "CREATE TABLE t AS SELECT * FROM seed".to_string(),
        "UPDATE t SET v = v * 2.0".to_string(),
    ]
}

/// The uncrashed reference state after `pre` + the first `k` of `post`.
fn reference_state(k: usize) -> Database {
    let r = Database::in_memory();
    r.create_table("seed", seed_table()).unwrap();
    for s in &pre_script() {
        r.execute(s).unwrap();
    }
    for s in &post_script()[..k] {
        r.execute(s).unwrap();
    }
    r
}

fn same_state(a: &Database, b: &Database) -> bool {
    let mut an = a.table_names();
    an.sort();
    let mut bn = b.table_names();
    bn.sort();
    an == bn
        && an
            .iter()
            .all(|n| a.snapshot(n).unwrap() == b.snapshot(n).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cut the post-checkpoint WAL suffix at an arbitrary byte offset
    /// (mid-record, mid-commit, anywhere) and reopen: recovery must land
    /// exactly on the checkpoint plus some committed prefix of the
    /// suffix — never before the checkpoint, never a torn statement.
    #[test]
    fn any_crash_offset_after_a_checkpoint_recovers_a_committed_prefix(frac in 0.0f64..=1.0) {
        let (dir, suffix) = checkpointed_dir("prop", &pre_script(), &post_script());
        let cut = ((suffix.len() as f64) * frac) as usize;
        std::fs::write(dir.join("wal.log"), &suffix[..cut.min(suffix.len())]).unwrap();
        let recovered = Database::new(paged_with_budget(&dir, None));
        let matched = (0..=post_script().len())
            .map(reference_state)
            .position(|r| same_state(&recovered, &r));
        prop_assert!(
            matched.is_some(),
            "cut at byte {cut}/{}: recovered state matches no committed prefix",
            suffix.len()
        );
        if cut == suffix.len() {
            prop_assert_eq!(matched.unwrap(), post_script().len(), "full suffix must replay fully");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Crash while the snapshot tmp file was being written: the torn tmp is
/// ignored (and cleared), and the previous checkpoint + full WAL recover
/// everything committed.
#[test]
fn torn_checkpoint_tmp_is_ignored_and_the_previous_state_recovers() {
    let (dir, _) = checkpointed_dir("torntmp", &pre_script(), &post_script());
    std::fs::write(dir.join("checkpoint.jbc.tmp"), b"half a snapshot, torn").unwrap();
    let recovered = Database::new(paged_with_budget(&dir, None));
    assert!(
        same_state(&recovered, &reference_state(post_script().len())),
        "torn tmp must not affect recovery"
    );
    assert!(
        !dir.join("checkpoint.jbc.tmp").exists(),
        "open must clear the torn tmp"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash *between* installing the new snapshot and truncating the WAL:
/// the stale log replays on top of the fresh checkpoint. Full
/// after-images make that idempotent, so the recovered state equals the
/// checkpoint state exactly.
#[test]
fn crash_between_snapshot_install_and_wal_truncation_is_idempotent() {
    let dir = fresh_dir("window");
    let stale_wal;
    {
        let db = Database::new(paged_with_budget(&dir, None));
        db.create_table("seed", seed_table()).unwrap();
        for s in &pre_script() {
            db.execute(s).unwrap();
        }
        for s in &post_script() {
            db.execute(s).unwrap();
        }
        // Capture the log as it stood the instant before truncation …
        stale_wal = std::fs::read(dir.join("wal.log")).unwrap();
        db.checkpoint().unwrap();
    }
    // … and put it back: this is byte-for-byte the on-disk state of a
    // crash after the snapshot rename but before `truncate_to_empty`.
    std::fs::write(dir.join("wal.log"), &stale_wal).unwrap();
    let recovered = Database::new(paged_with_budget(&dir, None));
    assert!(
        same_state(&recovered, &reference_state(post_script().len())),
        "stale-WAL replay over the fresh snapshot must be idempotent"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes after a checkpoint-recovery cycle survive their own crash:
/// checkpoint → crash → recover → write → crash → recover again.
#[test]
fn post_checkpoint_recovery_writes_survive_the_next_crash() {
    let (dir, _) = checkpointed_dir("again", &pre_script(), &post_script()[..2]);
    {
        let db = Database::new(paged_with_budget(&dir, None));
        db.execute("CREATE TABLE extra AS SELECT k FROM u WHERE k < 7")
            .unwrap();
        db.simulate_crash().unwrap();
    }
    let db = Database::new(paged_with_budget(&dir, None));
    assert_eq!(db.row_count("extra").unwrap(), 7);
    assert_eq!(
        db.snapshot("u").unwrap(),
        reference_state(2).snapshot("u").unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
