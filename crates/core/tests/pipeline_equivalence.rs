//! The pipelined-coordinator claim: multiplexing split-protocol requests
//! over one socket, scrambling the order in which shard replies land, and
//! delta-encoding refinement rounds must not change a *single bit* of the
//! trained model.
//!
//! The serial coordinator — the plain in-process engine, one query at a
//! time, no wire — is the reference. Every remote configuration below
//! (1/2/4 shard servers, delta on or off, reply jitter scrambling
//! completion order) must reproduce its model `to_bits()`-identical.
//!
//! Why orderings cannot matter: the coordinator's merge runs over a
//! *keyed* union (per-interval summaries tagged by grid position, fanout
//! rows tagged by shard), so late replies land in the same slot they
//! would have landed in early; and the dyadic workload (DESIGN.md
//! § Backends) makes every `⊕` on those slots exact, so even the merge
//! fold order is bit-stable. The tests here are the empirical check that
//! the multiplexer's replies really are routed by tag and never by
//! arrival order.

use std::sync::OnceLock;

use proptest::prelude::*;

use joinboost::backend::{PushdownConfig, RemoteOptions, ShardedBackend, SqlBackend, WireServer};
use joinboost::{train_gbm, Dataset, GbmModel, TrainParams};
use joinboost_engine::{Column, Database, EngineConfig, Table};
use joinboost_graph::JoinGraph;

// ---------------------------------------------------------------------------
// Workload (same dyadic star schema as remote_chaos.rs)
// ---------------------------------------------------------------------------

fn star_tables(rows: usize) -> (Table, Table, JoinGraph) {
    let dim_rows = 8i64;
    let fact = Table::from_columns(vec![
        ("k", Column::int((0..rows as i64).collect())),
        (
            "d_id",
            Column::int((0..rows as i64).map(|i| i % dim_rows).collect()),
        ),
        (
            "f",
            Column::int((0..rows as i64).map(|i| (i * 13) % 40).collect()),
        ),
        (
            "y",
            Column::float(
                (0..rows as i64)
                    .map(|i| (((i * 13) % 40) as f64) / 8.0 + ((i % dim_rows) as f64) / 2.0)
                    .collect(),
            ),
        ),
    ]);
    let dim = Table::from_columns(vec![
        ("d_id", Column::int((0..dim_rows).collect())),
        (
            "g",
            Column::int((0..dim_rows).map(|d| (d * 3) % 5).collect()),
        ),
    ]);
    let mut graph = JoinGraph::new();
    graph.add_relation("fact", &["f"]).unwrap();
    graph.add_relation("dim", &["g"]).unwrap();
    graph.add_edge("fact", "dim", &["d_id"]).unwrap();
    (fact, dim, graph)
}

/// A star with a high-cardinality feature (~1000 distinct values on
/// 4000 fact rows): the split pushdown needs several refinement rounds
/// to corner the best split, which is what gives the delta encoding
/// unchanged intervals to elide. All values stay on the 1/8 dyadic grid
/// so bit-identity still holds. (The tiny star above converges in one
/// round — fine for equivalence, useless for byte accounting.)
fn highcard_tables() -> (Table, Table, JoinGraph) {
    let rows = 4000usize;
    let card = 1000i64;
    let dim_rows = 20i64;
    let fact = Table::from_columns(vec![
        ("k", Column::int((0..rows as i64).collect())),
        (
            "d_id",
            Column::int((0..rows as i64).map(|i| i % dim_rows).collect()),
        ),
        (
            "f",
            Column::int((0..rows as i64).map(|i| (i * 7919) % card).collect()),
        ),
        (
            "y",
            Column::float(
                (0..rows as i64)
                    .map(|i| {
                        let f = ((i * 7919) % card) as f64;
                        let noise = ((i * 2654435761) % 97) as f64;
                        f / 8.0 + ((i % dim_rows) % 10) as f64 * 4.0 + noise / 8.0
                    })
                    .collect(),
            ),
        ),
    ]);
    let dim = Table::from_columns(vec![
        ("d_id", Column::int((0..dim_rows).collect())),
        (
            "g",
            Column::int((0..dim_rows).map(|d| (d * 13) % 7).collect()),
        ),
    ]);
    let mut graph = JoinGraph::new();
    graph.add_relation("fact", &["f"]).unwrap();
    graph.add_relation("dim", &["g"]).unwrap();
    graph.add_edge("fact", "dim", &["d_id"]).unwrap();
    (fact, dim, graph)
}

fn params() -> TrainParams {
    TrainParams {
        num_iterations: 2,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    }
}

fn train_on(backend: &dyn SqlBackend) -> GbmModel {
    let (fact, dim, graph) = star_tables(400);
    backend.create_table("fact", fact).unwrap();
    backend.create_table("dim", dim).unwrap();
    let set = Dataset::new(backend, graph, "fact", "y").unwrap();
    train_gbm(&set, &params()).unwrap()
}

/// Train over the given shard servers with pushdown forced on and the
/// delta wire toggled as requested; returns the model and the backend's
/// final stats (split rounds + split wire bytes).
fn train_remote(
    addrs: &[std::net::SocketAddr],
    delta: bool,
) -> (GbmModel, joinboost::backend::BackendStats) {
    let backend = ShardedBackend::remote(
        addrs,
        EngineConfig::duckdb_mem(),
        "fact",
        "k",
        RemoteOptions::default(),
    )
    .unwrap();
    backend.set_pushdown_config(PushdownConfig {
        boundaries_per_shard: 4,
        min_rows: 0,
        delta,
    });
    let model = train_on(&backend);
    let stats = backend.stats();
    (model, stats)
}

fn assert_bit_identical(reference: &GbmModel, model: &GbmModel, who: &str) {
    assert_eq!(
        reference.init_score.to_bits(),
        model.init_score.to_bits(),
        "{who}: init score diverged"
    );
    assert_eq!(
        reference.trees.len(),
        model.trees.len(),
        "{who}: tree count diverged"
    );
    for (i, (a, b)) in reference.trees.iter().zip(&model.trees).enumerate() {
        assert_eq!(a.nodes.len(), b.nodes.len(), "{who}: tree {i} shape");
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.split, nb.split, "{who}: tree {i} split");
            assert_eq!(
                na.value.to_bits(),
                nb.value.to_bits(),
                "{who}: tree {i} leaf value diverged"
            );
            assert_eq!(
                na.weight.to_bits(),
                nb.weight.to_bits(),
                "{who}: tree {i} weight diverged"
            );
        }
    }
}

/// The serial coordinator: the plain in-process engine, no shards, no
/// wire, no pipelining. Computed once per test binary.
fn serial_reference() -> &'static GbmModel {
    static REF: OnceLock<GbmModel> = OnceLock::new();
    REF.get_or_init(|| {
        let engine = joinboost::backend::EngineBackend::in_memory();
        train_on(&engine)
    })
}

fn spawn_servers(n: usize, jitter: Option<(u64, u64)>) -> Vec<WireServer> {
    (0..n)
        .map(|i| {
            let mut b = WireServer::builder(Database::in_memory());
            if let Some((seed, max_micros)) = jitter {
                // A different stream per server so shard replies
                // interleave rather than shifting in lockstep.
                b = b.reply_jitter(seed.wrapping_add(i as u64 * 0x9e37), max_micros);
            }
            b.spawn().unwrap()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Baseline: pipelined + delta over quiet servers, every shard count
// ---------------------------------------------------------------------------

/// Remote {1, 2, 4}-shard training through the multiplexed connection,
/// with the delta split wire both on and off, reproduces the serial
/// coordinator's bits exactly — and the delta toggle itself is invisible
/// in the model.
#[test]
fn pipelined_delta_training_matches_the_serial_coordinator() {
    let reference = serial_reference();
    for shards in [1usize, 2, 4] {
        for delta in [true, false] {
            let servers = spawn_servers(shards, None);
            let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
            let (model, stats) = train_remote(&addrs, delta);
            assert_bit_identical(
                reference,
                &model,
                &format!("remote x{shards} delta={delta}"),
            );
            assert!(
                stats.pushdown_splits > 0,
                "split pushdown must actually run (x{shards})"
            );
            assert!(
                stats.split_rounds > 0,
                "refinement rounds must be counted (x{shards})"
            );
            assert!(
                stats.split_bytes_sent > 0 && stats.split_bytes_received > 0,
                "split wire traffic must be metered (x{shards}): {stats:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Byte accounting: delta must be strictly cheaper than dense re-shipping
// ---------------------------------------------------------------------------

/// On 4 shards, re-running the identical high-cardinality workload with
/// the delta wire on ships strictly fewer split-protocol bytes to the
/// coordinator than dense re-shipping — while producing the identical
/// model. This is the unit-level version of the benchmark gate in
/// `BENCH_remote.json`.
#[test]
fn delta_encoding_ships_fewer_split_bytes_than_dense() {
    let train_highcard = |backend: &dyn SqlBackend| {
        let (fact, dim, graph) = highcard_tables();
        backend.create_table("fact", fact).unwrap();
        backend.create_table("dim", dim).unwrap();
        let set = Dataset::new(backend, graph, "fact", "y").unwrap();
        let p = TrainParams {
            num_iterations: 1,
            ..params()
        };
        train_gbm(&set, &p).unwrap()
    };
    let run = |delta: bool| {
        let servers = spawn_servers(4, None);
        let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
        let backend = ShardedBackend::remote(
            &addrs,
            EngineConfig::duckdb_mem(),
            "fact",
            "k",
            RemoteOptions::default(),
        )
        .unwrap();
        backend.set_pushdown_config(PushdownConfig {
            boundaries_per_shard: 16,
            min_rows: 0,
            delta,
        });
        let model = train_highcard(&backend);
        let stats = backend.stats();
        (model, stats)
    };
    let reference = {
        let engine = joinboost::backend::EngineBackend::in_memory();
        train_highcard(&engine)
    };
    let (dense_model, dense) = run(false);
    let (delta_model, deltad) = run(true);
    assert_bit_identical(&reference, &dense_model, "dense x4 highcard");
    assert_bit_identical(&reference, &delta_model, "delta x4 highcard");
    assert!(
        dense.split_rounds > dense.pushdown_splits,
        "the workload must drive multi-round refinement \
         ({} rounds over {} splits)",
        dense.split_rounds,
        dense.pushdown_splits
    );
    assert!(
        deltad.split_bytes_received < dense.split_bytes_received,
        "delta must reduce coordinator recv bytes: delta {} vs dense {}",
        deltad.split_bytes_received,
        dense.split_bytes_received
    );
}

// ---------------------------------------------------------------------------
// Randomized completion orderings
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever per-reply delays the servers draw — and therefore in
    /// whatever order multiplexed in-flight requests complete — the
    /// pipelined + delta-encoded run reproduces the serial coordinator's
    /// bits. `reply_jitter` delays every reply by a seeded pseudo-random
    /// duration, so each case scrambles a *different* interleaving of
    /// the same request stream.
    #[test]
    fn response_interleavings_never_change_a_bit(
        seed in any::<u64>(),
        max_micros in 50u64..800,
        shard_sel in 0usize..2,
    ) {
        let shards = [2usize, 4][shard_sel];
        let reference = serial_reference();
        let servers = spawn_servers(shards, Some((seed, max_micros)));
        let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
        let (model, stats) = train_remote(&addrs, true);
        assert_bit_identical(
            reference,
            &model,
            &format!("jitter seed={seed:#x} max={max_micros}us x{shards}"),
        );
        prop_assert!(stats.split_rounds > 0);
    }
}
