//! The serving tier over a real socket: submit / poll / cancel training
//! jobs, admission control, per-session load budgets, and `PredictBatch`
//! against job-compiled message tables.
//!
//! Every test talks to a [`WireServer`] through [`ServeClient`] — the
//! same frames a multi-process deployment exchanges.

use std::time::{Duration, Instant};

use joinboost::backend::{
    JobSpec, JobStatus, RemoteBackend, RemoteConnection, RetryPolicy, ServeClient, ServeError,
    SqlBackend, WireServer,
};
use joinboost_engine::{Column, Database, Datum, Table};

/// A star-schema database whose target is on the dyadic 1/8 grid, so
/// the exactness recipe (lr 0.5, leaf quantization 2⁻¹⁰) holds.
fn star_db(rows: i64) -> Database {
    let db = Database::in_memory();
    db.create_table(
        "fact",
        Table::from_columns(vec![
            ("k", Column::int((0..rows).collect())),
            ("d_id", Column::int((0..rows).map(|i| i % 6).collect())),
            ("x", Column::int((0..rows).map(|i| (i * 13) % 40).collect())),
            (
                "y",
                Column::float(
                    (0..rows)
                        .map(|i| (((i * 5) % 16) as f64) / 8.0 + ((i % 6) as f64) / 2.0)
                        .collect(),
                ),
            ),
        ]),
    )
    .unwrap();
    db.create_table(
        "dim",
        Table::from_columns(vec![
            ("d_id", Column::int((0..6).collect())),
            ("g", Column::int((0..6).map(|d| (d * 3) % 5).collect())),
        ]),
    )
    .unwrap();
    db
}

fn star_job() -> JobSpec {
    JobSpec {
        relations: vec![
            ("fact".into(), vec!["x".into()]),
            ("dim".into(), vec!["g".into()]),
        ],
        edges: vec![("fact".into(), "dim".into(), vec!["d_id".into()])],
        target_relation: "fact".into(),
        target_column: "y".into(),
        key_column: Some("k".into()),
        ..JobSpec::default()
    }
}

/// Poll until the job is `Running` (or panic after `timeout`).
fn wait_running(client: &ServeClient, id: u64, timeout: Duration) -> JobStatus {
    let start = Instant::now();
    loop {
        let status = client.poll(id).unwrap();
        match status {
            JobStatus::Running { .. } => return status,
            JobStatus::Queued => {}
            other => panic!("job {id} reached {other:?} before Running"),
        }
        assert!(start.elapsed() < timeout, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Submit → poll → wait → predict, plus the unknown-id and unknown-key
/// error contracts.
#[test]
fn job_lifecycle_submit_wait_predict() {
    let server = WireServer::builder(star_db(64)).spawn().unwrap();
    let client = ServeClient::connect(server.addr()).unwrap();

    let id = client.submit(&star_job()).unwrap();
    let done = client.wait(id).unwrap();
    assert_eq!(done, JobStatus::Done { iterations: 3 });

    // Known keys score; a key no fact row carries maps to None — the
    // row a materialized inner join would not contain.
    let scores = client.predict(id, &[0, 1, 63, 10_000]).unwrap();
    assert!(scores[0].is_some() && scores[1].is_some() && scores[2].is_some());
    assert!(scores[0].unwrap().is_finite());
    assert_eq!(scores[3], None);

    // The message tables the job compiled are deployed under its prefix;
    // no jb_ *temp* tables survive training (job tables are jb_job-…).
    let names = server.database().table_names();
    assert!(names.iter().any(|n| n.starts_with(&format!("jb_job{id}_"))));
    assert!(
        names
            .iter()
            .all(|n| !n.starts_with("jb_") || n.starts_with("jb_job")),
        "training temp tables leaked: {names:?}"
    );

    // Unknown ids name the id in the error, for both poll and predict.
    let missing = 777u64;
    for err in [
        client.poll(missing).unwrap_err(),
        client.predict(missing, &[0]).map(|_| ()).unwrap_err(),
        client.cancel(missing).map(|_| ()).unwrap_err(),
    ] {
        assert!(
            err.to_string().contains("777"),
            "error must name the unknown job id: {err}"
        );
    }
}

/// Two clients share one server: both jobs run to completion and each
/// client can observe (and score against) the other's job.
#[test]
fn two_clients_submit_and_poll_concurrently() {
    let server = WireServer::builder(star_db(64)).spawn().unwrap();
    let addr = server.addr();

    let ids: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(move || {
                    let client = ServeClient::connect(addr).unwrap();
                    let id = client.submit(&star_job()).unwrap();
                    assert_eq!(client.wait(id).unwrap(), JobStatus::Done { iterations: 3 });
                    id
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_ne!(ids[0], ids[1], "jobs must get distinct ids");

    // The registry is server-global: a third connection can poll and
    // score both finished jobs.
    let observer = ServeClient::connect(addr).unwrap();
    for id in ids {
        assert_eq!(
            observer.wait(id).unwrap(),
            JobStatus::Done { iterations: 3 }
        );
        let scores = observer.predict(id, &[0, 5]).unwrap();
        assert!(scores.iter().all(|s| s.is_some()));
    }
}

/// Cancelling mid-training stops the worker at the next iteration
/// boundary and leaves zero `jb_` temp tables on the server — on every
/// server, when jobs ran on more than one.
#[test]
fn cancel_mid_training_leaves_no_temp_tables() {
    let servers: Vec<WireServer> = (0..2)
        .map(|_| WireServer::builder(star_db(512)).spawn().unwrap())
        .collect();
    let long_job = JobSpec {
        num_iterations: 50_000, // far more than can finish: cancel decides
        ..star_job()
    };
    for server in &servers {
        let client = ServeClient::connect(server.addr()).unwrap();
        let id = client.submit(&long_job).unwrap();
        wait_running(&client, id, Duration::from_secs(30));
        let after = client.cancel(id).unwrap();
        assert!(
            matches!(after, JobStatus::Running { .. } | JobStatus::Cancelled),
            "cancel mid-run answers the pre-terminal state, got {after:?}"
        );
        assert_eq!(client.wait(id).unwrap(), JobStatus::Cancelled);
        // Idempotent: cancelling a terminal job re-reports its state.
        assert_eq!(client.cancel(id).unwrap(), JobStatus::Cancelled);
        // Predict against a cancelled job is a typed error naming it.
        let err = client.predict(id, &[0]).map(|_| ()).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
    }
    for (i, server) in servers.iter().enumerate() {
        let names = server.database().table_names();
        assert!(
            !names.iter().any(|n| n.starts_with("jb_")),
            "cancelled job leaked tables on server {i}: {names:?}"
        );
    }
}

/// With `max_jobs(1)`, a second submission is rejected with a typed
/// [`ServeError::Busy`] — and the connection stays fully usable.
#[test]
fn admission_control_rejects_busy_without_poisoning() {
    let server = WireServer::builder(star_db(512))
        .max_jobs(1)
        .spawn()
        .unwrap();
    let client = ServeClient::connect(server.addr()).unwrap();

    let long_job = JobSpec {
        num_iterations: 50_000,
        ..star_job()
    };
    let first = client.submit(&long_job).unwrap();
    wait_running(&client, first, Duration::from_secs(30));

    match client.submit(&star_job()) {
        Err(ServeError::Busy(m)) => assert!(m.contains("limit"), "busy must explain: {m}"),
        other => panic!("second submit must be Busy, got {other:?}"),
    }

    // Same connection, next request: still healthy.
    assert!(matches!(
        client.poll(first).unwrap(),
        JobStatus::Running { .. }
    ));
    client.cancel(first).unwrap();
    assert_eq!(client.wait(first).unwrap(), JobStatus::Cancelled);

    // Slot freed: admission now accepts again.
    let second = client.submit(&star_job()).unwrap();
    assert_eq!(
        client.wait(second).unwrap(),
        JobStatus::Done { iterations: 3 }
    );
}

/// A session that exceeds its `CreateTable` byte budget gets a typed
/// rejection; the connection is not poisoned and smaller loads still fit.
#[test]
fn session_budget_rejects_large_loads_without_poisoning() {
    let server = WireServer::builder(Database::in_memory())
        .session_budget_bytes(4096)
        .spawn()
        .unwrap();
    let backend = RemoteBackend::builder(server.addr()).connect().unwrap();

    let big = Table::from_columns(vec![("x", Column::int((0..10_000).collect()))]);
    let err = backend.create_table("big", big).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("budget") && msg.contains("busy"),
        "budget rejection must be a typed busy error: {msg}"
    );

    // Not poisoned: the same connection still serves requests, and a
    // load inside the budget succeeds.
    assert!(!backend.has_table("big"));
    let small = Table::from_columns(vec![("x", Column::int(vec![1, 2, 3]))]);
    backend.create_table("small", small).unwrap();
    assert_eq!(backend.row_count("small").unwrap(), 3);
}

/// Jobs still queued or running when their submitter disconnects are
/// cancelled — once the session's grace period expires without a
/// reconnect. A short grace keeps the test fast; the resumption test
/// below covers the other side (reconnect *within* grace keeps the job).
#[test]
fn disconnect_cancels_owned_jobs() {
    let server = WireServer::builder(star_db(512))
        .session_grace(Duration::from_millis(100))
        .spawn()
        .unwrap();
    let observer = ServeClient::connect(server.addr()).unwrap();

    let id = {
        let client = ServeClient::connect(server.addr()).unwrap();
        let id = client
            .submit(&JobSpec {
                num_iterations: 50_000,
                ..star_job()
            })
            .unwrap();
        wait_running(&client, id, Duration::from_secs(30));
        id
        // client drops here: the socket closes, the server cancels.
    };

    assert_eq!(observer.wait(id).unwrap(), JobStatus::Cancelled);
    let names = server.database().table_names();
    assert!(
        !names.iter().any(|n| n.starts_with("jb_")),
        "disconnected client's job leaked tables: {names:?}"
    );
}

/// The flip side of disconnect-cancels: a session whose *connection*
/// drops but whose client reconnects within the grace period keeps its
/// jobs. The server drops every 5th request; the retrying client resumes
/// its session each time and polls its long-running job throughout.
#[test]
fn briefly_dropped_session_keeps_its_jobs() {
    let server = WireServer::builder(star_db(512))
        .drop_every(5)
        .session_grace(Duration::from_secs(30))
        .spawn()
        .unwrap();
    let conn = RemoteConnection::builder(server.addr())
        .retry(RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(100),
            jitter: 0.2,
        })
        .connect()
        .unwrap();
    let client = ServeClient::from_connection(conn);

    let id = client
        .submit(&JobSpec {
            num_iterations: 50_000,
            ..star_job()
        })
        .unwrap();
    wait_running(&client, id, Duration::from_secs(30));

    // Poll through several injected drops: the job must stay alive — a
    // drop must look like nothing happened, not like a disconnect.
    for _ in 0..20 {
        assert!(
            matches!(
                client.poll(id).unwrap(),
                JobStatus::Queued | JobStatus::Running { .. }
            ),
            "job must survive connection drops while the session resumes"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        client.connection().retry_count() >= 1,
        "the fault must actually have fired"
    );

    // The resumed session still owns the job: cancel works.
    client.cancel(id).unwrap();
    assert_eq!(client.wait(id).unwrap(), JobStatus::Cancelled);
}

/// The scorer cache is invalidated *per relation*: writes to tables a
/// deployed scorer does not reference leave it cached, while dropping one
/// of its message tables takes effect immediately (no stale scoring from
/// memory).
#[test]
fn scorer_cache_invalidation_is_per_relation() {
    let server = WireServer::builder(star_db(64)).spawn().unwrap();
    let client = ServeClient::connect(server.addr()).unwrap();
    let backend = RemoteBackend::builder(server.addr()).connect().unwrap();

    let id = client.submit(&star_job()).unwrap();
    assert_eq!(client.wait(id).unwrap(), JobStatus::Done { iterations: 3 });

    client.predict(id, &[0, 1]).unwrap();
    assert_eq!(server.scorer_cache_loads(), 1, "first predict loads");
    client.predict(id, &[2, 3]).unwrap();
    assert_eq!(server.scorer_cache_loads(), 1, "second predict hits cache");

    // A write touching an *unrelated* table must not evict the scorer.
    backend
        .create_table(
            "scratch",
            Table::from_columns(vec![("x", Column::int(vec![1]))]),
        )
        .unwrap();
    client.predict(id, &[4]).unwrap();
    assert_eq!(
        server.scorer_cache_loads(),
        1,
        "unrelated write must not invalidate the scorer cache"
    );

    // Dropping one of the scorer's own message tables must evict it: the
    // next predict tries to reload and fails, rather than serving stale
    // bits from memory.
    let victim = server
        .database()
        .table_names()
        .into_iter()
        .find(|n| n.starts_with(&format!("jb_job{id}_")))
        .expect("job must have deployed message tables");
    backend.drop_table_if_exists(&victim).unwrap();
    assert!(
        client.predict(id, &[0]).is_err(),
        "predict after dropping {victim} must fail, not serve a stale cached scorer"
    );
}

/// Temp tables left behind by a previous process (crash before cleanup)
/// are swept when the server starts: state is rebuilt from scratch, so
/// any `jb_`-prefixed table is an orphan by definition.
#[test]
fn server_start_sweeps_orphan_temp_tables() {
    let db = star_db(64);
    for orphan in ["jb_old_tmp", "jb_job9_msg0"] {
        db.create_table(
            orphan,
            Table::from_columns(vec![("x", Column::int(vec![1, 2]))]),
        )
        .unwrap();
    }
    let server = WireServer::builder(db).spawn().unwrap();
    let names = server.database().table_names();
    assert!(
        !names.iter().any(|n| n.starts_with("jb_")),
        "orphan temp tables must be swept at startup: {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "fact") && names.iter().any(|n| n == "dim"),
        "base tables must survive the sweep: {names:?}"
    );
}

/// The per-session replay cache is bounded: under a tiny byte budget,
/// idle sessions' cached responses are evicted (observable via the
/// eviction counter) while every connection stays fully usable for new
/// requests — the budget trades replay coverage, never liveness.
#[test]
fn replay_cache_eviction_under_byte_budget() {
    let server = WireServer::builder(star_db(64))
        .replay_budget_bytes(64)
        .spawn()
        .unwrap();

    // Three concurrent sessions, each caching a response far larger than
    // the 64-byte budget: every new cache write must evict the others.
    let backends: Vec<RemoteBackend> = (0..3)
        .map(|_| RemoteBackend::builder(server.addr()).connect().unwrap())
        .collect();
    for b in &backends {
        b.query("SELECT k, x, y FROM fact").unwrap();
    }
    assert!(
        server.replay_evictions() >= 1,
        "three over-budget cache writes must evict at least one entry"
    );

    // Eviction must not break the sessions: each still answers fresh
    // requests (new sequence numbers never consult the replay cache).
    for b in &backends {
        let t = b.query("SELECT COUNT(*) AS n FROM dim").unwrap();
        assert_eq!(t.column(None, "n").unwrap().get(0), Datum::Int(6));
    }
}
