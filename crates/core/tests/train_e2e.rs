//! End-to-end training tests over synthetic workloads.

#![allow(clippy::field_reassign_with_default)]

use joinboost::predict::{materialize_features, targets};
use joinboost::{
    train_decision_tree, train_gbm, train_random_forest, Dataset, TrainParams, UpdateMethod,
};
use joinboost_datagen::{favorita, imdb_galaxy, FavoritaConfig, ImdbConfig};
use joinboost_engine::{Database, EngineConfig};
use joinboost_semiring::loss::rmse;
use joinboost_semiring::Objective;

fn favorita_db(
    fact_rows: usize,
    dim_rows: usize,
) -> (Database, joinboost_datagen::favorita::Generated) {
    let gen = favorita(&FavoritaConfig {
        fact_rows,
        dim_rows,
        noise: 1.0,
        ..Default::default()
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();
    (db, gen)
}

fn eval_rmse_gbm(set: &Dataset, model: &joinboost::GbmModel) -> f64 {
    let t = materialize_features(set).unwrap();
    let ys = targets(&t).unwrap();
    let ps = model.predict(&t);
    rmse(&ys, &ps)
}

#[test]
fn decision_tree_beats_the_mean_predictor() {
    let (db, gen) = favorita_db(3000, 30);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_leaves = 16;
    let (tree, stats) = train_decision_tree(&set, &params).unwrap();
    assert!(tree.num_leaves() > 1, "tree must actually split");
    assert!(stats.split_queries > 0);

    let t = materialize_features(&set).unwrap();
    let ys = targets(&t).unwrap();
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let base = rmse(&ys, &vec![mean; ys.len()]);
    let preds: Vec<f64> = (0..t.num_rows())
        .map(|i| {
            tree.predict(&joinboost::predict::TableRow {
                table: &t,
                index: i,
            })
        })
        .collect();
    let tree_rmse = rmse(&ys, &preds);
    assert!(
        tree_rmse < 0.8 * base,
        "tree rmse {tree_rmse} vs baseline {base}"
    );
}

#[test]
fn decision_tree_leaf_weights_sum_to_total() {
    let (db, gen) = favorita_db(1000, 10);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let params = TrainParams::default();
    let (tree, _) = train_decision_tree(&set, &params).unwrap();
    let leaf_total: f64 = tree
        .nodes
        .iter()
        .filter(|n| n.split.is_none())
        .map(|n| n.weight)
        .sum();
    assert_eq!(leaf_total, 1000.0, "leaves partition all rows");
    assert!(tree.num_leaves() <= params.num_leaves);
}

#[test]
fn gbm_rmse_decreases_with_iterations() {
    let (db, gen) = favorita_db(2000, 20);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 20;
    params.learning_rate = 0.3;
    let model = train_gbm(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 20);

    let t = materialize_features(&set).unwrap();
    let ys = targets(&t).unwrap();
    // Error after 1 tree vs after all trees.
    let short = joinboost::GbmModel {
        trees: model.trees[..1].to_vec(),
        ..model.clone()
    };
    let r1 = rmse(&ys, &short.predict(&t));
    let rn = rmse(&ys, &model.predict(&t));
    assert!(rn < r1 * 0.8, "rmse must drop: 1 tree {r1}, 20 trees {rn}");
}

#[test]
fn gbm_update_methods_produce_identical_models() {
    // The four portable update methods must be pure implementation
    // choices: same trees, same predictions.
    let gen = favorita(&FavoritaConfig {
        fact_rows: 1200,
        dim_rows: 12,
        ..Default::default()
    });
    let mut reference: Option<joinboost::GbmModel> = None;
    for method in [
        UpdateMethod::CreateTable,
        UpdateMethod::UpdateInPlace,
        UpdateMethod::Naive,
        UpdateMethod::Interop,
        UpdateMethod::ColumnSwap,
    ] {
        let config = if method == UpdateMethod::ColumnSwap {
            EngineConfig::d_swap()
        } else {
            EngineConfig::duckdb_mem()
        };
        let db = Database::new(config);
        gen.load_into(&db).unwrap();
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let mut params = TrainParams::default();
        params.num_iterations = 5;
        params.update_method = method;
        let model = train_gbm(&set, &params).unwrap();
        match &reference {
            None => reference = Some(model),
            Some(r) => {
                assert_eq!(
                    r.trees, model.trees,
                    "method {method:?} diverged from CreateTable"
                );
                assert!((r.init_score - model.init_score).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn gbm_parallel_aggregation_bit_identical_to_serial() {
    // The engine's aggregate-sliced parallel aggregation folds every
    // group's values in row order on exactly one thread, so the whole
    // training run — every message and split query — must produce the
    // same model bit for bit.
    let gen = favorita(&FavoritaConfig {
        fact_rows: 2500,
        dim_rows: 25,
        noise: 1.0,
        ..Default::default()
    });
    let mut reference: Option<joinboost::GbmModel> = None;
    for threads in [1usize, 4] {
        let db = Database::new(EngineConfig {
            agg_threads: threads,
            ..EngineConfig::duckdb_mem()
        });
        gen.load_into(&db).unwrap();
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let mut params = TrainParams::default();
        params.num_iterations = 5;
        let model = train_gbm(&set, &params).unwrap();
        match &reference {
            None => reference = Some(model),
            Some(r) => {
                assert_eq!(
                    r.trees, model.trees,
                    "parallel aggregation changed the model"
                );
                assert_eq!(
                    r.init_score.to_bits(),
                    model.init_score.to_bits(),
                    "init score must be bit-identical"
                );
                let t = materialize_features(&set).unwrap();
                let serial = r.predict(&t);
                let parallel = model.predict(&t);
                for (a, b) in serial.iter().zip(&parallel) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "predictions must be bit-identical"
                    );
                }
            }
        }
    }
}

#[test]
fn gbm_on_a_paged_engine_with_an_8_page_pool_is_bit_identical() {
    // The out-of-core stress: the whole training run — every message
    // materialization, residual update and split query — on an engine
    // whose buffer pool holds 8 pages (32 KiB) while the working set is
    // megabytes, with the aggregation spill budget squeezed so banks park
    // on disk mid-query. Every page fault, eviction and spill must leave
    // the folded bits untouched.
    let gen = favorita(&FavoritaConfig {
        fact_rows: 2500,
        dim_rows: 25,
        noise: 1.0,
        ..Default::default()
    });
    let mut reference: Option<joinboost::GbmModel> = None;
    let dir = std::env::temp_dir().join(format!("jb_e2e_paged_{}", std::process::id()));
    for paged in [false, true] {
        let config = if paged {
            let _ = std::fs::remove_dir_all(&dir);
            EngineConfig {
                bufferpool_pages: 8,
                agg_spill_bytes: 4 << 10,
                ..EngineConfig::paged(&dir)
            }
        } else {
            EngineConfig::duckdb_mem()
        };
        let db = Database::new(config);
        gen.load_into(&db).unwrap();
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let mut params = TrainParams::default();
        params.num_iterations = 5;
        let model = train_gbm(&set, &params).unwrap();
        match &reference {
            None => reference = Some(model),
            Some(r) => {
                assert_eq!(r.trees, model.trees, "paging changed the model");
                assert_eq!(
                    r.init_score.to_bits(),
                    model.init_score.to_bits(),
                    "init score must be bit-identical"
                );
                let stats = db.bufferpool_stats().expect("paged engine");
                assert!(
                    stats.evictions > 0 && stats.spilled_bytes > 0,
                    "the tiny pool must actually thrash: {stats:?}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gbm_column_swap_requires_capable_backend() {
    let (db, gen) = favorita_db(200, 5);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 1;
    params.update_method = UpdateMethod::ColumnSwap;
    // Default in-memory engine has no swap support.
    assert!(train_gbm(&set, &params).is_err());
}

#[test]
fn gbm_l1_and_huber_objectives_train() {
    let (db, gen) = favorita_db(1500, 15);
    for objective in [
        Objective::AbsoluteError,
        Objective::Huber { delta: 50.0 },
        Objective::Fair { c: 10.0 },
        Objective::Quantile { alpha: 0.5 },
    ] {
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let mut params = TrainParams::default();
        params.objective = objective;
        params.num_iterations = 15;
        params.learning_rate = 0.5;
        let model = train_gbm(&set, &params).unwrap();
        let t = materialize_features(&set).unwrap();
        let ys = targets(&t).unwrap();
        let init_loss: f64 = ys
            .iter()
            .map(|&y| objective.loss(y, model.init_score))
            .sum();
        let ps = model.predict_raw(&t);
        let final_loss: f64 = ys
            .iter()
            .zip(&ps)
            .map(|(&y, &p)| objective.loss(y, p))
            .sum();
        assert!(
            final_loss < init_loss,
            "{}: loss must decrease ({init_loss} -> {final_loss})",
            objective.name()
        );
    }
}

#[test]
fn galaxy_gbm_trains_with_cpt() {
    let gen = imdb_galaxy(&ImdbConfig {
        persons: 40,
        movies: 30,
        cast_rows: 800,
        person_info_rows: 120,
        movie_info_rows: 90,
        seed: 42,
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();
    let set = Dataset::new(&db, gen.graph.clone(), "cast_info", "rating").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 8;
    params.learning_rate = 0.3;
    params.num_leaves = 4;
    params.update_method = UpdateMethod::CreateTable;
    let model = train_gbm(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 8);
    // Every tree respects CPT: all non-root splits are in the root's
    // cluster.
    let clusters = joinboost_graph::cluster::clusters(&set.graph);
    for tree in &model.trees {
        let Some(root_split) = &tree.nodes[0].split else {
            continue;
        };
        let root_rel = set.graph.rel_id(&root_split.relation).unwrap();
        let cluster = clusters.iter().find(|c| c.contains(root_rel)).unwrap();
        for node in &tree.nodes {
            if let Some(s) = &node.split {
                let rel = set.graph.rel_id(&s.relation).unwrap();
                assert!(
                    cluster.contains(rel),
                    "split on {} escapes the {} cluster",
                    s.feature,
                    set.graph.name(cluster.fact)
                );
            }
        }
    }
    // Training loss must drop relative to the constant predictor.
    let t = materialize_features(&set).unwrap();
    let ys = targets(&t).unwrap();
    let base = rmse(&ys, &vec![model.init_score; ys.len()]);
    let r = rmse(&ys, &model.predict(&t));
    assert!(r < base, "galaxy GBM must improve: base {base}, got {r}");
}

#[test]
fn galaxy_rejects_non_rmse_objectives() {
    let gen = imdb_galaxy(&ImdbConfig {
        cast_rows: 100,
        ..Default::default()
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();
    let set = Dataset::new(&db, gen.graph.clone(), "cast_info", "rating").unwrap();
    let mut params = TrainParams::default();
    params.objective = Objective::AbsoluteError;
    assert!(train_gbm(&set, &params).is_err());
}

#[test]
fn random_forest_trains_and_predicts() {
    let (db, gen) = favorita_db(2000, 20);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 10;
    params.bagging_fraction = 0.5;
    params.feature_fraction = 0.8;
    params.num_leaves = 8;
    let model = train_random_forest(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 10);

    let t = materialize_features(&set).unwrap();
    let ys = targets(&t).unwrap();
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let base = rmse(&ys, &vec![mean; ys.len()]);
    let r = rmse(&ys, &model.predict(&t));
    assert!(r < base, "forest must beat the mean: {r} vs {base}");
}

#[test]
fn random_forest_parallel_matches_sequential() {
    let (db, gen) = favorita_db(800, 10);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 4;
    params.bagging_fraction = 0.5;
    let seq = train_random_forest(&set, &params).unwrap();
    params.threads = 4;
    let set2 = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let par = train_random_forest(&set2, &params).unwrap();
    assert_eq!(
        seq.trees, par.trees,
        "parallelism must not change the model"
    );
}

#[test]
fn random_forest_on_galaxy_uses_ancestral_sampling() {
    let gen = imdb_galaxy(&ImdbConfig {
        persons: 25,
        movies: 20,
        cast_rows: 300,
        person_info_rows: 60,
        movie_info_rows: 50,
        seed: 1,
    });
    let db = Database::in_memory();
    gen.load_into(&db).unwrap();
    let set = Dataset::new(&db, gen.graph.clone(), "cast_info", "rating").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 3;
    params.bagging_fraction = 0.05;
    params.num_leaves = 4;
    let model = train_random_forest(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 3);
}

#[test]
fn temp_tables_cleaned_after_training() {
    let (db, gen) = favorita_db(500, 10);
    {
        let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
        let mut params = TrainParams::default();
        params.num_iterations = 3;
        let _ = train_gbm(&set, &params).unwrap();
    }
    // Only the 6 user tables survive.
    assert_eq!(db.table_names().len(), 6, "tables: {:?}", db.table_names());
}

#[test]
fn histogram_binning_trains_with_coarser_splits() {
    let (db, gen) = favorita_db(1500, 40);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 5;
    params.max_bins = 5;
    let model = train_gbm(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 5);
    let t = materialize_features(&set).unwrap();
    let ys = targets(&t).unwrap();
    let base = rmse(&ys, &vec![model.init_score; ys.len()]);
    let r = rmse(&ys, &model.predict(&t));
    assert!(r < base);
}

#[test]
fn cuboid_training_approximates_binned_training() {
    let (db, gen) = favorita_db(2000, 30);
    let set = Dataset::new(&db, gen.graph.clone(), "sales", "net_profit").unwrap();
    let mut params = TrainParams::default();
    params.num_iterations = 8;
    params.max_bins = 5;
    params.use_cuboid = true;
    let model = train_gbm(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 8);
    let r_cuboid = eval_rmse_gbm(&set, &model);
    let base = {
        let t = materialize_features(&set).unwrap();
        let ys = targets(&t).unwrap();
        rmse(&ys, &vec![model.init_score; ys.len()])
    };
    assert!(
        r_cuboid < base,
        "cuboid GBM must improve: {r_cuboid} vs {base}"
    );
    // The cuboid is much smaller than the fact table.
    // (5 features × 5 bins bounds it at 5^5 cells, but in practice far
    // fewer are populated than fact rows here.)
}
