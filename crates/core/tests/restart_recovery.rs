//! Kill a real `shard_server` process mid-job and restart it on the same
//! storage directory: nothing observable may be lost.
//!
//! The contract under test is the durable job registry + resumable
//! training stack:
//!
//! * a server aborted *mid-training* resumes the job from its persisted
//!   forest checkpoint and finishes with predictions `to_bits()`-identical
//!   to a never-crashed run (resume replays the stored trees' update
//!   statements, so the arithmetic history is byte-for-byte the same);
//! * Done / Cancelled / Failed jobs keep their ids, terminal states and
//!   (for Done) their deployed message tables across a SIGKILL + restart;
//! * job ids keep monotonically increasing after recovery.
//!
//! Both tests drive real child processes — an in-process "restart" would
//! leave the old worker threads writing to the same WAL.

use std::time::{Duration, Instant};

use joinboost::backend::{JobSpec, JobStatus, RemoteBackend, ServeClient, SqlBackend, WireServer};
use joinboost_engine::{Column, Database, Table};

// ---------------------------------------------------------------------------
// Workload: the dyadic star schema of serve_api.rs
// ---------------------------------------------------------------------------

const ROWS: i64 = 64;

fn star_fact() -> Table {
    Table::from_columns(vec![
        ("k", Column::int((0..ROWS).collect())),
        ("d_id", Column::int((0..ROWS).map(|i| i % 6).collect())),
        ("x", Column::int((0..ROWS).map(|i| (i * 13) % 40).collect())),
        (
            "y",
            Column::float(
                (0..ROWS)
                    .map(|i| (((i * 5) % 16) as f64) / 8.0 + ((i % 6) as f64) / 2.0)
                    .collect(),
            ),
        ),
    ])
}

fn star_dim() -> Table {
    Table::from_columns(vec![
        ("d_id", Column::int((0..6).collect())),
        ("g", Column::int((0..6).map(|d| (d * 3) % 5).collect())),
    ])
}

fn star_job(iterations: u32) -> JobSpec {
    JobSpec {
        relations: vec![
            ("fact".into(), vec!["x".into()]),
            ("dim".into(), vec!["g".into()]),
        ],
        edges: vec![("fact".into(), "dim".into(), vec!["d_id".into()])],
        target_relation: "fact".into(),
        target_column: "y".into(),
        key_column: Some("k".into()),
        num_iterations: iterations,
        ..JobSpec::default()
    }
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jb_restart_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Load the star tables onto a server over the wire.
fn load_star(addr: std::net::SocketAddr) {
    let backend = RemoteBackend::builder(addr).connect().unwrap();
    backend.create_table("fact", star_fact()).unwrap();
    backend.create_table("dim", star_dim()).unwrap();
}

/// Poll until the job reports `Running` (or panic after `timeout`).
fn wait_running(client: &ServeClient, id: u64, timeout: Duration) {
    let start = Instant::now();
    loop {
        match client.poll(id).unwrap() {
            JobStatus::Running { .. } => return,
            JobStatus::Queued => {}
            other => panic!("job {id} reached {other:?} before Running"),
        }
        assert!(start.elapsed() < timeout, "job {id} never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Prediction bit patterns over every fact key (None ⇒ u64::MAX).
fn predict_bits(client: &ServeClient, id: u64) -> Vec<u64> {
    let keys: Vec<i64> = (0..ROWS).collect();
    client
        .predict(id, &keys)
        .unwrap()
        .into_iter()
        .map(|s| s.map(|v| v.to_bits()).unwrap_or(u64::MAX))
        .collect()
}

// ---------------------------------------------------------------------------
// Child-process rig (same shape as remote_chaos.rs)
// ---------------------------------------------------------------------------

/// A real `shard_server` child process: spawned on an ephemeral port with
/// the given extra flags, killed on drop.
struct ShardServerProc {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl ShardServerProc {
    fn spawn(extra_args: &[&str]) -> ShardServerProc {
        use std::io::BufRead as _;
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_shard_server"))
            .args(extra_args)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn shard_server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("server must announce its address")
            .parse()
            .expect("valid socket address");
        ShardServerProc { child, addr }
    }

    /// Block until the child exits on its own (`--crash-after-iters`).
    fn wait_exit(&mut self) {
        let status = self.child.wait().expect("wait on child");
        assert!(
            !status.success(),
            "server was expected to abort, exited cleanly instead"
        );
    }

    /// SIGKILL the child — no warning, no flush, like the OOM killer.
    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

// ---------------------------------------------------------------------------
// Headline: crash mid-training, restart, bit-identical predictions
// ---------------------------------------------------------------------------

/// A server that aborts after 3 trained iterations of a 6-iteration job,
/// restarted on the same directory, must resume from the persisted
/// 3-tree checkpoint and serve predictions bit-identical to a server
/// that never crashed.
#[test]
fn sigkill_mid_training_resumes_to_bit_identical_predictions() {
    // Reference: the same job on an in-process, never-crashed server.
    let reference_bits = {
        let db = Database::in_memory();
        db.create_table("fact", star_fact()).unwrap();
        db.create_table("dim", star_dim()).unwrap();
        let server = WireServer::builder(db).spawn().unwrap();
        let client = ServeClient::connect(server.addr()).unwrap();
        let id = client.submit(&star_job(6)).unwrap();
        assert_eq!(client.wait(id).unwrap(), JobStatus::Done { iterations: 6 });
        predict_bits(&client, id)
    };

    let dir = fresh_dir("bitident");
    let dir_s = dir.to_str().unwrap();

    // Doomed server: persists the forest after every iteration and
    // aborts the whole process after the third.
    let mut doomed = ShardServerProc::spawn(&[
        "--storage",
        dir_s,
        "--job-checkpoint-iters",
        "1",
        "--crash-after-iters",
        "3",
    ]);
    load_star(doomed.addr);
    let client = ServeClient::connect(doomed.addr).unwrap();
    let id = client.submit(&star_job(6)).unwrap();
    // The abort fires inside the training callback; no clean shutdown,
    // no final registry write — only the per-iteration checkpoints.
    doomed.wait_exit();
    drop(client);

    // Restart on the same directory: boot recovery re-registers the job
    // and resumes it from the persisted 3-tree forest.
    let revived = ShardServerProc::spawn(&["--storage", dir_s]);
    let client = ServeClient::connect(revived.addr).unwrap();
    assert_eq!(
        client.wait(id).unwrap(),
        JobStatus::Done { iterations: 6 },
        "recovered job must finish all 6 iterations"
    );
    assert_eq!(
        predict_bits(&client, id),
        reference_bits,
        "resumed training diverged from the uncrashed run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Restart battery: every terminal (and one live) state survives SIGKILL
// ---------------------------------------------------------------------------

/// One server accumulates jobs in all four states — Done, Cancelled,
/// Failed, Running — then dies by SIGKILL. The restarted server must
/// report every terminal state unchanged (same ids), serve PredictBatch
/// for the Done job bit-identically, resume the Running job, and hand
/// out fresh ids above every recovered one.
#[test]
fn restart_battery_preserves_every_job_state() {
    let dir = fresh_dir("battery");
    let dir_s = dir.to_str().unwrap();

    let mut first = ShardServerProc::spawn(&["--storage", dir_s, "--job-checkpoint-iters", "4"]);
    load_star(first.addr);
    let client = ServeClient::connect(first.addr).unwrap();

    // Done: a short job run to completion, predictions recorded.
    let done_id = client.submit(&star_job(3)).unwrap();
    assert_eq!(
        client.wait(done_id).unwrap(),
        JobStatus::Done { iterations: 3 }
    );
    let done_bits = predict_bits(&client, done_id);

    // Cancelled: a job far too long to finish, cancelled once running.
    let cancel_id = client.submit(&star_job(50_000)).unwrap();
    wait_running(&client, cancel_id, Duration::from_secs(20));
    client.cancel(cancel_id).unwrap();
    assert_eq!(client.wait(cancel_id).unwrap(), JobStatus::Cancelled);

    // Failed: the target relation does not exist.
    let failed_id = client
        .submit(&JobSpec {
            target_relation: "no_such_table".into(),
            ..star_job(3)
        })
        .unwrap();
    let failed_msg = match client.wait(failed_id).unwrap() {
        JobStatus::Failed(msg) => msg,
        other => panic!("bad-relation job ended {other:?}, expected Failed"),
    };

    // Running: a long job killed mid-flight.
    let running_id = client.submit(&star_job(50_000)).unwrap();
    wait_running(&client, running_id, Duration::from_secs(20));
    drop(client);
    first.kill();

    // Restart. Every id and state must come back.
    let second = ShardServerProc::spawn(&["--storage", dir_s, "--job-checkpoint-iters", "4"]);
    let client = ServeClient::connect(second.addr).unwrap();

    assert_eq!(
        client.poll(done_id).unwrap(),
        JobStatus::Done { iterations: 3 },
        "Done job lost its terminal state"
    );
    assert_eq!(
        predict_bits(&client, done_id),
        done_bits,
        "Done job's predictions changed across restart"
    );
    assert_eq!(
        client.poll(cancel_id).unwrap(),
        JobStatus::Cancelled,
        "Cancelled job lost its terminal state"
    );
    assert_eq!(
        client.poll(failed_id).unwrap(),
        JobStatus::Failed(failed_msg),
        "Failed job lost its message"
    );

    // The Running job was resumed at boot: it must be live again
    // (Queued or Running), and cancellable like any other job.
    match client.poll(running_id).unwrap() {
        JobStatus::Queued | JobStatus::Running { .. } => {}
        other => panic!("killed-while-Running job recovered as {other:?}"),
    }
    wait_running(&client, running_id, Duration::from_secs(20));
    client.cancel(running_id).unwrap();
    assert_eq!(client.wait(running_id).unwrap(), JobStatus::Cancelled);

    // Fresh submissions never reuse a recovered id.
    let fresh_id = client.submit(&star_job(1)).unwrap();
    assert!(
        fresh_id > running_id,
        "fresh id {fresh_id} collides with recovered ids (max was {running_id})"
    );
    assert_eq!(
        client.wait(fresh_id).unwrap(),
        JobStatus::Done { iterations: 1 }
    );
    let _ = std::fs::remove_dir_all(&dir);
}
