//! The remote backend's wire protocol, attacked from three sides:
//!
//! * **proptests** — arbitrary tables (every `DataType`, NULL masks,
//!   empty tables, 0-column results, NaN payloads, `-0.0`) survive
//!   encode → decode *bit-exactly*, and arbitrary emitted statement text
//!   survives the wire unchanged;
//! * **live sockets** — a real in-process [`WireServer`] answers a
//!   [`RemoteBackend`] client with the same bits a local engine produces;
//! * **concurrency** — two clients share one server and train at the same
//!   time without cross-talk, and their temp tables are gone afterwards
//!   (the temp-table lifecycle half of the trait contract).

use proptest::prelude::*;

use joinboost::backend::split::{
    interval_delta_map, keys_from_table, keys_to_table, reconstruct_summaries,
    summaries_from_table, summaries_to_table, IntervalSummary,
};
use joinboost::backend::wire::{
    decode_request, decode_response, decode_table_bytes, encode_request, encode_response,
    encode_table_bytes, Request, Response,
};
use joinboost::backend::{RemoteBackend, SqlBackend, WireServer};
use joinboost::{train_gbm, Dataset, GbmModel, TrainParams};
use joinboost_engine::column::ColumnData;
use joinboost_engine::table::ColumnMeta;
use joinboost_engine::Datum;
use joinboost_engine::{Column, Database, Table};
use joinboost_sql::ast::{
    BinaryOp, Expr, OrderByItem, Query, SelectItem, Statement, TableRef, Value,
};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Raw column data of every type. Floats come from raw bit patterns, so
/// NaN payloads, infinities, subnormals and `-0.0` are all exercised;
/// string dictionaries may hold duplicates and unreferenced entries —
/// the codec must carry whatever the engine might hand it.
fn arb_column(rows: usize) -> impl Strategy<Value = Column> {
    let data = prop_oneof![
        prop::collection::vec(any::<i64>(), rows).prop_map(ColumnData::Int),
        prop::collection::vec(any::<u64>(), rows)
            .prop_map(|v| ColumnData::Float(v.into_iter().map(f64::from_bits).collect())),
        (
            prop::collection::vec("[a-z]{0,4}", 1..4),
            prop::collection::vec(any::<u32>(), rows)
        )
            .prop_map(|(dict, codes)| {
                let n = dict.len() as u32;
                ColumnData::Str {
                    dict,
                    codes: codes.into_iter().map(|c| c % n).collect(),
                }
            }),
    ];
    (
        data,
        prop::option::of(prop::collection::vec(any::<bool>(), rows)),
    )
        .prop_map(|(data, validity)| Column { data, validity })
}

/// Arbitrary tables: 0–3 columns (0-column results included), 0–20 rows,
/// occasionally qualified column names.
fn arb_table() -> impl Strategy<Value = Table> {
    (0usize..21).prop_flat_map(|rows| {
        (prop::collection::vec(
            (
                "[a-z][a-z0-9_]{0,5}",
                prop::option::of("[a-z]{1,4}"),
                arb_column(rows),
            ),
            0..4,
        ),)
            .prop_map(|(cols,)| {
                let mut t = Table::new();
                for (name, qualifier, col) in cols {
                    let meta = match qualifier {
                        None => ColumnMeta::new(name),
                        Some(q) => ColumnMeta::qualified(q, name),
                    };
                    t.push_column(meta, col);
                }
                t
            })
    })
}

/// Identifier strategy avoiding SQL reserved words.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("not a keyword", |s| {
        joinboost_sql::parse_expr(s)
            .map(|e| matches!(e, Expr::Column { .. }))
            .unwrap_or(false)
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|v| Expr::Literal(Value::Int(v))),
        (0.0f64..100.0).prop_map(|v| Expr::Literal(Value::Float((v * 64.0).round() / 64.0))),
        ident().prop_map(Expr::col),
        (ident(), ident()).prop_map(|(t, c)| Expr::qcol(t, c)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::And),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(Expr::neg),
            inner.clone().prop_map(|e| Expr::func("SUM", vec![e])),
            inner.prop_map(|e| Expr::func("ABS", vec![e])),
        ]
    })
}

/// The statement shapes the trainer emits: SELECTs (aggregates, windows,
/// ordering), CREATE TABLE AS, UPDATE and DROP.
fn arb_statement() -> impl Strategy<Value = Statement> {
    let query = (
        prop::collection::vec((arb_expr(), prop::option::of(ident())), 1..4),
        prop::option::of(ident()),
        prop::option::of(arb_expr()),
        prop::option::of((arb_expr(), any::<bool>())),
        prop::option::of(0u64..100),
    )
        .prop_map(|(items, from, where_clause, order, limit)| Query {
            items: items
                .into_iter()
                .map(|(expr, alias)| SelectItem { expr, alias })
                .collect(),
            from: from.map(TableRef::named),
            joins: Vec::new(),
            where_clause,
            group_by: Vec::new(),
            order_by: order
                .map(|(expr, desc)| vec![OrderByItem { expr, desc }])
                .unwrap_or_default(),
            limit,
        })
        .boxed();
    prop_oneof![
        query.clone().prop_map(Statement::Select),
        (ident(), query.clone(), any::<bool>()).prop_map(|(name, query, or_replace)| {
            Statement::CreateTableAs {
                name,
                query,
                or_replace,
            }
        }),
        (ident(), ident(), arb_expr(), prop::option::of(arb_expr())).prop_map(
            |(table, col, val, where_clause)| Statement::Update {
                table,
                assignments: vec![(col, val)],
                where_clause,
            }
        ),
        (ident(), any::<bool>())
            .prop_map(|(name, if_exists)| Statement::DropTable { name, if_exists }),
    ]
}

// ---------------------------------------------------------------------------
// Proptests: the codec itself
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tables survive the columnar codec bit-exactly: re-encoding the
    /// decoded table reproduces the original bytes (value comparison
    /// would be blind to NaN payloads and `-0.0`).
    #[test]
    fn wire_roundtrip_tables(t in arb_table()) {
        let bytes = encode_table_bytes(&t);
        let back = decode_table_bytes(&bytes).expect("decode");
        prop_assert_eq!(encode_table_bytes(&back), bytes);
        prop_assert_eq!(back.num_columns(), t.num_columns());
        prop_assert_eq!(back.num_rows(), t.num_rows());
        prop_assert_eq!(&back.meta, &t.meta);
    }

    /// The same table inside a CreateTable request frame.
    #[test]
    fn wire_roundtrip_create_table_requests(t in arb_table(), name in ident()) {
        let req = Request::CreateTable { name, table: t };
        let enc = encode_request(&req);
        let back = decode_request(&enc).expect("decode");
        prop_assert_eq!(encode_request(&back), enc);
    }

    /// Arbitrary emitted statement text survives the wire unchanged —
    /// byte for byte, so the server re-parses exactly what the client's
    /// planner printed.
    #[test]
    fn wire_roundtrip_statement_text(stmt in arb_statement()) {
        let sql = stmt.to_string();
        let req = Request::Execute { sql: sql.clone() };
        match decode_request(&encode_request(&req)).expect("decode") {
            Request::Execute { sql: back } => prop_assert_eq!(back, sql),
            other => prop_assert!(false, "wrong request decoded: {:?}", other),
        }
    }

    /// Result tables inside response frames (the server → client leg).
    #[test]
    fn wire_roundtrip_table_responses(t in arb_table()) {
        let resp = Response::Table(t);
        let enc = encode_response(&resp);
        let back = decode_response(&enc).expect("decode");
        prop_assert_eq!(encode_response(&back), enc);
    }
}

// ---------------------------------------------------------------------------
// Proptests: the delta-encoded split wire
// ---------------------------------------------------------------------------

/// Deterministic bit-pattern generator (splitmix64): summaries whose
/// fields cover the whole `f64` bit space — NaN payloads, infinities,
/// subnormals — so "reconstructs bit-exactly" means exactly that.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn summary_from_seed(seed: u64) -> IntervalSummary {
    let mut s = seed;
    let mut next = || {
        s = mix64(s);
        s
    };
    IntervalSummary {
        dc: f64::from_bits(next()),
        ds: f64::from_bits(next()),
        min0: f64::from_bits(next()),
        max0: f64::from_bits(next()),
        min1: f64::from_bits(next()),
        max1: f64::from_bits(next()),
        maxdev: f64::from_bits(next()),
        maxabsdc: f64::from_bits(next()),
        rows: next() >> 1,
    }
}

fn assert_summaries_bit_eq(a: &[IntervalSummary], b: &[IntervalSummary]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let bits = |s: &IntervalSummary| {
            [
                s.dc.to_bits(),
                s.ds.to_bits(),
                s.min0.to_bits(),
                s.max0.to_bits(),
                s.min1.to_bits(),
                s.max1.to_bits(),
                s.maxdev.to_bits(),
                s.maxabsdc.to_bits(),
                s.rows,
            ]
        };
        assert_eq!(bits(x), bits(y), "summary {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The coordinator's delta cache round-trips through the real wire
    /// frames bit-exactly: an arbitrary cached summary table, an
    /// arbitrary grid refinement, the shard's changed-rows-only reply
    /// shipped as wire tables — reconstruction over the cache reproduces
    /// the full new summary vector bit for bit, and replies of the wrong
    /// shape are rejected (`None`), never mis-assembled.
    #[test]
    fn split_delta_frames_reconstruct_summaries_bit_exactly(
        old_raw in prop::collection::vec(any::<i32>(), 1..12),
        extra in prop::collection::vec(any::<i32>(), 0..8),
        seed in any::<u64>(),
    ) {
        // Ascending deduped grids; the new grid refines the old one (the
        // map is defined for arbitrary ascending grids, but refinement —
        // keys only inserted — is what the protocol ships).
        let mut old: Vec<i64> = old_raw.iter().map(|&k| k as i64).collect();
        old.sort_unstable();
        old.dedup();
        let mut newg: Vec<i64> = old.clone();
        newg.extend(extra.iter().map(|&k| k as i64));
        newg.sort_unstable();
        newg.dedup();
        let old_grid: Vec<Datum> = old.iter().map(|&k| Datum::Int(k)).collect();
        let new_grid: Vec<Datum> = newg.iter().map(|&k| Datum::Int(k)).collect();
        let old_summ: Vec<IntervalSummary> = (0..old_grid.len())
            .map(|j| summary_from_seed(seed ^ j as u64))
            .collect();

        let map = interval_delta_map(&old_grid, &new_grid);
        prop_assert_eq!(map.len(), new_grid.len());
        // Purity of summaries: an interval whose bounds survived carries
        // the cached value; a subdivided one gets a fresh value.
        let full: Vec<IntervalSummary> = map
            .iter()
            .enumerate()
            .map(|(j, slot)| match slot {
                Some(oi) => old_summ[*oi],
                None => summary_from_seed(seed ^ 0xdead_beef ^ ((j as u64) << 32)),
            })
            .collect();
        let changed_idx: Vec<u32> = map
            .iter()
            .enumerate()
            .filter_map(|(j, s)| s.is_none().then_some(j as u32))
            .collect();
        let changed: Vec<IntervalSummary> =
            changed_idx.iter().map(|&j| full[j as usize]).collect();

        // Request leg: the delta request frame carries the grid and the
        // changed indices unmangled.
        let req = Request::SplitSummariesDelta {
            id: 7,
            grid: keys_to_table(&new_grid),
            changed: changed_idx.clone(),
        };
        match decode_request(&encode_request(&req)).expect("decode delta request") {
            Request::SplitSummariesDelta { id, grid, changed: back_idx } => {
                prop_assert_eq!(id, 7);
                prop_assert_eq!(keys_from_table(&grid), new_grid.clone());
                prop_assert_eq!(back_idx, changed_idx);
            }
            other => prop_assert!(false, "wrong request decoded: {:?}", other),
        }

        // Response leg: the shard's changed-rows table through the
        // response codec, then reconstruction over the cache.
        let resp = Response::Table(summaries_to_table(&changed));
        let shipped = match decode_response(&encode_response(&resp)).expect("decode") {
            Response::Table(t) => summaries_from_table(&t).expect("well-formed summary table"),
            other => panic!("wrong response decoded: {other:?}"),
        };
        assert_summaries_bit_eq(&shipped, &changed);
        let rebuilt = reconstruct_summaries(&old_summ, &map, &shipped)
            .expect("delta reply matching the map must reconstruct");
        assert_summaries_bit_eq(&rebuilt, &full);

        // Wrong-shape replies are rejected, not mis-assembled: one row
        // short, one row long, and (when nothing changed) one spurious row.
        if let Some((_, rest)) = shipped.split_first() {
            prop_assert!(reconstruct_summaries(&old_summ, &map, rest).is_none());
        }
        let mut long = shipped.clone();
        long.push(summary_from_seed(seed ^ 0x5eed));
        prop_assert!(reconstruct_summaries(&old_summ, &map, &long).is_none());
        // And a cache that is too short to cover the map is a typed miss.
        if map.iter().any(|s| matches!(s, Some(oi) if *oi >= 1)) {
            prop_assert!(reconstruct_summaries(&old_summ[..1], &map, &shipped).is_none());
        }
    }

    /// Truncated delta frames are typed decode errors and corrupted ones
    /// never panic or over-allocate — a byte flip may still decode to
    /// *some* valid frame, but it must do so inside the frame's own
    /// bytes, not by trusting a poisoned length prefix.
    #[test]
    fn truncated_or_corrupt_delta_frames_are_typed_errors(
        keys in prop::collection::vec(any::<i32>(), 1..10),
        idx in prop::collection::vec(any::<u8>(), 0..6),
        cut_frac in 0.0f64..1.0,
        flip_pos_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut ks: Vec<i64> = keys.iter().map(|&k| k as i64).collect();
        ks.sort_unstable();
        ks.dedup();
        let grid: Vec<Datum> = ks.iter().map(|&k| Datum::Int(k)).collect();
        let mut changed: Vec<u32> = idx.iter().map(|&v| v as u32).collect();
        changed.sort_unstable();
        changed.dedup();
        let req = Request::SplitSummariesDelta { id: 3, grid: keys_to_table(&grid), changed };
        let enc = encode_request(&req);

        // Any strict prefix fails to decode — typed error, no panic.
        let cut = ((enc.len() as f64) * cut_frac) as usize;
        if cut < enc.len() {
            prop_assert!(decode_request(&enc[..cut]).is_err());
        }

        // A single flipped bit anywhere: decoding must return (Ok or
        // Err), never panic, and never allocate beyond the frame.
        let mut bad = enc.clone();
        let pos = (((enc.len() - 1) as f64) * flip_pos_frac) as usize;
        bad[pos] ^= 1 << flip_bit;
        let _ = decode_request(&bad);
    }
}

// ---------------------------------------------------------------------------
// Live-socket round trips
// ---------------------------------------------------------------------------

/// Every datatype, NULLs included, through a real server: the remote
/// snapshot must carry the same bits a local engine reports.
#[test]
fn remote_snapshot_is_bit_identical_to_local() {
    let table = Table::from_columns(vec![
        ("i", Column::int(vec![1, -7, i64::MAX, 0])),
        (
            "f",
            Column {
                data: ColumnData::Float(vec![0.5, -0.0, f64::NAN, 1.0 / 3.0]),
                validity: Some(vec![true, true, false, true]),
            },
        ),
        (
            "s",
            Column::str(vec!["a".into(), "".into(), "a".into(), "long-ish".into()]),
        ),
    ]);
    let local = Database::in_memory();
    local.create_table("t", table.clone()).unwrap();

    let server = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let remote = RemoteBackend::builder(server.addr()).connect().unwrap();
    remote.create_table("t", table).unwrap();

    let a = local.snapshot("t").unwrap();
    let b = remote.snapshot("t").unwrap();
    assert_eq!(encode_table_bytes(&a), encode_table_bytes(&b));

    // Schema lookups and aggregates agree with the local engine.
    assert_eq!(
        remote.column_names("t").unwrap(),
        local.column_names("t").unwrap()
    );
    assert_eq!(remote.row_count("t").unwrap(), 4);
    let q = "SELECT SUM(i) AS si, COUNT(*) AS c FROM t";
    assert_eq!(remote.query(q).unwrap(), local.query(q).unwrap());

    // gather_rows ships only the requested rows, in order.
    let got = remote.gather_rows("t", &[2, 0]).unwrap();
    assert_eq!(got.num_rows(), 2);
    assert_eq!(got.columns[0].get(0), a.columns[0].get(2));
    assert_eq!(got.columns[0].get(1), a.columns[0].get(0));
    assert!(remote.gather_rows("t", &[4]).is_err(), "out of range");

    // SQL whose 6th *byte* sits inside a multi-byte char must not panic
    // the client's statement counter — it reaches the server and fails
    // to parse like any other bad text.
    assert!(remote.execute("SELEC\u{e9} nope").is_err());

    // Engine errors come back as the same variant, not a stringly blob.
    let err = remote.query("SELECT x FROM ghost").unwrap_err();
    assert!(
        matches!(err, joinboost_engine::EngineError::UnknownTable(ref t) if t == "ghost"),
        "{err:?}"
    );

    // The wire volume is measured, both directions.
    let stats = remote.stats();
    assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
    assert!(stats.statements >= 2);
}

/// A random sample of arbitrary tables through the live socket: what the
/// client loads is what the server's engine then snapshots back, bit for
/// bit (modulo the engine's own storage — so compare against a local
/// engine fed the identical table).
#[test]
fn remote_load_snapshot_matches_local_engine_on_random_tables() {
    use proptest::strategy::Strategy as _;
    use proptest::test_runner::seed_for;
    let server = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let remote = RemoteBackend::builder(server.addr()).connect().unwrap();
    let strat = arb_table();
    let mut rng = proptest::rng::TestRng::new(seed_for(
        "remote_load_snapshot_matches_local_engine_on_random_tables",
    ));
    for i in 0..32 {
        let t = strat.generate(&mut rng);
        let name = format!("t{i}");
        let local = Database::in_memory();
        local.create_table(&name, t.clone()).unwrap();
        remote.create_table(&name, t).unwrap();
        let a = local.snapshot(&name).unwrap();
        let b = remote.snapshot(&name).unwrap();
        assert_eq!(encode_table_bytes(&a), encode_table_bytes(&b), "table {i}");
    }
}

// ---------------------------------------------------------------------------
// Concurrency: one server, two clients
// ---------------------------------------------------------------------------

fn star_tables(tag: &str, rows: usize, seed: i64) -> (Table, Table, joinboost_graph::JoinGraph) {
    let dim_rows = 8i64;
    let fact = Table::from_columns(vec![
        ("k", Column::int((0..rows as i64).collect())),
        (
            "d_id",
            Column::int((0..rows as i64).map(|i| (i + seed) % dim_rows).collect()),
        ),
        (
            "y",
            Column::float(
                (0..rows as i64)
                    .map(|i| (((i * (7 + seed)) % 32) as f64) / 8.0)
                    .collect(),
            ),
        ),
    ]);
    let dim = Table::from_columns(vec![
        ("d_id", Column::int((0..dim_rows).collect())),
        (
            "g",
            Column::int((0..dim_rows).map(|d| (d * (3 + seed)) % 5).collect()),
        ),
    ]);
    let mut graph = joinboost_graph::JoinGraph::new();
    graph.add_relation(&format!("fact_{tag}"), &[]).unwrap();
    graph.add_relation(&format!("dim_{tag}"), &["g"]).unwrap();
    graph
        .add_edge(&format!("fact_{tag}"), &format!("dim_{tag}"), &["d_id"])
        .unwrap();
    (fact, dim, graph)
}

fn train_star(backend: &dyn SqlBackend, tag: &str, rows: usize, seed: i64) -> GbmModel {
    let (fact, dim, graph) = star_tables(tag, rows, seed);
    backend.create_table(&format!("fact_{tag}"), fact).unwrap();
    backend.create_table(&format!("dim_{tag}"), dim).unwrap();
    let set = Dataset::new(backend, graph, &format!("fact_{tag}"), "y").unwrap();
    let params = TrainParams {
        num_iterations: 2,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    train_gbm(&set, &params).unwrap()
}

/// Two clients, one server, disjoint base tables and `jb_<id>_` temp
/// namespaces: concurrent training runs must not observe each other, and
/// both must leave the server clean of temp tables when their datasets
/// drop.
#[test]
fn two_clients_train_concurrently_without_crosstalk() {
    let server = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let addr = server.addr();

    // References: the same two workloads on local engines.
    let ref_a = train_star(&Database::in_memory(), "a", 400, 1);
    let ref_b = train_star(&Database::in_memory(), "b", 400, 2);
    assert_ne!(
        ref_a.trees, ref_b.trees,
        "the two workloads must be distinguishable for cross-talk to be observable"
    );

    let (model_a, model_b) = std::thread::scope(|scope| {
        let ha = scope.spawn(move || {
            let backend = RemoteBackend::builder(addr).connect().unwrap();
            train_star(&backend, "a", 400, 1)
        });
        let hb = scope.spawn(move || {
            let backend = RemoteBackend::builder(addr).connect().unwrap();
            train_star(&backend, "b", 400, 2)
        });
        (ha.join().unwrap(), hb.join().unwrap())
    });

    assert_eq!(
        model_a.trees, ref_a.trees,
        "client A diverged under concurrency"
    );
    assert_eq!(
        model_b.trees, ref_b.trees,
        "client B diverged under concurrency"
    );
    assert_eq!(model_a.init_score.to_bits(), ref_a.init_score.to_bits());
    assert_eq!(model_b.init_score.to_bits(), ref_b.init_score.to_bits());

    // Temp-table lifecycle: both datasets dropped → no jb_ tables remain
    // on the shared server; the base tables are untouched.
    let names = server.database().table_names();
    assert!(
        !names.iter().any(|n| n.starts_with("jb_")),
        "temp tables leaked: {names:?}"
    );
    for t in ["fact_a", "dim_a", "fact_b", "dim_b"] {
        assert!(names.iter().any(|n| n == t), "{t} missing from {names:?}");
    }
}
