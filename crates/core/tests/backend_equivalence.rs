//! The portability claim, end to end: the same training run against every
//! [`SqlBackend`] implementation must produce the *same model* — not just
//! statistically, but bit for bit.
//!
//! Floating-point `⊕` is only associative on values where no addition ever
//! rounds, so the workload pins everything to a dyadic grid (see
//! `DESIGN.md` § Backends):
//!
//! * the target is quantized to multiples of 1/8 (exact in `f64`),
//! * `leaf_quantization` rounds the initial score and every leaf value to
//!   the 2⁻¹⁰ grid,
//! * the learning rate is 0.5 (dyadic).
//!
//! Under those conditions every residual, message aggregate and split
//! statistic the trainer ever sums is a dyadic rational of bounded
//! magnitude, so shard merge order cannot change a single bit — which is
//! exactly what this test asserts for 1-shard and 4-shard backends.

use joinboost::backend::{
    EngineBackend, PushdownConfig, RemoteBackend, RemoteOptions, ShardedBackend, SqlBackend,
    SqlTextBackend,
};
use joinboost::{train_gbm, Dataset, GbmModel, TrainParams};
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::EngineConfig;

/// A real `shard_server` child process (cross-process, not a thread):
/// spawned on an ephemeral port, killed on drop.
struct ShardServerProc {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl ShardServerProc {
    fn spawn() -> ShardServerProc {
        use std::io::BufRead as _;
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_shard_server"))
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn shard_server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("server must announce its address")
            .parse()
            .expect("valid socket address");
        ShardServerProc { child, addr }
    }
}

impl Drop for ShardServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn workload() -> joinboost_datagen::favorita::Generated {
    favorita(&FavoritaConfig {
        fact_rows: 3000,
        dim_rows: 30,
        noise: 1.0,
        ..Default::default()
    })
}

fn load_and_train(backend: &dyn SqlBackend) -> GbmModel {
    let gen = workload();
    for (name, t) in &gen.tables {
        backend.create_table(name, t.clone()).unwrap();
    }
    // Quantize the target to the 1/8 grid: FLOOR(y*8) is exact for these
    // magnitudes and /8 is an exponent shift, so the stored values are
    // dyadic rationals and every sum of them is exact in f64.
    backend
        .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
        .unwrap();
    let set = Dataset::new(backend, gen.graph.clone(), "sales", "net_profit").unwrap();
    let params = TrainParams {
        num_iterations: 4,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    train_gbm(&set, &params).unwrap()
}

fn assert_bit_identical(reference: &GbmModel, model: &GbmModel, who: &str) {
    assert_eq!(
        reference.init_score.to_bits(),
        model.init_score.to_bits(),
        "{who}: init score diverged"
    );
    assert_eq!(
        reference.trees.len(),
        model.trees.len(),
        "{who}: tree count diverged"
    );
    for (i, (a, b)) in reference.trees.iter().zip(&model.trees).enumerate() {
        assert_eq!(a.nodes.len(), b.nodes.len(), "{who}: tree {i} shape");
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.split, nb.split, "{who}: tree {i} split");
            assert_eq!(
                na.value.to_bits(),
                nb.value.to_bits(),
                "{who}: tree {i} leaf value diverged ({} vs {})",
                na.value,
                nb.value
            );
            assert_eq!(
                na.weight.to_bits(),
                nb.weight.to_bits(),
                "{who}: tree {i} weight diverged"
            );
        }
    }
}

#[test]
fn all_backends_train_bit_identical_gbms() {
    // Reference: the plain engine behind the AST fast path.
    let engine = EngineBackend::in_memory();
    let reference = load_and_train(&engine);
    assert_eq!(reference.trees.len(), 4);
    assert!(
        reference.trees.iter().any(|t| t.num_leaves() > 1),
        "the workload must actually produce splits"
    );

    // SQL text: every statement through print ∘ parse ∘ print.
    let text = SqlTextBackend::in_memory();
    let model = load_and_train(&text);
    assert_bit_identical(&reference, &model, "sql-text");
    assert!(
        text.round_trips() > 50,
        "training must have exercised the text path ({} round-trips)",
        text.round_trips()
    );

    // Sharded: 1 shard (degenerate) and 4 shards (real fan-out + merge),
    // with the shard-local split evaluation forced on even at this small
    // cardinality (min_rows 0) so the summary/compression protocol is
    // what actually produces the asserted bits.
    for shards in [1usize, 4] {
        let sharded = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "sales", "items_id");
        sharded.set_pushdown_config(PushdownConfig {
            boundaries_per_shard: 8,
            min_rows: 0,
            delta: true,
        });
        let model = load_and_train(&sharded);
        assert_bit_identical(&reference, &model, &format!("sharded x{shards}"));
        let stats = sharded.stats();
        assert!(stats.fanout_selects > 0, "aggregates must fan out");
        assert!(stats.broadcast_statements > 0, "updates must broadcast");
        assert!(
            stats.pushdown_splits > 0,
            "split queries must evaluate shard-locally"
        );
        if shards > 1 {
            assert!(stats.rows_shipped > 0, "merging must move rows");
            // The fact partition really is spread out.
            let nonempty = (0..shards)
                .filter(|&i| sharded.shard(i).row_count("sales").unwrap_or(0) > 0)
                .count();
            assert!(nonempty > 1, "hash partitioning left all rows on one shard");
        }
    }
}

/// The out-of-core claim: the paged engine — tables on disk behind a
/// buffer pool, scans pinning pages one at a time — trains the same bits
/// as the in-memory engine, even when the pool is squeezed to 8 pages
/// (32 KiB, far below the working set, so every scan thrashes) and the
/// aggregation spill budget is forced down so accumulator banks park on
/// disk mid-query. Paging moves bytes; it must never touch fold order.
#[test]
fn paged_engine_trains_bit_identical_gbms_even_at_an_8_page_pool() {
    let engine = EngineBackend::in_memory();
    let reference = load_and_train(&engine);

    for (pool_pages, spill_bytes) in [(256usize, 64usize << 20), (8, 4 << 10)] {
        let dir = std::env::temp_dir().join(format!(
            "jb_equiv_paged_{}_{pool_pages}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            bufferpool_pages: pool_pages,
            agg_spill_bytes: spill_bytes,
            ..EngineConfig::paged(&dir)
        };
        let paged = EngineBackend::labeled(config, format!("paged-{pool_pages}"));
        let model = load_and_train(&paged);
        assert_bit_identical(&reference, &model, &format!("paged {pool_pages} pages"));
        let stats = paged
            .database()
            .bufferpool_stats()
            .expect("paged engine exposes pool stats");
        assert!(stats.misses > 0, "scans must actually fault pages in");
        if pool_pages == 8 {
            assert!(
                stats.evictions > 0,
                "an 8-page pool must thrash on this workload: {stats:?}"
            );
            assert!(
                stats.spilled_bytes > 0,
                "evicting dirty frames must write pages back: {stats:?}"
            );
        }
        drop(paged);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The portability claim across a *process boundary*: the same training
/// run against engines living in separate `shard_server` processes —
/// reached only through SQL text and columnar blocks over sockets — must
/// produce the same bits as the in-process engine, with the split
/// pushdown forced on so the PR-4 summary protocol is what actually runs
/// over the wire.
#[test]
fn remote_backends_train_bit_identical_gbms_cross_process() {
    let engine = EngineBackend::in_memory();
    let reference = load_and_train(&engine);

    // One remote engine process behind a plain RemoteBackend.
    {
        let server = ShardServerProc::spawn();
        let remote = RemoteBackend::builder(server.addr).connect().unwrap();
        let model = load_and_train(&remote);
        assert_bit_identical(&reference, &model, "remote single");
        let stats = remote.stats();
        assert!(
            stats.bytes_sent > 0 && stats.bytes_received > 0,
            "wire volume must be measured: {stats:?}"
        );
        assert!(stats.statements > 50, "training must run over the wire");
    }

    // Multi-process sharding: the fact partitioned across 1 and 4 server
    // processes, coordinator local, pushdown forced on.
    for shards in [1usize, 4] {
        let servers: Vec<ShardServerProc> = (0..shards).map(|_| ShardServerProc::spawn()).collect();
        let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|s| s.addr).collect();
        let remote = ShardedBackend::remote(
            &addrs,
            EngineConfig::duckdb_mem(),
            "sales",
            "items_id",
            RemoteOptions::default(),
        )
        .unwrap();
        remote.set_pushdown_config(PushdownConfig {
            boundaries_per_shard: 8,
            min_rows: 0,
            delta: true,
        });
        let model = load_and_train(&remote);
        assert_bit_identical(&reference, &model, &format!("remote x{shards}"));
        let stats = remote.stats();
        assert!(stats.fanout_selects > 0, "aggregates must fan out");
        assert!(
            stats.pushdown_splits > 0,
            "split queries must evaluate shard-locally over the wire"
        );
        assert!(
            stats.bytes_sent > 0 && stats.bytes_received > 0,
            "wire volume must be measured: {stats:?}"
        );
        if shards > 1 {
            let nonempty = (0..shards)
                .filter(|&i| remote.shard(i).row_count("sales").unwrap_or(0) > 0)
                .count();
            assert!(
                nonempty > 1,
                "hash partitioning left all rows on one server"
            );
        }
    }
}

/// The serving tier's exactness claim across every backend: factorized
/// scoring (per-relation message tables, k dictionary lookups + ⊕-adds,
/// no join) must be *bit-identical* to scoring over the materialized
/// join — on the in-process engine, on 1- and 4-shard backends (fact
/// messages partitioned, dim messages replicated, partial scores merged
/// by the coordinator), and across a real process boundary where only
/// keys and partial sums cross the wire.
#[test]
fn factorized_scoring_matches_join_scoring_bit_for_bit_on_all_backends() {
    use joinboost::{FactorizedScorer, JoinScorer, Scorer};
    use joinboost_engine::table::ColumnMeta;
    use joinboost_engine::Column;

    // The favorita fact has no unique key: append one.
    let keyed_tables = |gen: &joinboost_datagen::favorita::Generated| {
        let mut tables = gen.tables.clone();
        for (name, t) in &mut tables {
            if name == "sales" {
                t.push_column(
                    ColumnMeta::new("sale_id"),
                    Column::int((0..t.num_rows() as i64).collect()),
                );
            }
        }
        tables
    };
    let gen = workload();
    let params = TrainParams {
        num_iterations: 4,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    let load = |backend: &dyn SqlBackend| {
        for (name, t) in keyed_tables(&gen) {
            backend.create_table(&name, t).unwrap();
        }
        backend
            .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
            .unwrap();
    };
    // Keys 0..N exist; the tail keys do not (inner-join misses → None).
    let n = gen
        .tables
        .iter()
        .find(|(n, _)| n == "sales")
        .unwrap()
        .1
        .num_rows() as i64;
    let keys: Vec<i64> = (0..n + 10).collect();

    // Reference: the materialized-join scorer on the plain engine.
    let engine = EngineBackend::in_memory();
    load(&engine);
    let set = Dataset::new(&engine, gen.graph.clone(), "sales", "net_profit").unwrap();
    let model = train_gbm(&set, &params).unwrap();
    let join = JoinScorer::compile(&set, &model, "sale_id").unwrap();
    let reference = join.score_batch(&keys).unwrap();
    assert!(reference[..n as usize].iter().all(|s| s.is_some()));
    assert!(reference[n as usize..].iter().all(|s| s.is_none()));

    let check = |backend: &dyn SqlBackend, who: &str| {
        load(backend);
        let set = Dataset::new(backend, gen.graph.clone(), "sales", "net_profit").unwrap();
        let model = train_gbm(&set, &params).unwrap();
        let scorer = FactorizedScorer::compile(&set, &model, "sale_id").unwrap();
        let scores = scorer.score_batch(&keys).unwrap();
        assert_eq!(scores.len(), reference.len(), "{who}: length");
        for (i, (r, s)) in reference.iter().zip(&scores).enumerate() {
            assert_eq!(
                r.map(f64::to_bits),
                s.map(f64::to_bits),
                "{who}: key {} diverged ({r:?} vs {s:?})",
                keys[i]
            );
        }
    };

    check(&EngineBackend::in_memory(), "engine factorized");
    for shards in [1usize, 4] {
        let sharded = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "sales", "items_id");
        check(&sharded, &format!("sharded x{shards} factorized"));
        if shards > 1 {
            assert!(
                sharded.stats().fanout_selects > 0,
                "factorized scoring must fan out to the shards"
            );
        }
    }
    {
        let server = ShardServerProc::spawn();
        let remote = RemoteBackend::builder(server.addr).connect().unwrap();
        check(&remote, "remote factorized");
    }
}

#[test]
fn histogram_binned_training_is_bit_identical_across_backends() {
    // Binned absorbs (`GROUP BY FLOOR(..)` with `MAX(f)` as the split
    // value) now fan out over sharded facts: the bin key rides in the
    // output and MAX/⊕ re-aggregate per bin on merge. The MAX merge is
    // exact (no arithmetic), so the dyadic recipe again forces bit
    // identity — which this test asserts against the engine path.
    let gen = workload();
    let train = |backend: &dyn SqlBackend| -> GbmModel {
        for (name, t) in &gen.tables {
            backend.create_table(name, t.clone()).unwrap();
        }
        backend
            .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
            .unwrap();
        let set = Dataset::new(backend, gen.graph.clone(), "sales", "net_profit").unwrap();
        let params = TrainParams {
            num_iterations: 3,
            learning_rate: 0.5,
            leaf_quantization: (2.0f64).powi(-10),
            max_bins: 12,
            ..Default::default()
        };
        train_gbm(&set, &params).unwrap()
    };
    let engine = EngineBackend::in_memory();
    let reference = train(&engine);
    assert!(reference.trees.iter().any(|t| t.num_leaves() > 1));
    for shards in [2usize, 4] {
        let sharded = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "sales", "items_id");
        sharded.set_pushdown_config(PushdownConfig {
            boundaries_per_shard: 4,
            min_rows: 0,
            delta: true,
        });
        let model = train(&sharded);
        assert_bit_identical(&reference, &model, &format!("binned sharded x{shards}"));
    }
}

#[test]
fn sharded_backend_trains_random_forests_via_per_shard_samples() {
    // Forest row-sampling gathers only the sampled fact rows from the
    // shards that own them (`gather_rows`) instead of snapshotting whole
    // partitions — the ship-messages-not-scans path.
    let sharded = ShardedBackend::new(3, EngineConfig::duckdb_mem(), "sales", "stores_id");
    let gen = favorita(&FavoritaConfig {
        fact_rows: 600,
        dim_rows: 10,
        ..Default::default()
    });
    for (name, t) in &gen.tables {
        sharded.create_table(name, t.clone()).unwrap();
    }
    let set = Dataset::new(&sharded, gen.graph.clone(), "sales", "net_profit").unwrap();
    let before = sharded.stats().rows_shipped;
    let params = TrainParams {
        num_iterations: 3,
        bagging_fraction: 0.5,
        ..Default::default()
    };
    let model = joinboost::train_random_forest(&set, &params).unwrap();
    assert_eq!(model.trees.len(), 3);
    // 3 trees × 50 % of 600 fact rows = 900 sampled rows; the old
    // snapshot-gather path shipped the full 600 per tree *plus* the
    // sample materialization. Split-statistics shuffles still happen, so
    // just assert the sampling itself stayed proportional.
    let shipped = sharded.stats().rows_shipped - before;
    assert!(
        shipped < 3 * 600 + 2000,
        "sampling should not gather whole partitions ({shipped} rows shipped)"
    );
}
