//! Crash safety of the paged engine, attacked at three granularities:
//!
//! * **statement-level crashes** — a scripted statement sequence is cut
//!   at every point, the process "dies" ([`Database::simulate_crash`]
//!   discards unsynced WAL bytes exactly as a power loss would), and the
//!   reopened database must hold *bit-for-bit* the tables an uncrashed
//!   in-memory engine holds after the same prefix;
//! * **torn WAL tails** — the log file is truncated at arbitrary byte
//!   offsets (mid-record, mid-commit) and reopen must still succeed,
//!   recovering exactly the longest committed prefix;
//! * **end to end** — a GBM trained on a crashed-and-recovered paged
//!   database matches the uncrashed in-memory reference bit for bit.
//!
//! This is also the regression test for the paged configuration's
//! durability default: commits fsync (`Wal::sync` on), so work finished
//! before a crash is never lost — which `statement_level_crashes` would
//! catch immediately if the default regressed.

use joinboost::backend::{EngineBackend, SqlBackend};
use joinboost::{train_gbm, Dataset, GbmModel, TrainParams};
use joinboost_datagen::{favorita, FavoritaConfig};
use joinboost_engine::{Database, EngineConfig};

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("jb_walrec_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic mixed write script over small tables.
fn script() -> Vec<String> {
    let mut s = vec![
        "CREATE TABLE t AS SELECT * FROM seed".to_string(),
        "UPDATE t SET v = v * 2.0".to_string(),
        "CREATE TABLE u AS SELECT k, v * 0.5 AS w FROM t".to_string(),
        "UPDATE u SET w = w + 1.0 WHERE k < 40".to_string(),
        "DROP TABLE t".to_string(),
        "CREATE TABLE t AS SELECT k, w FROM u WHERE k < 70".to_string(),
        "UPDATE t SET w = FLOOR(w * 8.0) / 8.0".to_string(),
    ];
    for i in 0..4 {
        s.push(format!("UPDATE u SET w = w + {i}.0 WHERE k > {}", i * 17));
    }
    s
}

fn seed_table() -> joinboost_engine::Table {
    joinboost_engine::Table::from_columns(vec![
        ("k", joinboost_engine::Column::int((0..100).collect())),
        (
            "v",
            joinboost_engine::Column::float((0..100).map(|i| i as f64 * 0.125).collect()),
        ),
    ])
}

/// Cheap deterministic PRNG for crash points (no `rand` in this list of
/// dev-deps; splitmix64 is plenty).
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

fn assert_same_tables(recovered: &Database, reference: &Database, who: &str) {
    let mut names = recovered.table_names();
    names.sort();
    let mut expect = reference.table_names();
    expect.sort();
    assert_eq!(names, expect, "{who}: catalog diverged");
    for name in &names {
        let a = recovered.snapshot(name).unwrap();
        let b = reference.snapshot(name).unwrap();
        assert_eq!(a.num_rows(), b.num_rows(), "{who}: {name} rows");
        assert_eq!(a.meta, b.meta, "{who}: {name} schema");
        for (ca, cb) in a.columns.iter().zip(&b.columns) {
            assert_eq!(ca, cb, "{who}: {name} column diverged");
        }
    }
}

/// Crash after every statement prefix: the recovered database must be
/// bit-identical to an in-memory engine that executed the same prefix.
#[test]
fn statement_level_crashes_lose_nothing_committed() {
    let script = script();
    for crash_at in 0..=script.len() {
        let dir = fresh_dir(&format!("stmt{crash_at}"));
        {
            let db = Database::new(EngineConfig::paged(&dir));
            db.create_table("seed", seed_table()).unwrap();
            for stmt in &script[..crash_at] {
                db.execute(stmt).unwrap();
            }
            // Die without any flush/close path.
            db.simulate_crash().unwrap();
        }
        let reference = Database::in_memory();
        reference.create_table("seed", seed_table()).unwrap();
        for stmt in &script[..crash_at] {
            reference.execute(stmt).unwrap();
        }
        let recovered = Database::new(EngineConfig::paged(&dir));
        assert_same_tables(&recovered, &reference, &format!("crash after {crash_at}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncate the WAL at randomized byte offsets — including mid-record
/// and mid-commit — and reopen. Every cut must (a) open cleanly and
/// (b) recover a state an uncrashed engine reaches after some statement
/// prefix (never a torn half-statement).
#[test]
fn torn_wal_tails_recover_a_committed_prefix() {
    let script = script();
    let dir = fresh_dir("torn_src");
    {
        let db = Database::new(EngineConfig::paged(&dir));
        db.create_table("seed", seed_table()).unwrap();
        for stmt in &script {
            db.execute(stmt).unwrap();
        }
    }
    let wal_bytes = std::fs::read(dir.join("wal.log")).unwrap();
    assert!(wal_bytes.len() > 100, "script must produce a real log");

    // Every reachable state: empty (cut before the seed load committed),
    // then the seed plus each statement prefix.
    let mut states: Vec<Database> = vec![Database::in_memory()];
    states.extend((0..=script.len()).map(|k| {
        let r = Database::in_memory();
        r.create_table("seed", seed_table()).unwrap();
        for stmt in &script[..k] {
            r.execute(stmt).unwrap();
        }
        r
    }));

    let mut rng = Rng(0x5EED);
    let mut cuts: Vec<usize> = (0..24)
        .map(|_| (rng.next() as usize) % wal_bytes.len())
        .collect();
    cuts.push(0);
    cuts.push(wal_bytes.len());
    cuts.push(wal_bytes.len() - 1); // tear the final commit record
    for (i, &cut) in cuts.iter().enumerate() {
        let d = fresh_dir(&format!("torn{i}"));
        std::fs::create_dir_all(&d).unwrap();
        std::fs::write(d.join("wal.log"), &wal_bytes[..cut]).unwrap();
        let recovered = Database::new(EngineConfig::paged(&d));
        let matched = states.iter().enumerate().find(|(_, r)| {
            let mut a = recovered.table_names();
            a.sort();
            let mut b = r.table_names();
            b.sort();
            if a != b {
                return false;
            }
            a.iter().all(|n| {
                let (x, y) = (recovered.snapshot(n).unwrap(), r.snapshot(n).unwrap());
                x == y
            })
        });
        let (k, matched_ref) = matched
            .unwrap_or_else(|| panic!("cut at byte {cut}: state matches no statement prefix"));
        assert_same_tables(&recovered, matched_ref, &format!("cut {cut} (prefix {k})"));
        // A full-length log must recover everything.
        if cut == wal_bytes.len() {
            assert_eq!(k, states.len() - 1, "full log must replay fully");
        }
        let _ = std::fs::remove_dir_all(&d);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// After the log is torn and recovered, the WAL must *resume* cleanly:
/// new statements land after the surviving prefix and survive their own
/// crash in turn.
#[test]
fn writes_after_recovery_survive_the_next_crash() {
    let dir = fresh_dir("resume");
    {
        let db = Database::new(EngineConfig::paged(&dir));
        db.create_table("seed", seed_table()).unwrap();
        db.execute("CREATE TABLE t AS SELECT * FROM seed").unwrap();
        db.simulate_crash().unwrap();
    }
    // Tear the log mid-tail, recover, write more, crash again.
    let wal_path = dir.join("wal.log");
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
    {
        let db = Database::new(EngineConfig::paged(&dir));
        assert!(db.has_table("seed"), "committed seed must survive the tear");
        db.execute("CREATE TABLE again AS SELECT k FROM seed WHERE k < 5")
            .unwrap();
        db.simulate_crash().unwrap();
    }
    let db = Database::new(EngineConfig::paged(&dir));
    assert!(db.has_table("seed"));
    assert!(db.has_table("again"), "post-recovery write was committed");
    assert_eq!(db.row_count("again").unwrap(), 5);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End to end: load + quantize on a paged engine, crash, reopen the same
/// directory, then train — the model must match an uncrashed in-memory
/// reference bit for bit.
#[test]
fn post_recovery_training_matches_the_uncrashed_reference() {
    let gen = favorita(&FavoritaConfig {
        fact_rows: 3000,
        dim_rows: 30,
        noise: 1.0,
        ..Default::default()
    });
    let params = TrainParams {
        num_iterations: 4,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    let train = |backend: &EngineBackend| -> GbmModel {
        let set = Dataset::new(backend, gen.graph.clone(), "sales", "net_profit").unwrap();
        train_gbm(&set, &params).unwrap()
    };
    let load = |backend: &EngineBackend| {
        for (name, t) in &gen.tables {
            backend.create_table(name, t.clone()).unwrap();
        }
        backend
            .execute("UPDATE sales SET net_profit = FLOOR(net_profit * 8.0) / 8.0")
            .unwrap();
    };

    let reference = {
        let mem = EngineBackend::in_memory();
        load(&mem);
        train(&mem)
    };

    let dir = fresh_dir("e2e");
    {
        let victim = EngineBackend::new(EngineConfig::paged(&dir));
        load(&victim);
        victim.database().simulate_crash().unwrap();
    }
    let recovered = EngineBackend::new(EngineConfig::paged(&dir));
    assert_eq!(
        recovered.database().row_count("sales").unwrap(),
        3000,
        "fact survived the crash"
    );
    let model = train(&recovered);
    assert_eq!(
        reference.init_score.to_bits(),
        model.init_score.to_bits(),
        "init score diverged after recovery"
    );
    assert_eq!(reference.trees.len(), model.trees.len());
    for (i, (a, b)) in reference.trees.iter().zip(&model.trees).enumerate() {
        assert_eq!(a.nodes.len(), b.nodes.len(), "tree {i} shape");
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.split, nb.split, "tree {i} split");
            assert_eq!(na.value.to_bits(), nb.value.to_bits(), "tree {i} value");
            assert_eq!(na.weight.to_bits(), nb.weight.to_bits(), "tree {i} weight");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
