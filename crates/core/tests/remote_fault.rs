//! Fault injection against the remote wire backend: a shard server that
//! dies or hangs mid-round must surface as a *fast*, contextful
//! [`TrainError::Engine`] — never a hang — and must not leave temp tables
//! behind on the surviving shards.
//!
//! The failure modes come from [`ServeOptions`]:
//!
//! * `fail_after` + `stall: false` — a *killed* process: connections drop,
//!   clients see EOF immediately;
//! * `fail_after` + `stall: true` — a *hung* process: sockets stay open
//!   but no reply ever comes, so the client's read timeout is what fires.
//!
//! Both runs calibrate `fail_after` from a healthy run's request count, so
//! the fault always lands mid-training, between statements of a round.
//!
//! These tests pin [`RetryPolicy::none()`]: they are about the *fail-fast*
//! contract (first transport error poisons, cleanup costs nothing), which
//! the default retrying policy deliberately softens. Recovery from
//! transient faults is covered by `remote_chaos.rs`.

use std::time::{Duration, Instant};

use joinboost::backend::{
    PushdownConfig, RemoteBackend, RemoteOptions, RetryPolicy, ShardedBackend, SqlBackend,
    WireServer,
};
use joinboost::{train_gbm, Dataset, TrainError, TrainParams};
use joinboost_engine::{Column, Database, EngineConfig, Table};
use joinboost_graph::JoinGraph;

fn star_tables(rows: usize) -> (Table, Table, JoinGraph) {
    let dim_rows = 8i64;
    let fact = Table::from_columns(vec![
        ("k", Column::int((0..rows as i64).collect())),
        (
            "d_id",
            Column::int((0..rows as i64).map(|i| i % dim_rows).collect()),
        ),
        (
            "f",
            Column::int((0..rows as i64).map(|i| (i * 13) % 40).collect()),
        ),
        (
            "y",
            Column::float(
                (0..rows as i64)
                    .map(|i| (((i * 13) % 40) as f64) / 8.0 + ((i % dim_rows) as f64) / 2.0)
                    .collect(),
            ),
        ),
    ]);
    let dim = Table::from_columns(vec![
        ("d_id", Column::int((0..dim_rows).collect())),
        (
            "g",
            Column::int((0..dim_rows).map(|d| (d * 3) % 5).collect()),
        ),
    ]);
    let mut graph = JoinGraph::new();
    graph.add_relation("fact", &["f"]).unwrap();
    graph.add_relation("dim", &["g"]).unwrap();
    graph.add_edge("fact", "dim", &["d_id"]).unwrap();
    (fact, dim, graph)
}

/// Load + train on a 2-shard remote backend; returns the training result
/// (the `Dataset` is dropped before returning, so temp-table cleanup has
/// already run against whatever shards still answer).
fn train_remote(
    addrs: &[std::net::SocketAddr],
    opts: RemoteOptions,
) -> Result<joinboost::GbmModel, TrainError> {
    let backend = ShardedBackend::remote(addrs, EngineConfig::duckdb_mem(), "fact", "k", opts)
        .map_err(|e| TrainError::Engine(e.to_string()))?;
    backend.set_pushdown_config(PushdownConfig {
        boundaries_per_shard: 4,
        min_rows: 0,
        delta: true,
    });
    let (fact, dim, graph) = star_tables(400);
    backend
        .create_table("fact", fact)
        .map_err(|e| TrainError::Engine(e.to_string()))?;
    backend
        .create_table("dim", dim)
        .map_err(|e| TrainError::Engine(e.to_string()))?;
    let set = Dataset::new(&backend, graph, "fact", "y")?;
    let params = TrainParams {
        num_iterations: 2,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    train_gbm(&set, &params)
}

/// Healthy 2-shard run: returns the request count the *second* shard
/// served, used to aim the fault injection at mid-training.
fn healthy_request_count() -> u64 {
    let a = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let b = WireServer::builder(Database::in_memory()).spawn().unwrap();
    train_remote(&[a.addr(), b.addr()], RemoteOptions::default()).expect("healthy run");
    b.requests()
}

fn assert_fails_fast_and_survivor_clean(stall: bool) {
    let total = healthy_request_count();
    assert!(
        total > 10,
        "training must exercise the wire enough to inject mid-round ({total} requests)"
    );

    let survivor = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let victim = WireServer::builder(Database::in_memory())
        .fail_after(total * 2 / 3)
        .stall(stall)
        .spawn()
        .unwrap();
    let opts = RemoteOptions {
        connect_timeout: Duration::from_secs(2),
        io_timeout: Duration::from_secs(2),
        retry: RetryPolicy::none(),
    };
    let started = Instant::now();
    let err = train_remote(&[survivor.addr(), victim.addr()], opts)
        .expect_err("training must fail when a shard dies mid-round");
    let elapsed = started.elapsed();

    // Fast: bounded by the io timeout (plus slack), not by a hang. The
    // stall mode *must* consume the read timeout; the kill mode sees EOF
    // immediately.
    assert!(
        elapsed < Duration::from_secs(20),
        "failure took {elapsed:?} — the wire backend hung instead of failing fast"
    );
    // Contextful: a TrainError::Engine naming the shard server.
    match &err {
        TrainError::Engine(msg) => {
            assert!(
                msg.contains("shard server at"),
                "error must name the failing shard: {msg}"
            );
        }
        other => panic!("expected TrainError::Engine, got {other:?}"),
    }

    // No partial-commit: the survivor holds base data, dims and messages,
    // but every `jb_`-temp registered by the dataset was dropped when the
    // failed run's dataset went out of scope.
    let names = survivor.database().table_names();
    assert!(
        !names.iter().any(|n| n.starts_with("jb_")),
        "temp tables left on surviving shard ({}): {names:?}",
        if stall { "stall" } else { "kill" },
    );
    assert!(names.iter().any(|n| n == "fact"), "base table must survive");
}

/// A killed shard server (connections dropped): EOF, immediate failure.
#[test]
fn killed_shard_server_fails_training_fast_and_cleanly() {
    assert_fails_fast_and_survivor_clean(false);
}

/// A hung shard server (sockets open, no replies): the client read
/// timeout converts the hang into an error.
#[test]
fn stalled_shard_server_hits_read_timeout_not_a_hang() {
    assert_fails_fast_and_survivor_clean(true);
}

/// Once poisoned, a connection fails instantly — cleanup paths touching a
/// dead shard must not re-pay the timeout per statement.
#[test]
fn poisoned_connection_fails_immediately_after_first_error() {
    let mut server = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let backend = RemoteBackend::builder(server.addr())
        .connect_timeout(Duration::from_secs(2))
        .io_timeout(Duration::from_secs(2))
        .retry(RetryPolicy::none())
        .connect()
        .unwrap();
    backend
        .create_table(
            "t",
            Table::from_columns(vec![("x", Column::int(vec![1, 2, 3]))]),
        )
        .unwrap();
    server.kill();
    let first = backend.query("SELECT SUM(x) AS s FROM t");
    assert!(first.is_err(), "dead server must error");
    let started = Instant::now();
    for _ in 0..50 {
        let err = backend.query("SELECT SUM(x) AS s FROM t").unwrap_err();
        assert!(
            err.to_string().contains("previously failed"),
            "poison context missing: {err}"
        );
    }
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "poisoned calls must not touch the socket"
    );
}

/// With a *retrying* policy against a server that died for good, the
/// reconnect budget is spent and the final error still names the shard
/// address — retries must not launder away the failure context.
#[test]
fn exhausted_retries_still_name_the_shard_address() {
    let mut server = WireServer::builder(Database::in_memory()).spawn().unwrap();
    let addr = server.addr();
    let backend = RemoteBackend::builder(addr)
        .connect_timeout(Duration::from_secs(2))
        .io_timeout(Duration::from_secs(2))
        .retry(RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            jitter: 0.0,
        })
        .connect()
        .unwrap();
    backend
        .create_table(
            "t",
            Table::from_columns(vec![("x", Column::int(vec![1, 2, 3]))]),
        )
        .unwrap();
    server.kill();
    let started = Instant::now();
    let err = backend.query("SELECT SUM(x) AS s FROM t").unwrap_err();
    let elapsed = started.elapsed();
    let msg = err.to_string();
    assert!(
        msg.contains("shard server at") && msg.contains(&addr.to_string()),
        "exhausted-retry error must name the shard: {msg}"
    );
    assert!(
        msg.contains("reconnect attempts"),
        "error must say the retry budget was spent: {msg}"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "2 retries with 10ms base backoff must not take {elapsed:?}"
    );
}

/// Connecting to a dead address fails fast with the address in the error.
#[test]
fn connect_to_dead_server_fails_fast_with_context() {
    // Bind an ephemeral port, then free it: nothing listens there.
    let addr = {
        let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
        l.local_addr().unwrap()
    };
    let started = Instant::now();
    let err = RemoteBackend::builder(addr)
        .connect_timeout(Duration::from_secs(2))
        .io_timeout(Duration::from_secs(2))
        .connect()
        .map(|_| ())
        .unwrap_err();
    assert!(started.elapsed() < Duration::from_secs(5));
    let msg = err.to_string();
    assert!(
        msg.contains(&addr.to_string()) && msg.contains("connect"),
        "connect error must carry the address: {msg}"
    );
}
