//! Chaos tests for the fault-tolerant wire: *recovering* faults (dropped
//! connections, not dead servers) injected mid-training must be invisible
//! in the trained model. The contract under test is protocol v3's
//! session-resume + idempotent-replay machinery:
//!
//! * the client reconnects under its [`RetryPolicy`], presents its resume
//!   token, and re-issues every in-flight request;
//! * the server replays cached responses from its replay window for
//!   requests it already applied, so non-idempotent statements run
//!   exactly once even when several were in flight at the drop;
//! * session state (temp tables, split handles) survives the drop for the
//!   grace period, so training resumes instead of restarting.
//!
//! The headline proof: 4-shard training over real `shard_server`
//! *processes* with a connection dropped every few requests produces a
//! model `to_bits()`-identical to the healthy run.

use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;

use joinboost::backend::{
    PushdownConfig, RemoteBackend, RemoteOptions, RetryPolicy, ShardedBackend, SqlBackend,
    WireServer,
};
use joinboost::{train_gbm, Dataset, GbmModel, TrainParams};
use joinboost_engine::{Column, Database, EngineConfig, Table};
use joinboost_graph::JoinGraph;

// ---------------------------------------------------------------------------
// Workload (same star schema as remote_fault.rs, dyadic so every backend
// and shard count reproduces the exact same bits)
// ---------------------------------------------------------------------------

fn star_tables(rows: usize) -> (Table, Table, JoinGraph) {
    let dim_rows = 8i64;
    let fact = Table::from_columns(vec![
        ("k", Column::int((0..rows as i64).collect())),
        (
            "d_id",
            Column::int((0..rows as i64).map(|i| i % dim_rows).collect()),
        ),
        (
            "f",
            Column::int((0..rows as i64).map(|i| (i * 13) % 40).collect()),
        ),
        (
            "y",
            Column::float(
                (0..rows as i64)
                    .map(|i| (((i * 13) % 40) as f64) / 8.0 + ((i % dim_rows) as f64) / 2.0)
                    .collect(),
            ),
        ),
    ]);
    let dim = Table::from_columns(vec![
        ("d_id", Column::int((0..dim_rows).collect())),
        (
            "g",
            Column::int((0..dim_rows).map(|d| (d * 3) % 5).collect()),
        ),
    ]);
    let mut graph = JoinGraph::new();
    graph.add_relation("fact", &["f"]).unwrap();
    graph.add_relation("dim", &["g"]).unwrap();
    graph.add_edge("fact", "dim", &["d_id"]).unwrap();
    (fact, dim, graph)
}

/// Fast retry policy for tests: same shape as the default, millisecond
/// backoffs so injected drops cost wall-clock noise, not seconds.
fn test_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        jitter: 0.2,
    }
}

fn retrying_opts() -> RemoteOptions {
    RemoteOptions {
        connect_timeout: Duration::from_secs(5),
        io_timeout: Duration::from_secs(10),
        retry: test_retry(),
    }
}

/// Load + train over the given shard addresses.
fn train_remote(addrs: &[std::net::SocketAddr], opts: RemoteOptions) -> GbmModel {
    let backend =
        ShardedBackend::remote(addrs, EngineConfig::duckdb_mem(), "fact", "k", opts).unwrap();
    backend.set_pushdown_config(PushdownConfig {
        boundaries_per_shard: 4,
        min_rows: 0,
        delta: true,
    });
    let (fact, dim, graph) = star_tables(400);
    backend.create_table("fact", fact).unwrap();
    backend.create_table("dim", dim).unwrap();
    let set = Dataset::new(&backend, graph, "fact", "y").unwrap();
    let params = TrainParams {
        num_iterations: 2,
        learning_rate: 0.5,
        leaf_quantization: (2.0f64).powi(-10),
        ..Default::default()
    };
    train_gbm(&set, &params).unwrap()
}

fn assert_bit_identical(reference: &GbmModel, model: &GbmModel, who: &str) {
    assert_eq!(
        reference.init_score.to_bits(),
        model.init_score.to_bits(),
        "{who}: init score diverged"
    );
    assert_eq!(
        reference.trees.len(),
        model.trees.len(),
        "{who}: tree count diverged"
    );
    for (i, (a, b)) in reference.trees.iter().zip(&model.trees).enumerate() {
        assert_eq!(a.nodes.len(), b.nodes.len(), "{who}: tree {i} shape");
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(na.split, nb.split, "{who}: tree {i} split");
            assert_eq!(
                na.value.to_bits(),
                nb.value.to_bits(),
                "{who}: tree {i} leaf value diverged"
            );
            assert_eq!(
                na.weight.to_bits(),
                nb.weight.to_bits(),
                "{who}: tree {i} weight diverged"
            );
        }
    }
}

/// Healthy 4-shard reference model, computed once per test binary on
/// in-process servers (the workload is deterministic, so in-process and
/// child-process servers produce the same bits).
fn reference_model() -> &'static GbmModel {
    static REF: OnceLock<GbmModel> = OnceLock::new();
    REF.get_or_init(|| {
        let servers: Vec<WireServer> = (0..4)
            .map(|_| WireServer::builder(Database::in_memory()).spawn().unwrap())
            .collect();
        let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
        train_remote(&addrs, RemoteOptions::default())
    })
}

// ---------------------------------------------------------------------------
// Child-process rig
// ---------------------------------------------------------------------------

/// A real `shard_server` child process: spawned on an ephemeral port with
/// the given extra flags, killed on drop.
struct ShardServerProc {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl ShardServerProc {
    fn spawn(extra_args: &[&str]) -> ShardServerProc {
        use std::io::BufRead as _;
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_shard_server"))
            .args(extra_args)
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn shard_server");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("server must announce its address")
            .parse()
            .expect("valid socket address");
        ShardServerProc { child, addr }
    }
}

impl Drop for ShardServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------------
// Headline: multi-process chaos run
// ---------------------------------------------------------------------------

/// 4 `shard_server` *processes*, every 7th request on each shard dropping
/// its connection before execution: the retrying client reconnects with
/// its resume token, replays, and training completes bit-identical to the
/// healthy run. This is the end-to-end proof that transient shard
/// failures no longer abort training.
#[test]
fn chaos_drops_across_four_processes_train_bit_identical() {
    let reference = reference_model();
    let servers: Vec<ShardServerProc> = (0..4)
        .map(|_| ShardServerProc::spawn(&["--drop-every", "7", "--grace-ms", "30000"]))
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr).collect();
    let model = train_remote(&addrs, retrying_opts());
    assert_bit_identical(reference, &model, "chaos x4 (drop-every 7)");
}

// ---------------------------------------------------------------------------
// Exactly-once: replay of an applied-but-unacknowledged request
// ---------------------------------------------------------------------------

/// The nastiest fault: the server *applies* a non-idempotent request,
/// then the connection dies before the reply is written. On reconnect the
/// client re-issues the same sequence number; the server must return the
/// *cached* response instead of re-executing (a second `CREATE TABLE`
/// would fail). `flaky_after(2)` aims the drop precisely: request 1 is
/// the Hello, request 2 is the create.
#[test]
fn applied_but_unacknowledged_create_replays_from_cache() {
    let server = WireServer::builder(Database::in_memory())
        .flaky_after(2)
        .spawn()
        .unwrap();
    let backend = RemoteBackend::builder(server.addr())
        .connect_timeout(Duration::from_secs(2))
        .io_timeout(Duration::from_secs(2))
        .retry(test_retry())
        .connect()
        .unwrap();
    backend
        .create_table(
            "t",
            Table::from_columns(vec![("x", Column::int(vec![1, 2, 3]))]),
        )
        .expect("create must succeed via cached replay, not re-execution");
    // The retry path actually ran: the reply was dropped once.
    assert!(
        backend.connection().retry_count() >= 1,
        "fault must have fired ({} retries)",
        backend.connection().retry_count()
    );
    // And the table was applied exactly once, with the right contents.
    let t = backend.query("SELECT SUM(x) AS s FROM t").unwrap();
    assert_eq!(t.scalar_f64("s").unwrap(), 6.0);
    assert!(
        backend
            .create_table("t", Table::from_columns(vec![("x", Column::int(vec![9]))]))
            .is_err(),
        "a genuinely new CREATE of the same table must still conflict"
    );
}

// ---------------------------------------------------------------------------
// Mid-pipeline faults: drops landing on multiplexed in-flight requests
// ---------------------------------------------------------------------------

/// Several threads share ONE multiplexed connection, so drops land while
/// multiple non-idempotent requests are in flight — the case the replay
/// *window* (not a single slot) exists for. Every `CREATE TABLE` must
/// succeed exactly once: re-execution instead of replay would conflict
/// and fail the create; a lost request would fail the later row-count
/// check. Reply jitter scrambles which in-flight requests the drop
/// catches, and the connection must survive unpoisoned.
#[test]
fn mid_pipeline_drops_replay_in_flight_requests_exactly_once() {
    let server = WireServer::builder(Database::in_memory())
        .drop_every(11)
        .reply_jitter(0xC0FFEE, 300)
        .spawn()
        .unwrap();
    let backend = RemoteBackend::builder(server.addr())
        .connect_timeout(Duration::from_secs(5))
        .io_timeout(Duration::from_secs(10))
        .retry(test_retry())
        .connect()
        .unwrap();

    let threads = 4usize;
    let per_thread = 8usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let backend = &backend;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let rows = (t * per_thread + i + 1) as i64;
                    backend
                        .create_table(
                            &format!("c{t}_{i}"),
                            Table::from_columns(vec![("x", Column::int((0..rows).collect()))]),
                        )
                        .unwrap_or_else(|e| panic!("create c{t}_{i} must replay, not fail: {e}"));
                }
            });
        }
    });

    // The fault actually fired, repeatedly.
    assert!(
        backend.connection().retry_count() >= 1,
        "drop-every must have hit the pipeline ({} retries)",
        backend.connection().retry_count()
    );
    // Exactly-once side effects: every table exists with its exact rows,
    // and a second create of any of them still conflicts.
    for t in 0..threads {
        for i in 0..per_thread {
            let name = format!("c{t}_{i}");
            let rows = (t * per_thread + i + 1) as u64;
            assert_eq!(
                backend.row_count(&name).unwrap(),
                rows as usize,
                "{name} must hold its exact rows"
            );
        }
    }
    assert!(
        backend
            .create_table(
                "c0_0",
                Table::from_columns(vec![("x", Column::int(vec![]))])
            )
            .is_err(),
        "a genuinely new CREATE of an existing table must conflict"
    );
    // No poisoned survivors: the shared connection keeps serving.
    let t = backend.query("SELECT SUM(x) AS s FROM c0_0").unwrap();
    assert_eq!(t.scalar_f64("s").unwrap(), 0.0);
}

/// The headline chaos run with the completion order scrambled too:
/// connection drops *and* reply jitter on every shard process, so drops
/// catch pipelined requests at random depths. Training must still
/// reproduce the healthy run's bits.
#[test]
fn chaos_drops_with_scrambled_replies_train_bit_identical() {
    let reference = reference_model();
    let servers: Vec<ShardServerProc> = (0..4)
        .map(|i| {
            ShardServerProc::spawn(&[
                "--drop-every",
                "7",
                "--grace-ms",
                "30000",
                "--reply-jitter",
                &format!("{}:400", 17 + i * 1031),
            ])
        })
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr).collect();
    let model = train_remote(&addrs, retrying_opts());
    assert_bit_identical(reference, &model, "chaos x4 (drop-every 7 + jitter)");
}

// ---------------------------------------------------------------------------
// Randomized fault points
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Wherever a one-shot drop-before-reply lands in the request stream
    /// — handshake-adjacent, mid-load, mid-round — recovered training is
    /// bit-identical to the fault-free run. Each shard gets a *different*
    /// fault point so the two failures interleave.
    #[test]
    fn training_recovers_bit_identical_from_any_fault_point(k in 2u64..60) {
        let reference = reference_model();
        let servers: Vec<WireServer> = (0..4)
            .map(|i| {
                WireServer::builder(Database::in_memory())
                    .flaky_after(k + i as u64 * 3)
                    .spawn()
                    .unwrap()
            })
            .collect();
        let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
        let model = train_remote(&addrs, retrying_opts());
        assert_bit_identical(reference, &model, &format!("flaky-after {k}"));
    }
}
