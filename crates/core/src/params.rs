//! Training parameters, mirroring LightGBM's parameter names where they
//! exist (the paper's API-compatibility goal, Section 5.1).

use joinboost_semiring::Objective;
use serde::{Deserialize, Serialize};

/// Tree growth strategy (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Growth {
    /// Split the leaf with the largest criteria reduction next
    /// (LightGBM's default; the paper's default).
    BestFirst,
    /// Split the shallowest leaf next.
    DepthWise,
}

/// How gradient-boosting residual updates are executed (Sections 5.3–5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateMethod {
    /// Materialize the update relation `U` and re-create `F ⋈ U` (the
    /// straw man of Section 5.3; >50× slower than LightGBM's update).
    Naive,
    /// `UPDATE F SET s = ... WHERE <semi-join predicates>` per leaf.
    UpdateInPlace,
    /// `CREATE TABLE F' AS SELECT CASE WHEN .. END AS s, <other cols>`
    /// copying the whole fact table.
    CreateTable,
    /// Compute only the new annotation column and `SWAP COLUMN` it into
    /// the fact table (the `D-Swap` backend; needs engine support).
    ColumnSwap,
    /// Fact table lives in external dataframe storage; compute the new
    /// column and replace the array pointer (the `DP` backend).
    Interop,
}

/// Training parameters. Defaults follow the paper's experimental setup:
/// best-first growth, 8 leaves, learning rate 0.1 (Section 6.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainParams {
    /// Loss function being optimized (Table 3).
    pub objective: Objective,
    /// Number of boosting iterations / forest trees.
    pub num_iterations: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum leaves per tree.
    pub num_leaves: usize,
    /// Maximum depth (0 = unlimited).
    pub max_depth: usize,
    /// Tree growth strategy (best-first vs depth-wise).
    pub growth: Growth,
    /// L2 regularization λ on leaf weights (gradient objectives).
    pub reg_lambda: f64,
    /// Minimum criteria reduction to accept a split (the `α` per-leaf
    /// penalty of Appendix B).
    pub min_gain: f64,
    /// Minimum number of (weighted) rows on each side of a split.
    pub min_data_in_leaf: f64,
    /// Fraction of features sampled per tree (random forest).
    pub feature_fraction: f64,
    /// Fraction of rows sampled per tree without replacement (random
    /// forest; paper uses 0.1).
    pub bagging_fraction: f64,
    /// Seed for every random choice (sampling, feature shuffles).
    pub seed: u64,
    /// Histogram bins per numeric feature (0 = exact, no binning).
    pub max_bins: usize,
    /// Build the full-dimensional cuboid and train on it (Appendix D.3);
    /// only sensible with small `max_bins`.
    pub use_cuboid: bool,
    /// Worker threads for inter-query parallelism (1 = sequential).
    pub threads: usize,
    /// Residual update strategy for gradient boosting.
    pub update_method: UpdateMethod,
    /// Round the initial score and every leaf value to multiples of this
    /// grid (0 = off). With a power-of-two grid (e.g. `2⁻¹⁰`) and a dyadic
    /// learning rate, every residual the trainer ever sums stays a dyadic
    /// rational of bounded magnitude, making floating-point `⊕` exactly
    /// associative — so partitioned backends ([`crate::ShardedBackend`])
    /// train **bit-identical** models regardless of how rows are sharded.
    /// This is the standard determinism trick of distributed GBDT systems;
    /// see `DESIGN.md` § Backends for the full argument.
    pub leaf_quantization: f64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            objective: Objective::SquaredError,
            num_iterations: 10,
            learning_rate: 0.1,
            num_leaves: 8,
            max_depth: 0,
            growth: Growth::BestFirst,
            reg_lambda: 0.0,
            min_gain: 1e-12,
            min_data_in_leaf: 1.0,
            feature_fraction: 1.0,
            bagging_fraction: 1.0,
            seed: 42,
            max_bins: 0,
            use_cuboid: false,
            threads: 1,
            update_method: UpdateMethod::CreateTable,
            leaf_quantization: 0.0,
        }
    }
}

impl TrainParams {
    /// The paper's gradient-boosting setup: 8 leaves, lr 0.1, 100 trees.
    pub fn paper_gbm() -> Self {
        TrainParams {
            num_iterations: 100,
            ..Default::default()
        }
    }

    /// The paper's random-forest setup: 10 % row sample, 80 % features.
    pub fn paper_rf() -> Self {
        TrainParams {
            num_iterations: 100,
            bagging_fraction: 0.1,
            feature_fraction: 0.8,
            ..Default::default()
        }
    }

    /// Reject parameter combinations the trainers cannot honor.
    pub fn validate(&self) -> crate::Result<()> {
        use crate::TrainError;
        if self.num_leaves < 2 {
            return Err(TrainError::Invalid("num_leaves must be >= 2".into()));
        }
        if !(0.0..=1.0).contains(&self.feature_fraction) || self.feature_fraction == 0.0 {
            return Err(TrainError::Invalid(
                "feature_fraction must be in (0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.bagging_fraction) || self.bagging_fraction == 0.0 {
            return Err(TrainError::Invalid(
                "bagging_fraction must be in (0, 1]".into(),
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(TrainError::Invalid("learning_rate must be positive".into()));
        }
        if self.use_cuboid && (self.max_bins == 0 || self.max_bins > 64) {
            return Err(TrainError::Invalid(
                "use_cuboid requires max_bins in 1..=64 (the cuboid grows exponentially)".into(),
            ));
        }
        if self.leaf_quantization < 0.0 || !self.leaf_quantization.is_finite() {
            return Err(TrainError::Invalid(
                "leaf_quantization must be a finite value >= 0".into(),
            ));
        }
        Ok(())
    }

    /// Round a leaf value (or initial score) to the
    /// [`leaf_quantization`](Self::leaf_quantization) grid; identity when
    /// the grid is 0. With a power-of-two grid the division, rounding and
    /// multiplication are all exact in `f64`.
    pub fn snap_leaf(&self, v: f64) -> f64 {
        if self.leaf_quantization > 0.0 {
            (v / self.leaf_quantization).round() * self.leaf_quantization
        } else {
            v
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = TrainParams::default();
        assert_eq!(p.num_leaves, 8);
        assert_eq!(p.learning_rate, 0.1);
        assert_eq!(p.growth, Growth::BestFirst);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = TrainParams::default();
        p.num_leaves = 1;
        assert!(p.validate().is_err());
        let mut p = TrainParams::default();
        p.bagging_fraction = 0.0;
        assert!(p.validate().is_err());
        let mut p = TrainParams::default();
        p.use_cuboid = true;
        assert!(p.validate().is_err(), "cuboid without bins");
        p.max_bins = 5;
        assert!(p.validate().is_ok());
    }
}
