//! Ancestral sampling over the join graph (Section 5.5.2).
//!
//! Random forests need uniform, independent samples of the *join result*
//! `R⋈` without materializing it. Naively sampling each relation is
//! neither uniform nor join-safe. Ancestral sampling treats `R⋈` as a
//! probability table (each tuple mass `1/|R⋈|`), samples the root
//! relation by its marginal probability — the number of join tuples each
//! root row extends to, computed by COUNT semi-ring message passing — and
//! walks the join graph sampling each next relation conditionally.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinboost_engine::{Column, Datum, Table};
use joinboost_graph::{JoinGraph, RelId};

use crate::backend::SqlBackend;
use crate::error::{Result, TrainError};

/// Per-relation data prepared for sampling.
struct RelData {
    table: Table,
    /// COUNT-semiring weight per row: the number of `R⋈` tuples this row
    /// extends to within its subtree.
    weights: Vec<f64>,
    /// Children in the sampling tree, with rows grouped by join key.
    children: Vec<ChildIndex>,
}

struct ChildIndex {
    rel: RelId,
    /// Key columns in the *parent* table.
    parent_keys: Vec<usize>,
    /// Join-key value → child row indices.
    index: HashMap<Vec<String>, Vec<u32>>,
}

fn key_of(table: &Table, cols: &[usize], row: usize) -> Vec<String> {
    cols.iter()
        .map(|&c| table.columns[c].get(row).to_string())
        .collect()
}

/// Draw `n` tuples of `R⋈` uniformly (with replacement) by ancestral
/// sampling from `root`. Returns a table whose columns are the union of
/// all relations' columns (join keys deduplicated, first occurrence wins).
pub fn ancestral_sample(
    db: &dyn SqlBackend,
    graph: &JoinGraph,
    root: RelId,
    n: usize,
    seed: u64,
) -> Result<Table> {
    graph.validate_tree()?;
    // Load snapshots and build the BFS tree from root.
    let nrel = graph.num_relations();
    let mut tables: Vec<Option<Table>> = (0..nrel).map(|_| None).collect();
    for (rel, info) in graph.relations() {
        tables[rel] = Some(db.snapshot(&info.name)?);
    }
    let order = graph.sampling_order(root);
    let mut parent_of: HashMap<RelId, RelId> = HashMap::new();
    {
        let mut seen = vec![root];
        for (rel, _) in order.iter().skip(1) {
            // Parent = the already-seen neighbor.
            let p = graph
                .neighbors(*rel)
                .into_iter()
                .map(|(v, _)| v)
                .find(|v| seen.contains(v))
                .expect("BFS order has a seen parent");
            parent_of.insert(*rel, p);
            seen.push(*rel);
        }
    }
    // Children lists.
    let mut children_of: Vec<Vec<RelId>> = vec![Vec::new(); nrel];
    for (&c, &p) in &parent_of {
        children_of[p].push(c);
    }
    // Bottom-up COUNT message passing: weight of a row = Π over children
    // of (Σ weights of matching child rows).
    let mut data: Vec<Option<RelData>> = (0..nrel).map(|_| None).collect();
    for (rel, _) in order.iter().rev() {
        let table = tables[*rel].take().expect("loaded");
        let nrows = table.num_rows();
        let mut weights = vec![1.0f64; nrows];
        let mut child_indexes = Vec::new();
        for &c in &children_of[*rel] {
            let cdata = data[c].as_ref().expect("children processed first");
            let keys = graph.join_keys(*rel, c).expect("edge");
            let parent_keys: Vec<usize> = keys
                .iter()
                .map(|k| table.resolve(None, k).map_err(TrainError::from))
                .collect::<Result<_>>()?;
            let child_keys: Vec<usize> = keys
                .iter()
                .map(|k| cdata.table.resolve(None, k).map_err(TrainError::from))
                .collect::<Result<_>>()?;
            // Group child rows by key with summed weights.
            let mut index: HashMap<Vec<String>, Vec<u32>> = HashMap::new();
            let mut sums: HashMap<Vec<String>, f64> = HashMap::new();
            for i in 0..cdata.table.num_rows() {
                let k = key_of(&cdata.table, &child_keys, i);
                index.entry(k.clone()).or_default().push(i as u32);
                *sums.entry(k).or_insert(0.0) += cdata.weights[i];
            }
            for (i, w) in weights.iter_mut().enumerate() {
                let k = key_of(&table, &parent_keys, i);
                *w *= sums.get(&k).copied().unwrap_or(0.0);
            }
            child_indexes.push(ChildIndex {
                rel: c,
                parent_keys,
                index,
            });
        }
        data[*rel] = Some(RelData {
            table,
            weights,
            children: child_indexes,
        });
    }
    // Sample.
    let root_data = data[root].as_ref().expect("root prepared");
    let total: f64 = root_data.weights.iter().sum();
    if total <= 0.0 {
        return Err(TrainError::Invalid("empty join result".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Output schema: union of columns, first occurrence per name.
    let mut out_names: Vec<String> = Vec::new();
    let mut out_sources: Vec<(RelId, usize)> = Vec::new();
    for (rel, _) in &order {
        let t = &data[*rel].as_ref().expect("prepared").table;
        for (ci, m) in t.meta.iter().enumerate() {
            if !out_names.iter().any(|n| n.eq_ignore_ascii_case(&m.name)) {
                out_names.push(m.name.clone());
                out_sources.push((*rel, ci));
            }
        }
    }
    let mut rows: Vec<Vec<Datum>> = Vec::with_capacity(n);
    for _ in 0..n {
        // Chosen row per relation.
        let mut chosen: HashMap<RelId, usize> = HashMap::new();
        let r = sample_weighted(&mut rng, &root_data.weights, total);
        chosen.insert(root, r);
        // Walk down the tree.
        let mut stack = vec![root];
        while let Some(rel) = stack.pop() {
            let rd = data[rel].as_ref().expect("prepared");
            let row = chosen[&rel];
            for child in &rd.children {
                let key = key_of(&rd.table, &child.parent_keys, row);
                let cdata = data[child.rel].as_ref().expect("prepared");
                let cands = child.index.get(&key).ok_or_else(|| {
                    TrainError::Invalid("dangling join key during sampling".into())
                })?;
                let ws: Vec<f64> = cands.iter().map(|&i| cdata.weights[i as usize]).collect();
                let wtotal: f64 = ws.iter().sum();
                let pick = cands[sample_weighted(&mut rng, &ws, wtotal)] as usize;
                chosen.insert(child.rel, pick);
                stack.push(child.rel);
            }
        }
        rows.push(
            out_sources
                .iter()
                .map(|&(rel, ci)| {
                    let rd = data[rel].as_ref().expect("prepared");
                    rd.table.columns[ci].get(chosen[&rel])
                })
                .collect(),
        );
    }
    // Assemble the output table column-wise.
    let mut out = Table::new();
    for (j, name) in out_names.iter().enumerate() {
        let col: Vec<Datum> = rows.iter().map(|r| r[j].clone()).collect();
        out.push_column(
            joinboost_engine::table::ColumnMeta::new(name.clone()),
            Column::from_datums(&col),
        );
    }
    Ok(out)
}

fn sample_weighted(rng: &mut StdRng, weights: &[f64], total: f64) -> usize {
    let mut x = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database};
    use joinboost_graph::Multiplicity;

    /// R(A,B) — S(A,C): A=1 extends to 1×2=2 join tuples, A=2 to 2×1=2.
    fn setup() -> (Database, JoinGraph) {
        let db = Database::in_memory();
        db.create_table(
            "r",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 2, 2])),
                ("b", Column::int(vec![10, 20, 21])),
            ]),
        )
        .unwrap();
        db.create_table(
            "s",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2])),
                ("c", Column::int(vec![100, 101, 102])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("r", &["b"]).unwrap();
        g.add_relation("s", &["c"]).unwrap();
        g.add_edge_with("r", "s", &["a"], Multiplicity::ManyToMany)
            .unwrap();
        (db, g)
    }

    #[test]
    fn sample_rows_are_valid_join_tuples() {
        let (db, g) = setup();
        let t = ancestral_sample(&db, &g, 0, 200, 7).unwrap();
        assert_eq!(t.num_rows(), 200);
        // Valid (b, c) combinations: b=10 with c∈{100,101}; b∈{20,21} with c=102.
        for i in 0..t.num_rows() {
            let b = t.column(None, "b").unwrap().get(i).as_i64().unwrap();
            let c = t.column(None, "c").unwrap().get(i).as_i64().unwrap();
            if b == 10 {
                assert!(c == 100 || c == 101);
            } else {
                assert_eq!(c, 102);
            }
        }
    }

    #[test]
    fn sampling_is_approximately_uniform_over_join_tuples() {
        let (db, g) = setup();
        // |R⋈| = 4 tuples, each probability 1/4.
        let n = 8000;
        let t = ancestral_sample(&db, &g, 0, n, 123).unwrap();
        let mut counts: HashMap<(i64, i64), usize> = HashMap::new();
        for i in 0..t.num_rows() {
            let b = t.column(None, "b").unwrap().get(i).as_i64().unwrap();
            let c = t.column(None, "c").unwrap().get(i).as_i64().unwrap();
            *counts.entry((b, c)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4, "all join tuples reachable");
        for (&k, &cnt) in &counts {
            let p = cnt as f64 / n as f64;
            assert!(
                (p - 0.25).abs() < 0.03,
                "tuple {k:?} frequency {p} far from uniform"
            );
        }
    }

    #[test]
    fn root_choice_does_not_bias() {
        let (db, g) = setup();
        let t = ancestral_sample(&db, &g, 1, 8000, 5).unwrap();
        let mut b10 = 0;
        for i in 0..t.num_rows() {
            if t.column(None, "b").unwrap().get(i).as_i64() == Some(10) {
                b10 += 1;
            }
        }
        // b=10 covers 2 of 4 join tuples → ~0.5.
        let p = b10 as f64 / 8000.0;
        assert!((p - 0.5).abs() < 0.03, "p = {p}");
    }
}
