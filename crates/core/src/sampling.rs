//! Ancestral sampling over the join graph (Section 5.5.2).
//!
//! Random forests need uniform, independent samples of the *join result*
//! `R⋈` without materializing it. Naively sampling each relation is
//! neither uniform nor join-safe. Ancestral sampling treats `R⋈` as a
//! probability table (each tuple mass `1/|R⋈|`), samples the root
//! relation by its marginal probability — the number of join tuples each
//! root row extends to, computed by COUNT semi-ring message passing — and
//! walks the join graph sampling each next relation conditionally.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use joinboost_engine::{Column, Datum, Table};
use joinboost_graph::{JoinGraph, RelId};

use crate::backend::{BackendResult, SqlBackend};
use crate::error::{Result, TrainError};

/// Per-relation data prepared for sampling.
struct RelData {
    table: Table,
    /// COUNT-semiring weight per row: the number of `R⋈` tuples this row
    /// extends to within its subtree.
    weights: Vec<f64>,
    /// Children in the sampling tree, with rows grouped by join key.
    children: Vec<ChildIndex>,
}

struct ChildIndex {
    rel: RelId,
    /// Key columns in the *parent* table.
    parent_keys: Vec<usize>,
    /// Join-key value → child row indices.
    index: HashMap<Vec<String>, Vec<u32>>,
}

fn key_of(table: &Table, cols: &[usize], row: usize) -> Vec<String> {
    cols.iter()
        .map(|&c| table.columns[c].get(row).to_string())
        .collect()
}

/// Draw `n` tuples of `R⋈` uniformly (with replacement) by ancestral
/// sampling from `root`. Returns a table whose columns are the union of
/// all relations' columns (join keys deduplicated, first occurrence wins).
///
/// The root relation is sampled *per partition* through
/// [`SqlBackend::map_partitions`]: each partition reports its total
/// marginal weight (one row), the per-partition sample counts are drawn
/// from those totals, and each partition then ships only its sampled
/// rows — on a sharded backend the (large) root never crosses the wire,
/// only `n` rows plus one total per shard do. Non-root relations are the
/// small replicated side of the tree and are snapshot as before.
pub fn ancestral_sample(
    db: &dyn SqlBackend,
    graph: &JoinGraph,
    root: RelId,
    n: usize,
    seed: u64,
) -> Result<Table> {
    graph.validate_tree()?;
    // Load snapshots of every non-root relation and build the BFS tree.
    let nrel = graph.num_relations();
    let mut tables: Vec<Option<Table>> = (0..nrel).map(|_| None).collect();
    let mut root_name = String::new();
    for (rel, info) in graph.relations() {
        if rel == root {
            root_name = info.name.clone();
        } else {
            tables[rel] = Some(db.snapshot(&info.name)?);
        }
    }
    let order = graph.sampling_order(root);
    let mut parent_of: HashMap<RelId, RelId> = HashMap::new();
    {
        let mut seen = vec![root];
        for (rel, _) in order.iter().skip(1) {
            // Parent = the already-seen neighbor.
            let p = graph
                .neighbors(*rel)
                .into_iter()
                .map(|(v, _)| v)
                .find(|v| seen.contains(v))
                .expect("BFS order has a seen parent");
            parent_of.insert(*rel, p);
            seen.push(*rel);
        }
    }
    // Children lists.
    let mut children_of: Vec<Vec<RelId>> = vec![Vec::new(); nrel];
    for (&c, &p) in &parent_of {
        children_of[p].push(c);
    }
    // Bottom-up COUNT message passing over the non-root relations:
    // weight of a row = Π over children of (Σ weights of matching child
    // rows).
    let mut data: Vec<Option<RelData>> = (0..nrel).map(|_| None).collect();
    for (rel, _) in order.iter().rev().filter(|(r, _)| *r != root) {
        let table = tables[*rel].take().expect("loaded");
        let nrows = table.num_rows();
        let mut weights = vec![1.0f64; nrows];
        let mut child_indexes = Vec::new();
        for &c in &children_of[*rel] {
            let cdata = data[c].as_ref().expect("children processed first");
            let keys = graph.join_keys(*rel, c).expect("edge");
            let parent_keys: Vec<usize> = keys
                .iter()
                .map(|k| table.resolve(None, k).map_err(TrainError::from))
                .collect::<Result<_>>()?;
            let (index, sums) = index_child(cdata, keys)?;
            for (i, w) in weights.iter_mut().enumerate() {
                let k = key_of(&table, &parent_keys, i);
                *w *= sums.get(&k).copied().unwrap_or(0.0);
            }
            child_indexes.push(ChildIndex {
                rel: c,
                parent_keys,
                index,
            });
        }
        data[*rel] = Some(RelData {
            table,
            weights,
            children: child_indexes,
        });
    }
    // The root's COUNT messages: per-child key → summed weight (used to
    // weight partition rows) and key → candidate rows (used for the
    // descent after sampling). Key column indices on the root side are
    // resolved lazily per partition table.
    struct RootChild {
        rel: RelId,
        key_names: Vec<String>,
        index: HashMap<Vec<String>, Vec<u32>>,
        sums: HashMap<Vec<String>, f64>,
    }
    let mut root_children: Vec<RootChild> = Vec::new();
    for &c in &children_of[root] {
        let cdata = data[c].as_ref().expect("children prepared");
        let keys = graph.join_keys(root, c).expect("edge");
        let (index, sums) = index_child(cdata, keys)?;
        root_children.push(RootChild {
            rel: c,
            key_names: keys.to_vec(),
            index,
            sums,
        });
    }
    let local_weights = |t: &Table| -> Result<Vec<f64>> {
        let mut weights = vec![1.0f64; t.num_rows()];
        for child in &root_children {
            let cols: Vec<usize> = child
                .key_names
                .iter()
                .map(|k| t.resolve(None, k).map_err(TrainError::from))
                .collect::<Result<_>>()?;
            for (i, w) in weights.iter_mut().enumerate() {
                let k = key_of(t, &cols, i);
                *w *= child.sums.get(&k).copied().unwrap_or(0.0);
            }
        }
        Ok(weights)
    };
    // Pass 1: each partition reports its total marginal weight (1 row).
    // Totals are indexed by the *partition index* the backend hands the
    // closure — the only ordering `map_partitions` promises.
    let mut totals: Vec<f64> = Vec::new();
    db.map_partitions(&root_name, &mut |i, t| {
        let w: f64 = local_weights(t).map_err(engine_err)?.iter().sum();
        if totals.len() <= i {
            totals.resize(i + 1, 0.0);
        }
        totals[i] = w;
        Ok(Table::from_columns(vec![("w", Column::float(vec![w]))]))
    })
    .map_err(TrainError::from)?;
    let total: f64 = totals.iter().sum();
    if total <= 0.0 {
        return Err(TrainError::Invalid("empty join result".into()));
    }
    // Per-partition sample counts: each of the n draws picks a partition
    // by its share of the total weight (zero-weight partitions — an
    // empty shard, say — can never be drawn).
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; totals.len()];
    for _ in 0..n {
        let p = sample_weighted(&mut rng, &totals, total)
            .ok_or_else(|| TrainError::Invalid("no partition carries sampling weight".into()))?;
        counts[p] += 1;
    }
    // Pass 2: each partition draws its count of root rows by local
    // weight and ships exactly those rows.
    let parts: Vec<Table> = {
        let rng = &mut rng;
        let counts = &counts;
        db.map_partitions(&root_name, &mut |i, t| {
            let weights = local_weights(t).map_err(engine_err)?;
            let wtotal: f64 = weights.iter().sum();
            let picks: Vec<u32> = (0..counts.get(i).copied().unwrap_or(0))
                .map(|_| {
                    sample_weighted(rng, &weights, wtotal)
                        .map(|p| p as u32)
                        .ok_or_else(|| {
                            joinboost_engine::EngineError::Other(
                                "partition drew samples but carries no weight".into(),
                            )
                        })
                })
                .collect::<BackendResult<_>>()?;
            Ok(t.take(&picks))
        })
        .map_err(TrainError::from)?
    };
    // Output schema: union of columns, first occurrence per name; the
    // root contributes through its sampled partitions.
    let root_schema: &Table = parts.first().ok_or_else(|| {
        TrainError::Invalid("backend reported no partitions for the root relation".into())
    })?;
    let mut out_names: Vec<String> = Vec::new();
    let mut out_sources: Vec<(RelId, usize)> = Vec::new();
    for (rel, _) in &order {
        let t = if *rel == root {
            root_schema
        } else {
            &data[*rel].as_ref().expect("prepared").table
        };
        for (ci, m) in t.meta.iter().enumerate() {
            if !out_names.iter().any(|n| n.eq_ignore_ascii_case(&m.name)) {
                out_names.push(m.name.clone());
                out_sources.push((*rel, ci));
            }
        }
    }
    // Walk down the tree from every sampled root row.
    let mut rows: Vec<Vec<Datum>> = Vec::with_capacity(n);
    for part in &parts {
        let root_key_cols: Vec<Vec<usize>> = root_children
            .iter()
            .map(|child| {
                child
                    .key_names
                    .iter()
                    .map(|k| part.resolve(None, k).map_err(TrainError::from))
                    .collect::<Result<_>>()
            })
            .collect::<Result<_>>()?;
        for row in 0..part.num_rows() {
            let mut chosen: HashMap<RelId, usize> = HashMap::new();
            let mut stack: Vec<RelId> = Vec::new();
            for (child, cols) in root_children.iter().zip(&root_key_cols) {
                let key = key_of(part, cols, row);
                let cdata = data[child.rel].as_ref().expect("prepared");
                let cands = child.index.get(&key).ok_or_else(|| {
                    TrainError::Invalid("dangling join key during sampling".into())
                })?;
                let ws: Vec<f64> = cands.iter().map(|&i| cdata.weights[i as usize]).collect();
                let wtotal: f64 = ws.iter().sum();
                let pick = sample_weighted(&mut rng, &ws, wtotal)
                    .map(|p| cands[p] as usize)
                    .ok_or_else(|| {
                        TrainError::Invalid("weightless join candidates during sampling".into())
                    })?;
                chosen.insert(child.rel, pick);
                stack.push(child.rel);
            }
            while let Some(rel) = stack.pop() {
                let rd = data[rel].as_ref().expect("prepared");
                let at = chosen[&rel];
                for child in &rd.children {
                    let key = key_of(&rd.table, &child.parent_keys, at);
                    let cdata = data[child.rel].as_ref().expect("prepared");
                    let cands = child.index.get(&key).ok_or_else(|| {
                        TrainError::Invalid("dangling join key during sampling".into())
                    })?;
                    let ws: Vec<f64> = cands.iter().map(|&i| cdata.weights[i as usize]).collect();
                    let wtotal: f64 = ws.iter().sum();
                    let pick = sample_weighted(&mut rng, &ws, wtotal)
                        .map(|p| cands[p] as usize)
                        .ok_or_else(|| {
                            TrainError::Invalid("weightless join candidates during sampling".into())
                        })?;
                    chosen.insert(child.rel, pick);
                    stack.push(child.rel);
                }
            }
            rows.push(
                out_sources
                    .iter()
                    .map(|&(rel, ci)| {
                        if rel == root {
                            part.columns[ci].get(row)
                        } else {
                            let rd = data[rel].as_ref().expect("prepared");
                            rd.table.columns[ci].get(chosen[&rel])
                        }
                    })
                    .collect(),
            );
        }
    }
    // Assemble the output table column-wise.
    let mut out = Table::new();
    for (j, name) in out_names.iter().enumerate() {
        let col: Vec<Datum> = rows.iter().map(|r| r[j].clone()).collect();
        out.push_column(
            joinboost_engine::table::ColumnMeta::new(name.clone()),
            Column::from_datums(&col),
        );
    }
    Ok(out)
}

/// Group a child's rows by join key: key → row indices, and key → summed
/// weights (its COUNT message to the parent).
#[allow(clippy::type_complexity)]
fn index_child(
    cdata: &RelData,
    keys: &[String],
) -> Result<(HashMap<Vec<String>, Vec<u32>>, HashMap<Vec<String>, f64>)> {
    let child_keys: Vec<usize> = keys
        .iter()
        .map(|k| cdata.table.resolve(None, k).map_err(TrainError::from))
        .collect::<Result<_>>()?;
    let mut index: HashMap<Vec<String>, Vec<u32>> = HashMap::new();
    let mut sums: HashMap<Vec<String>, f64> = HashMap::new();
    for i in 0..cdata.table.num_rows() {
        let k = key_of(&cdata.table, &child_keys, i);
        index.entry(k.clone()).or_default().push(i as u32);
        *sums.entry(k).or_insert(0.0) += cdata.weights[i];
    }
    Ok((index, sums))
}

/// Map a [`TrainError`] into the engine-error vocabulary the backend
/// partition closures speak.
fn engine_err(e: TrainError) -> joinboost_engine::EngineError {
    joinboost_engine::EngineError::Other(e.to_string())
}

/// Draw an index proportionally to `weights`. Zero-weight entries are
/// never returned (rounding in the running subtraction could otherwise
/// land the draw past the last positive weight); `None` when no entry
/// carries positive weight — including the empty slice.
fn sample_weighted(rng: &mut StdRng, weights: &[f64], total: f64) -> Option<usize> {
    let mut x = rng.random::<f64>() * total;
    let mut last_positive = None;
    for (i, &w) in weights.iter().enumerate() {
        if w > 0.0 {
            last_positive = Some(i);
            x -= w;
            if x <= 0.0 {
                return last_positive;
            }
        }
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database};
    use joinboost_graph::Multiplicity;

    /// R(A,B) — S(A,C): A=1 extends to 1×2=2 join tuples, A=2 to 2×1=2.
    fn setup() -> (Database, JoinGraph) {
        let db = Database::in_memory();
        db.create_table(
            "r",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 2, 2])),
                ("b", Column::int(vec![10, 20, 21])),
            ]),
        )
        .unwrap();
        db.create_table(
            "s",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2])),
                ("c", Column::int(vec![100, 101, 102])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("r", &["b"]).unwrap();
        g.add_relation("s", &["c"]).unwrap();
        g.add_edge_with("r", "s", &["a"], Multiplicity::ManyToMany)
            .unwrap();
        (db, g)
    }

    #[test]
    fn sample_rows_are_valid_join_tuples() {
        let (db, g) = setup();
        let t = ancestral_sample(&db, &g, 0, 200, 7).unwrap();
        assert_eq!(t.num_rows(), 200);
        // Valid (b, c) combinations: b=10 with c∈{100,101}; b∈{20,21} with c=102.
        for i in 0..t.num_rows() {
            let b = t.column(None, "b").unwrap().get(i).as_i64().unwrap();
            let c = t.column(None, "c").unwrap().get(i).as_i64().unwrap();
            if b == 10 {
                assert!(c == 100 || c == 101);
            } else {
                assert_eq!(c, 102);
            }
        }
    }

    #[test]
    fn sampling_is_approximately_uniform_over_join_tuples() {
        let (db, g) = setup();
        // |R⋈| = 4 tuples, each probability 1/4.
        let n = 8000;
        let t = ancestral_sample(&db, &g, 0, n, 123).unwrap();
        let mut counts: HashMap<(i64, i64), usize> = HashMap::new();
        for i in 0..t.num_rows() {
            let b = t.column(None, "b").unwrap().get(i).as_i64().unwrap();
            let c = t.column(None, "c").unwrap().get(i).as_i64().unwrap();
            *counts.entry((b, c)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4, "all join tuples reachable");
        for (&k, &cnt) in &counts {
            let p = cnt as f64 / n as f64;
            assert!(
                (p - 0.25).abs() < 0.03,
                "tuple {k:?} frequency {p} far from uniform"
            );
        }
    }

    #[test]
    fn sharded_root_ships_samples_not_partitions() {
        use crate::backend::ShardedBackend;
        use joinboost_engine::EngineConfig;
        // Same R(A,B) ⋈ S(A,C) workload, with R hash-partitioned over 3
        // engines: samples must still be valid, uniform join tuples, and
        // the shuffle volume must stay proportional to the sample — the
        // partitions themselves never cross to the coordinator.
        let b = ShardedBackend::new(3, EngineConfig::duckdb_mem(), "r", "b");
        b.create_table(
            "r",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 2, 2])),
                ("b", Column::int(vec![10, 20, 21])),
            ]),
        )
        .unwrap();
        b.create_table(
            "s",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2])),
                ("c", Column::int(vec![100, 101, 102])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("r", &["b"]).unwrap();
        g.add_relation("s", &["c"]).unwrap();
        g.add_edge_with("r", "s", &["a"], Multiplicity::ManyToMany)
            .unwrap();
        let n = 8000;
        let before = b.stats().rows_shipped;
        let t = ancestral_sample(&b, &g, 0, n, 11).unwrap();
        let shipped = b.stats().rows_shipped - before;
        assert_eq!(t.num_rows(), n);
        // n sampled rows + one total row per partition pass; the 3-row
        // partitions stay put.
        assert!(
            shipped <= (n + 6) as u64,
            "sampling gathered whole partitions ({shipped} rows)"
        );
        let mut counts: HashMap<(i64, i64), usize> = HashMap::new();
        for i in 0..t.num_rows() {
            let b_ = t.column(None, "b").unwrap().get(i).as_i64().unwrap();
            let c = t.column(None, "c").unwrap().get(i).as_i64().unwrap();
            if b_ == 10 {
                assert!(c == 100 || c == 101);
            } else {
                assert_eq!(c, 102);
            }
            *counts.entry((b_, c)).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 4, "all join tuples reachable");
        for (&k, &cnt) in &counts {
            let p = cnt as f64 / n as f64;
            assert!((p - 0.25).abs() < 0.03, "tuple {k:?} frequency {p}");
        }
    }

    #[test]
    fn root_choice_does_not_bias() {
        let (db, g) = setup();
        let t = ancestral_sample(&db, &g, 1, 8000, 5).unwrap();
        let mut b10 = 0;
        for i in 0..t.num_rows() {
            if t.column(None, "b").unwrap().get(i).as_i64() == Some(10) {
                b10 += 1;
            }
        }
        // b=10 covers 2 of 4 join tuples → ~0.5.
        let p = b10 as f64 / 8000.0;
        assert!((p - 0.5).abs() < 0.03, "p = {p}");
    }
}
