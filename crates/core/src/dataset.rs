//! Binding a join graph to database tables (the training dataset of the
//! JoinBoost API, Section 5.1 / Figure 4).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use joinboost_engine::DataType;
use joinboost_graph::{JoinGraph, RelId};

use crate::backend::SqlBackend;
use crate::error::{Result, TrainError};

/// How a feature is split: numeric features use inequality splits over
/// window prefix sums; categorical features use equality splits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureKind {
    /// Inequality splits (`f <= v`) over window prefix sums.
    Numeric,
    /// Equality splits (`f = v`) over per-value aggregates.
    Categorical,
}

static DATASET_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A training dataset: a join graph whose relation names are tables in a
/// SQL backend, plus the target variable.
///
/// Safety (Section 5.1): training never modifies user tables. Every write
/// goes to a `jb_<id>_`-prefixed temporary table registered here; they are
/// dropped when the dataset is dropped unless [`Dataset::keep_temp_tables`]
/// is set (the paper keeps them for provenance/debugging on request).
pub struct Dataset<'a> {
    /// The DBMS backend every training query runs against. A plain
    /// [`joinboost_engine::Database`] coerces here directly; see
    /// [`crate::backend`] for the other implementations.
    pub db: &'a dyn SqlBackend,
    /// The join graph binding relations, features and join keys.
    pub graph: JoinGraph,
    /// Name of the relation holding the target column.
    pub target_relation: String,
    /// Name of the target (label) column.
    pub target_column: String,
    target_rel_id: RelId,
    kinds: HashMap<String, FeatureKind>,
    prefix: String,
    temp_tables: Mutex<Vec<String>>,
    counter: AtomicUsize,
    /// Keep `jb_`-prefixed temp tables alive on drop (provenance).
    pub keep_temp_tables: bool,
}

impl<'a> Dataset<'a> {
    /// Validate the graph against the backend and infer feature kinds
    /// (string columns are categorical, numeric columns numeric).
    pub fn new(
        db: &'a dyn SqlBackend,
        graph: JoinGraph,
        target_relation: &str,
        target_column: &str,
    ) -> Result<Self> {
        graph.validate_tree()?;
        let target_rel_id = graph.rel_id(target_relation)?;
        // Every relation must exist with its features and join keys.
        let mut kinds = HashMap::new();
        for (rel, info) in graph.relations() {
            let cols = db
                .column_names(&info.name)
                .map_err(|e| TrainError::Engine(e.to_string()))?;
            let has = |c: &str| cols.iter().any(|x| x.eq_ignore_ascii_case(c));
            for f in &info.features {
                if !has(f) {
                    return Err(TrainError::Graph(format!(
                        "feature {f} not found in table {}",
                        info.name
                    )));
                }
                let kind = match db.column_dtype(&info.name, f)? {
                    DataType::Str => FeatureKind::Categorical,
                    DataType::Int | DataType::Float => FeatureKind::Numeric,
                };
                kinds.insert(f.to_ascii_lowercase(), kind);
            }
            for (other, _) in graph.neighbors(rel) {
                for k in graph
                    .join_keys(rel, other)
                    .expect("neighbors share an edge")
                {
                    if !has(k) {
                        return Err(TrainError::Graph(format!(
                            "join key {k} not found in table {}",
                            info.name
                        )));
                    }
                }
            }
        }
        let tcols = db.column_names(target_relation)?;
        if !tcols.iter().any(|c| c.eq_ignore_ascii_case(target_column)) {
            return Err(TrainError::Graph(format!(
                "target column {target_column} not found in {target_relation}"
            )));
        }
        let id = DATASET_COUNTER.fetch_add(1, Ordering::Relaxed);
        Ok(Dataset {
            db,
            graph,
            target_relation: target_relation.to_string(),
            target_column: target_column.to_string(),
            target_rel_id,
            kinds,
            prefix: format!("jb_{id}"),
            temp_tables: Mutex::new(Vec::new()),
            counter: AtomicUsize::new(0),
            keep_temp_tables: false,
        })
    }

    /// Graph id of the relation holding the target column.
    pub fn target_rel(&self) -> RelId {
        self.target_rel_id
    }

    /// All `(feature, relation)` pairs.
    pub fn features(&self) -> Vec<(String, RelId)> {
        self.graph.all_features()
    }

    /// How the named feature splits (numeric unless known categorical).
    pub fn feature_kind(&self, feature: &str) -> FeatureKind {
        self.kinds
            .get(&feature.to_ascii_lowercase())
            .copied()
            .unwrap_or(FeatureKind::Numeric)
    }

    /// Force a numeric column to be treated as categorical (equality
    /// splits), e.g. dictionary-encoded ids.
    pub fn set_categorical(&mut self, feature: &str) {
        self.kinds
            .insert(feature.to_ascii_lowercase(), FeatureKind::Categorical);
    }

    /// Allocate a fresh temp-table name (registered for cleanup).
    pub fn fresh_table(&self, hint: &str) -> String {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}_{hint}_{n}", self.prefix);
        self.temp_tables.lock().push(name.clone());
        name
    }

    /// Register an externally created temp table for cleanup.
    pub fn register_temp(&self, name: &str) {
        self.temp_tables.lock().push(name.to_string());
    }

    /// Number of live temp tables created so far.
    pub fn temp_table_count(&self) -> usize {
        self.temp_tables.lock().len()
    }

    /// Drop all registered temp tables (ignores already-dropped ones).
    pub fn drop_temp_tables(&self) {
        let names: Vec<String> = self.temp_tables.lock().drain(..).collect();
        for n in names {
            let _ = self.db.drop_table_if_exists(&n);
        }
    }
}

impl Drop for Dataset<'_> {
    fn drop(&mut self) {
        if !self.keep_temp_tables {
            self.drop_temp_tables();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database, Table};

    fn db_and_graph() -> (Database, JoinGraph) {
        let db = Database::in_memory();
        db.create_table(
            "sales",
            Table::from_columns(vec![
                ("date_id", Column::int(vec![1, 2])),
                ("net_profit", Column::float(vec![10.0, 20.0])),
            ]),
        )
        .unwrap();
        db.create_table(
            "dates",
            Table::from_columns(vec![
                ("date_id", Column::int(vec![1, 2])),
                ("holiday", Column::int(vec![0, 1])),
                (
                    "season",
                    Column::str(vec!["winter".into(), "summer".into()]),
                ),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("sales", &[]).unwrap();
        g.add_relation("dates", &["holiday", "season"]).unwrap();
        g.add_edge("sales", "dates", &["date_id"]).unwrap();
        (db, g)
    }

    #[test]
    fn builds_and_infers_kinds() {
        let (db, g) = db_and_graph();
        let ds = Dataset::new(&db, g, "sales", "net_profit").unwrap();
        assert_eq!(ds.feature_kind("holiday"), FeatureKind::Numeric);
        assert_eq!(ds.feature_kind("season"), FeatureKind::Categorical);
        assert_eq!(ds.features().len(), 2);
        assert_eq!(ds.target_rel(), ds.graph.rel_id("sales").unwrap());
    }

    #[test]
    fn rejects_missing_columns() {
        let (db, mut g) = db_and_graph();
        g.add_relation("extra", &["nope"]).unwrap();
        g.add_edge("sales", "extra", &["date_id"]).unwrap();
        assert!(Dataset::new(&db, g, "sales", "net_profit").is_err());
        let (db, g) = db_and_graph();
        assert!(Dataset::new(&db, g, "sales", "wrong_target").is_err());
    }

    #[test]
    fn rejects_missing_join_key() {
        let (db, _) = db_and_graph();
        let mut g = JoinGraph::new();
        g.add_relation("sales", &[]).unwrap();
        g.add_relation("dates", &["holiday"]).unwrap();
        g.add_edge("sales", "dates", &["bad_key"]).unwrap();
        assert!(Dataset::new(&db, g, "sales", "net_profit").is_err());
    }

    #[test]
    fn temp_tables_are_dropped_on_drop() {
        let (db, g) = db_and_graph();
        let name;
        {
            let ds = Dataset::new(&db, g, "sales", "net_profit").unwrap();
            name = ds.fresh_table("msg");
            db.execute(&format!("CREATE TABLE {name} AS SELECT 1 AS x"))
                .unwrap();
            assert!(db.has_table(&name));
            assert_eq!(ds.temp_table_count(), 1);
        }
        assert!(!db.has_table(&name), "temp table must be cleaned up");
    }

    #[test]
    fn set_categorical_overrides() {
        let (db, g) = db_and_graph();
        let mut ds = Dataset::new(&db, g, "sales", "net_profit").unwrap();
        ds.set_categorical("holiday");
        assert_eq!(ds.feature_kind("holiday"), FeatureKind::Categorical);
    }
}
