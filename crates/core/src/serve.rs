//! Factorized model serving: compile a trained forest into per-relation
//! **message tables** so scoring a key is k dictionary lookups plus
//! `⊕`-adds — never a join (see `DESIGN.md` § "Serving").
//!
//! Training avoids materializing `R⋈`; this module makes *prediction*
//! avoid it too. For every tree, each relation's split predicates are
//! pushed down to that relation and evaluated once per row, producing a
//! per-key **leaf-compatibility bitmask**: bit `j` is set iff no predicate
//! of leaf `j`'s path that lives on this relation is violated. Because a
//! tree's leaves partition the input space, AND-ing the masks of the fact
//! row and its dimension rows leaves exactly one bit — the leaf
//! [`Tree::predict`] would have reached over the joined tuple. The score
//! is then read from the tree's leaf-value table.
//!
//! Exactness: the evaluator adds leaf values in the exact operation order
//! of the materialized-join path (`score = init; per tree: score +=
//! lr·leaf`), so [`FactorizedScorer`] is unconditionally bit-identical to
//! [`JoinScorer`] on a single node. Sharded evaluation computes shard
//! partials starting from `0.0` and adds the initial score at the
//! coordinator; with the `leaf_quantization` dyadic grid every partial is
//! exact in `f64`, so the regrouping changes nothing — the distributed
//! scores are bit-identical too.
//!
//! Snowflake schemas deeper than one level are folded at compile time:
//! a dimension-of-a-dimension's mask is AND-ed into its parent, so the
//! deployed tables are always the fact message table (hash-partitioned on
//! the predict key) plus one replicated table per fact-adjacent dimension.

use std::collections::HashMap;

use joinboost_engine::table::ColumnMeta;
use joinboost_engine::{Column, Datum, EngineError, Table};
use joinboost_graph::{JoinGraph, RelId};

use crate::backend::{BackendResult, SqlBackend};
use crate::boosting::GbmModel;
use crate::dataset::Dataset;
use crate::error::{Result, TrainError};
use crate::predict::{features_query, predict_boosted, TableRow};
use crate::tree::Tree;

/// Key column name inside a deployed dimension message table.
pub const DIM_KEY: &str = "jb_key";

/// A compiled, deployable description of a factorized scorer: which
/// message tables hold the per-key masks, and the per-tree leaf values to
/// read once the masks are AND-ed.
///
/// The spec is plain data — it crosses the wire (see
/// [`crate::backend::wire`]) so a `PredictBatch` can name shard-resident
/// tables without shipping them.
#[derive(Debug, Clone, PartialEq)]
pub struct ScorerSpec {
    /// The model's initial score (added once per key).
    pub init_score: f64,
    /// Shrinkage applied to every leaf value.
    pub learning_rate: f64,
    /// `leaf_values[t][j]` = value of leaf slot `j` (in
    /// [`Tree::leaves_with_paths`] order) of tree `t`.
    pub leaf_values: Vec<Vec<f64>>,
    /// Name of the fact message table: `[key, jb_fk*, jb_m*]`, one row per
    /// predict key, hash-partitioned on the key when deployed to shards.
    pub fact_table: String,
    /// The predict-key column inside [`ScorerSpec::fact_table`].
    pub key_column: String,
    /// Replicated per-dimension message tables `[jb_key, jb_m*]`; entry
    /// `d` is looked up through fact column [`fk_column`]`(d)`.
    pub dim_tables: Vec<String>,
}

/// Name of the per-tree mask column `t` (`jb_m{t}`, an `Int` column
/// holding the `u64` bitmask by bit pattern).
pub fn mask_column(t: usize) -> String {
    format!("jb_m{t}")
}

/// Name of the fact message table's foreign-key column into dimension
/// table `d`.
pub fn fk_column(d: usize) -> String {
    format!("jb_fk{d}")
}

impl ScorerSpec {
    /// Number of trees in the compiled model.
    pub fn num_trees(&self) -> usize {
        self.leaf_values.len()
    }

    /// Every deployed table this spec references, fact first.
    pub fn tables(&self) -> Vec<&str> {
        let mut out = vec![self.fact_table.as_str()];
        out.extend(self.dim_tables.iter().map(String::as_str));
        out
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Per-relation view of one tree: for each leaf slot, the path predicates
/// living on this relation.
struct RelationPredicates {
    /// `(leaf bit, predicates)`; leaves with no predicate here are absent.
    per_leaf: Vec<(usize, Vec<(crate::tree::Split, bool)>)>,
}

fn other(msg: impl Into<String>) -> EngineError {
    EngineError::Other(msg.into())
}

/// The predicates of `tree` that live on relation `rel`.
fn predicates_on(tree: &Tree, graph: &JoinGraph, rel: RelId) -> RelationPredicates {
    let mut per_leaf = Vec::new();
    for (j, (_, path)) in tree.leaves_with_paths().iter().enumerate() {
        let mine: Vec<(crate::tree::Split, bool)> = path
            .iter()
            .filter(|(s, _)| {
                graph
                    .rel_id(&s.relation)
                    .ok()
                    .or_else(|| graph.relation_of_feature(&s.feature))
                    == Some(rel)
            })
            .cloned()
            .collect();
        if !mine.is_empty() {
            per_leaf.push((j, mine));
        }
    }
    RelationPredicates { per_leaf }
}

/// All-ones mask over `n` leaves (`n <= 64` checked by the caller).
fn full_mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Per-row leaf-compatibility masks of `table` for every tree: bit `j` of
/// `masks[row][t]` is cleared iff a predicate of leaf `j`'s path that
/// lives on this relation rejects the row.
fn local_masks(
    table: &Table,
    trees: &[Tree],
    graph: &JoinGraph,
    rel: RelId,
) -> BackendResult<Vec<Vec<u64>>> {
    let mut preds = Vec::with_capacity(trees.len());
    let mut full = Vec::with_capacity(trees.len());
    for tree in trees {
        let n = tree.leaves_with_paths().len();
        if n > 64 {
            return Err(other(format!(
                "factorized serving supports at most 64 leaves per tree, got {n}"
            )));
        }
        preds.push(predicates_on(tree, graph, rel));
        full.push(full_mask(n));
    }
    let n_rows = table.num_rows();
    let mut out = vec![full.clone(); n_rows];
    for (t, p) in preds.iter().enumerate() {
        if p.per_leaf.is_empty() {
            continue;
        }
        for (i, row_masks) in out.iter_mut().enumerate() {
            let row = TableRow { table, index: i };
            for (j, path) in &p.per_leaf {
                for (split, negated) in path {
                    let v = crate::tree::FeatureRow::feature(&row, &split.feature);
                    // The leaf's path takes the left branch iff the
                    // predicate is not negated.
                    if split.goes_left(v.as_ref()) == *negated {
                        row_masks[t] &= !(1u64 << j);
                        break;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Resolve the single `Int` join-key column between `a` and `b`.
fn single_join_key(graph: &JoinGraph, a: RelId, b: RelId) -> BackendResult<String> {
    let keys = graph
        .join_keys(a, b)
        .ok_or_else(|| other("missing join edge"))?;
    if keys.len() != 1 {
        return Err(other(format!(
            "factorized serving requires single-column join keys; {} ⋈ {} uses {:?}",
            graph.name(a),
            graph.name(b),
            keys
        )));
    }
    Ok(keys[0].clone())
}

/// Key → per-tree masks of a (folded) non-fact relation. `None` values in
/// the map never exist — dead rows (NULL or dangling keys) are dropped,
/// so a lookup miss means "this key never appears in the join".
type DimMap = HashMap<i64, Vec<u64>>;

/// Compile `model` into message tables on `db`, one per fact-adjacent
/// relation plus the fact itself.
///
/// `key_column` must be a unique, non-NULL `Int` column on the graph's
/// snowflake fact relation — it becomes the predict key. `namer` allocates
/// the deployed table names (a [`Dataset`] passes
/// [`Dataset::fresh_table`] so the tables are cleaned up with the
/// dataset; the wire server passes a per-job prefix so they outlive the
/// training job).
pub fn compile_messages(
    db: &dyn SqlBackend,
    graph: &JoinGraph,
    model: &GbmModel,
    key_column: &str,
    namer: &mut dyn FnMut(&str) -> String,
) -> BackendResult<ScorerSpec> {
    let fact = graph
        .snowflake_fact()
        .ok_or_else(|| other("factorized serving requires a snowflake schema"))?;
    let trees = &model.trees;
    let mut leaf_values = Vec::with_capacity(trees.len());
    for tree in trees {
        let vals: Vec<f64> = tree
            .leaves_with_paths()
            .iter()
            .map(|(i, _)| tree.nodes[*i].value)
            .collect();
        if vals.len() > 64 {
            return Err(other(format!(
                "factorized serving supports at most 64 leaves per tree, got {}",
                vals.len()
            )));
        }
        leaf_values.push(vals);
    }

    // BFS from the fact so children are known relative to their parent.
    let n = graph.num_relations();
    let mut parent: Vec<Option<RelId>> = vec![None; n];
    let mut order = vec![fact];
    let mut seen = vec![false; n];
    seen[fact] = true;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for (v, _) in graph.neighbors(u) {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                order.push(v);
            }
        }
    }

    // Reverse-BFS fold: each relation's masks absorb its children's, so
    // only fact-adjacent relations are deployed.
    let mut folded: HashMap<RelId, DimMap> = HashMap::new();
    for &r in order.iter().skip(1).rev() {
        let table = db.snapshot(graph.name(r))?;
        let mut masks = local_masks(&table, trees, graph, r)?;
        let children: Vec<RelId> = order
            .iter()
            .copied()
            .filter(|&c| parent[c] == Some(r))
            .collect();
        let mut alive = vec![true; table.num_rows()];
        for c in children {
            let key = single_join_key(graph, r, c)?;
            let kidx = table.resolve(None, &key)?;
            let child = folded
                .remove(&c)
                .expect("reverse BFS visits children first");
            for i in 0..table.num_rows() {
                match table.columns[kidx]
                    .get(i)
                    .as_i64()
                    .and_then(|k| child.get(&k))
                {
                    Some(cm) => {
                        for (m, c) in masks[i].iter_mut().zip(cm) {
                            *m &= c;
                        }
                    }
                    // NULL or dangling key: the row never joins, so any
                    // fact row pointing at it is absent from R⋈.
                    None => alive[i] = false,
                }
            }
        }
        let p = parent[r].expect("non-root relation has a parent");
        let key = single_join_key(graph, p, r)?;
        let kidx = table.resolve(None, &key)?;
        let mut map: DimMap = HashMap::new();
        for i in 0..table.num_rows() {
            if !alive[i] {
                continue;
            }
            let Some(k) = table.columns[kidx].get(i).as_i64() else {
                continue; // NULL join key never matches
            };
            if map.insert(k, std::mem::take(&mut masks[i])).is_some() {
                return Err(other(format!(
                    "factorized serving requires unique join keys; {} is duplicated in {}",
                    key,
                    graph.name(r)
                )));
            }
        }
        folded.insert(r, map);
    }

    // Deploy the fact-adjacent dimensions (replicated).
    let dims: Vec<RelId> = order
        .iter()
        .copied()
        .filter(|&r| parent[r] == Some(fact))
        .collect();
    let mut dim_tables = Vec::with_capacity(dims.len());
    for &d in &dims {
        let map = folded.remove(&d).expect("dimension folded");
        let mut keys: Vec<i64> = map.keys().copied().collect();
        keys.sort_unstable();
        let mut t = Table::new();
        t.push_column(ColumnMeta::new(DIM_KEY), Column::int(keys.clone()));
        #[allow(clippy::needless_range_loop)] // `ti` indexes per-key mask vecs, not one slice
        for ti in 0..trees.len() {
            let col: Vec<i64> = keys.iter().map(|k| map[k][ti] as i64).collect();
            t.push_column(ColumnMeta::new(mask_column(ti)), Column::int(col));
        }
        let name = namer(&format!("msg_{}", graph.name(d)));
        db.create_table(&name, t)?;
        dim_tables.push(name);
    }

    // Deploy the fact message table, partitioned on the predict key.
    let fact_snap = db.snapshot(graph.name(fact))?;
    let kidx = fact_snap.resolve(None, key_column)?;
    let masks = local_masks(&fact_snap, trees, graph, fact)?;
    let mut keys: Vec<i64> = Vec::with_capacity(fact_snap.num_rows());
    let mut unique: HashMap<i64, ()> = HashMap::with_capacity(fact_snap.num_rows());
    for i in 0..fact_snap.num_rows() {
        let k = fact_snap.columns[kidx].get(i).as_i64().ok_or_else(|| {
            other(format!(
                "predict key {key_column} must be a non-NULL Int column"
            ))
        })?;
        if unique.insert(k, ()).is_some() {
            return Err(other(format!(
                "predict key {key_column} is not unique: {k} appears twice"
            )));
        }
        keys.push(k);
    }
    let mut t = Table::new();
    t.push_column(ColumnMeta::new(key_column), Column::int(keys));
    for (d, &dim) in dims.iter().enumerate() {
        let key = single_join_key(graph, fact, dim)?;
        let fki = fact_snap.resolve(None, &key)?;
        let vals: Vec<Datum> = (0..fact_snap.num_rows())
            .map(|i| fact_snap.columns[fki].get(i))
            .collect();
        t.push_column(ColumnMeta::new(fk_column(d)), Column::from_datums(&vals));
    }
    for ti in 0..trees.len() {
        let col: Vec<i64> = masks.iter().map(|m| m[ti] as i64).collect();
        t.push_column(ColumnMeta::new(mask_column(ti)), Column::int(col));
    }
    let fact_table = namer("msg_fact");
    db.create_partitioned_table(&fact_table, t, key_column)?;

    Ok(ScorerSpec {
        init_score: model.init_score,
        learning_rate: model.learning_rate,
        leaf_values,
        fact_table,
        key_column: key_column.to_string(),
        dim_tables,
    })
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

/// One fact key's entry in a loaded [`MessageIndex`].
struct FactEntry {
    /// Per-tree local masks of the fact row.
    masks: Vec<u64>,
    /// Foreign keys into each dimension (`None` = NULL, never joins).
    fks: Vec<Option<i64>>,
}

/// An in-memory dictionary view of deployed message tables: the structure
/// every scoring path (local, per-shard partial, wire server) evaluates
/// against.
pub struct MessageIndex {
    learning_rate: f64,
    leaf_values: Vec<Vec<f64>>,
    fact: HashMap<i64, FactEntry>,
    dims: Vec<DimMap>,
}

impl MessageIndex {
    /// Load the spec's tables through `snapshot` (a backend, a shard
    /// transport, or a server-local engine — whoever holds the tables).
    pub fn load(
        spec: &ScorerSpec,
        snapshot: &mut dyn FnMut(&str) -> BackendResult<Table>,
    ) -> BackendResult<MessageIndex> {
        let nt = spec.leaf_values.len();
        let t = snapshot(&spec.fact_table)?;
        let kidx = t.resolve(None, &spec.key_column)?;
        let fk_idx: Vec<usize> = (0..spec.dim_tables.len())
            .map(|d| t.resolve(None, &fk_column(d)))
            .collect::<std::result::Result<_, _>>()?;
        let m_idx: Vec<usize> = (0..nt)
            .map(|ti| t.resolve(None, &mask_column(ti)))
            .collect::<std::result::Result<_, _>>()?;
        let mut fact = HashMap::with_capacity(t.num_rows());
        for i in 0..t.num_rows() {
            let key = t.columns[kidx]
                .get(i)
                .as_i64()
                .ok_or_else(|| other("fact message table key must be Int"))?;
            let masks: Vec<u64> = m_idx
                .iter()
                .map(|&c| {
                    t.columns[c]
                        .get(i)
                        .as_i64()
                        .map(|v| v as u64)
                        .ok_or_else(|| other("fact message table mask must be Int"))
                })
                .collect::<std::result::Result<_, _>>()?;
            let fks: Vec<Option<i64>> = fk_idx
                .iter()
                .map(|&c| t.columns[c].get(i).as_i64())
                .collect();
            fact.insert(key, FactEntry { masks, fks });
        }
        let mut dims = Vec::with_capacity(spec.dim_tables.len());
        for name in &spec.dim_tables {
            let t = snapshot(name)?;
            let kidx = t.resolve(None, DIM_KEY)?;
            let m_idx: Vec<usize> = (0..nt)
                .map(|ti| t.resolve(None, &mask_column(ti)))
                .collect::<std::result::Result<_, _>>()?;
            let mut map: DimMap = HashMap::with_capacity(t.num_rows());
            for i in 0..t.num_rows() {
                let key = t.columns[kidx]
                    .get(i)
                    .as_i64()
                    .ok_or_else(|| other("dimension message table key must be Int"))?;
                let masks: Vec<u64> = m_idx
                    .iter()
                    .map(|&c| {
                        t.columns[c]
                            .get(i)
                            .as_i64()
                            .map(|v| v as u64)
                            .ok_or_else(|| other("dimension message table mask must be Int"))
                    })
                    .collect::<std::result::Result<_, _>>()?;
                map.insert(key, masks);
            }
            dims.push(map);
        }
        Ok(MessageIndex {
            learning_rate: spec.learning_rate,
            leaf_values: spec.leaf_values.clone(),
            fact,
            dims,
        })
    }

    /// Number of fact keys this index can score.
    pub fn num_keys(&self) -> usize {
        self.fact.len()
    }

    /// Score one key. `(false, 0.0)` means the key is absent from the
    /// fact table or its joined tuple is absent from `R⋈` (dangling or
    /// NULL foreign key). `start` is the running total to add leaf values
    /// onto — the model's `init_score` locally, `0.0` for a shard
    /// partial.
    pub fn eval(&self, key: i64, start: f64) -> BackendResult<(bool, f64)> {
        let Some(entry) = self.fact.get(&key) else {
            return Ok((false, 0.0));
        };
        let mut dim_masks: Vec<&Vec<u64>> = Vec::with_capacity(self.dims.len());
        for (d, dim) in self.dims.iter().enumerate() {
            match entry.fks[d].and_then(|k| dim.get(&k)) {
                Some(m) => dim_masks.push(m),
                None => return Ok((false, 0.0)),
            }
        }
        // Exact op order of `predict_boosted`: one `+= lr·leaf` per tree.
        let mut score = start;
        for (t, leaves) in self.leaf_values.iter().enumerate() {
            let mut mask = entry.masks[t];
            for dm in &dim_masks {
                mask &= dm[t];
            }
            if mask.count_ones() != 1 {
                return Err(other(format!(
                    "message tables inconsistent for key {key}: tree {t} mask \
                     {mask:#x} selects {} leaves",
                    mask.count_ones()
                )));
            }
            score += self.learning_rate * leaves[mask.trailing_zeros() as usize];
        }
        Ok((true, score))
    }

    /// [`MessageIndex::eval`] over a batch of keys.
    pub fn eval_batch(&self, keys: &[i64], start: f64) -> BackendResult<Vec<(bool, f64)>> {
        keys.iter().map(|&k| self.eval(k, start)).collect()
    }
}

// ---------------------------------------------------------------------------
// The Scorer surface
// ---------------------------------------------------------------------------

/// A trained model deployed for per-key scoring — the single prediction
/// surface of the serving tier.
///
/// `None` in the result means the key's tuple is not part of `R⋈` (the
/// key is unknown, or a foreign key dangles), which the materialized and
/// factorized paths agree on by construction.
pub trait Scorer {
    /// Short human-readable name (reports, benchmarks).
    fn name(&self) -> &str;

    /// Scores for a batch of predict keys.
    fn score_batch(&self, keys: &[i64]) -> Result<Vec<Option<f64>>>;
}

/// The materialized baseline: evaluate the model once over `R⋈` (the
/// join this whole crate exists to avoid) and answer lookups from the
/// resulting per-key dictionary. Exists as the oracle the factorized
/// path is asserted bit-identical against.
pub struct JoinScorer {
    scores: HashMap<i64, f64>,
}

impl JoinScorer {
    /// Materialize the join with `key_column` attached, score every row
    /// with the exact `predict_boosted` loop, and index by key.
    pub fn compile(set: &Dataset, model: &GbmModel, key_column: &str) -> Result<JoinScorer> {
        let g = &set.graph;
        let mut q = features_query(set);
        q.items.push(joinboost_sql::ast::SelectItem::aliased(
            joinboost_sql::ast::Expr::qcol(g.name(set.target_rel()), key_column.to_string()),
            "jb_serve_key",
        ));
        let t = set
            .db
            .query(&q.to_string())
            .map_err(|e| TrainError::Engine(format!("{e} in: {q}")))?;
        let scores = predict_boosted(&model.trees, model.init_score, model.learning_rate, &t);
        let kidx = t.resolve(None, "jb_serve_key").map_err(TrainError::from)?;
        let mut map = HashMap::with_capacity(t.num_rows());
        for (i, s) in scores.into_iter().enumerate() {
            let k = t.columns[kidx].get(i).as_i64().ok_or_else(|| {
                TrainError::Invalid(format!("predict key {key_column} must be a non-NULL Int"))
            })?;
            if map.insert(k, s).is_some() {
                return Err(TrainError::Invalid(format!(
                    "predict key {key_column} is not unique in the join: {k} appears twice"
                )));
            }
        }
        Ok(JoinScorer { scores: map })
    }
}

impl Scorer for JoinScorer {
    fn name(&self) -> &str {
        "join"
    }

    fn score_batch(&self, keys: &[i64]) -> Result<Vec<Option<f64>>> {
        Ok(keys.iter().map(|k| self.scores.get(k).copied()).collect())
    }
}

/// The factorized path: message tables deployed on the dataset's backend
/// (partitioned fact + replicated dimensions), scored through
/// [`SqlBackend::predict_batch`] — k dictionary lookups and `⊕`-adds per
/// key, never a join.
pub struct FactorizedScorer<'a> {
    db: &'a dyn SqlBackend,
    spec: ScorerSpec,
}

impl<'a> FactorizedScorer<'a> {
    /// Compile `model` into message tables on the dataset's backend. The
    /// tables are registered as dataset temp tables, so they are dropped
    /// with the dataset.
    pub fn compile(
        set: &Dataset<'a>,
        model: &GbmModel,
        key_column: &str,
    ) -> Result<FactorizedScorer<'a>> {
        let spec = compile_messages(set.db, &set.graph, model, key_column, &mut |hint| {
            set.fresh_table(hint)
        })
        .map_err(TrainError::from)?;
        Ok(FactorizedScorer { db: set.db, spec })
    }

    /// Wrap an already-compiled spec whose tables live on `db`.
    pub fn from_spec(db: &'a dyn SqlBackend, spec: ScorerSpec) -> FactorizedScorer<'a> {
        FactorizedScorer { db, spec }
    }

    /// The deployable spec (ship it to remote scorers over the wire).
    pub fn spec(&self) -> &ScorerSpec {
        &self.spec
    }
}

impl Scorer for FactorizedScorer<'_> {
    fn name(&self) -> &str {
        "factorized"
    }

    fn score_batch(&self, keys: &[i64]) -> Result<Vec<Option<f64>>> {
        let partials = self
            .db
            .predict_batch(&self.spec, keys)
            .map_err(TrainError::from)?;
        Ok(partials
            .into_iter()
            .map(|(found, s)| found.then_some(s))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TrainParams;
    use crate::train_gbm;
    use joinboost_engine::Database;
    use joinboost_graph::JoinGraph;

    fn star_db() -> (Database, JoinGraph) {
        let db = Database::in_memory();
        db.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int((0..64).collect())),
                ("d_id", Column::int((0..64).map(|i| i % 7).collect())),
                (
                    "y",
                    Column::float((0..64).map(|i| ((i * 5) % 16) as f64 / 8.0).collect()),
                ),
            ]),
        )
        .unwrap();
        db.create_table(
            "dim",
            Table::from_columns(vec![
                // Key 6 is missing: fact rows pointing at it drop from R⋈.
                ("d_id", Column::int(vec![0, 1, 2, 3, 4, 5])),
                ("g", Column::int(vec![3, 1, 4, 1, 5, 9])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("fact", &[]).unwrap();
        g.add_relation("dim", &["g"]).unwrap();
        g.add_edge("fact", "dim", &["d_id"]).unwrap();
        (db, g)
    }

    #[test]
    fn factorized_matches_join_scorer_bit_for_bit() {
        let (db, g) = star_db();
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let params = TrainParams {
            num_iterations: 3,
            learning_rate: 0.5,
            leaf_quantization: (2.0f64).powi(-10),
            ..Default::default()
        };
        let model = train_gbm(&set, &params).unwrap();
        let join = JoinScorer::compile(&set, &model, "k").unwrap();
        let fac = FactorizedScorer::compile(&set, &model, "k").unwrap();
        let keys: Vec<i64> = (0..70).collect(); // includes unknown keys
        let a = join.score_batch(&keys).unwrap();
        let b = fac.score_batch(&keys).unwrap();
        let mut dropped = 0;
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "key {i}");
                }
                (None, None) => dropped += 1,
                _ => panic!("key {i}: join={x:?} factorized={y:?}"),
            }
        }
        // Keys ≥ 64 and the d_id=6 rows are absent from the join.
        assert!(dropped > 6, "expected dangling keys, got {dropped}");
    }

    #[test]
    fn compile_rejects_duplicate_predict_keys() {
        let (db, g) = star_db();
        db.execute("UPDATE fact SET k = 0").unwrap();
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let model = train_gbm(
            &set,
            &TrainParams {
                num_iterations: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let err = match FactorizedScorer::compile(&set, &model, "k") {
            Ok(_) => panic!("duplicate keys must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("not unique"), "{err}");
    }
}
