//! Tree model structures (the objects `train()` returns).

use joinboost_engine::Datum;
use serde::{Deserialize, Serialize};

/// A split value: numeric threshold or categorical constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SplitCondition {
    /// `feature <= v` goes left, `feature > v` goes right.
    LtEq(f64),
    /// `feature = v` goes left, `feature <> v` goes right (numeric
    /// categorical codes — strings are dictionary-encoded upstream).
    EqNum(f64),
    /// `feature = v` for string categoricals.
    EqStr(String),
}

/// A decision tree split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Name of the feature column being split on.
    pub feature: String,
    /// The relation holding the feature (for predicate pushdown).
    pub relation: String,
    /// The split condition (left-branch test).
    pub cond: SplitCondition,
    /// Where rows with a missing feature value go (Appendix D.2).
    pub default_left: bool,
}

impl Split {
    /// Does a feature value satisfy the (left-branch) condition?
    pub fn goes_left(&self, value: Option<&Datum>) -> bool {
        match value {
            None | Some(Datum::Null) => self.default_left,
            Some(v) => match &self.cond {
                SplitCondition::LtEq(t) => v.as_f64().is_some_and(|x| x <= *t),
                SplitCondition::EqNum(t) => v.as_f64().is_some_and(|x| x == *t),
                SplitCondition::EqStr(s) => v.as_str().is_some_and(|x| x == s),
            },
        }
    }

    /// Render as a SQL predicate string (for display / signatures).
    pub fn to_sql(&self, negated: bool) -> String {
        match (&self.cond, negated) {
            (SplitCondition::LtEq(v), false) => format!("{} <= {v}", self.feature),
            (SplitCondition::LtEq(v), true) => format!("{} > {v}", self.feature),
            (SplitCondition::EqNum(v), false) => format!("{} = {v}", self.feature),
            (SplitCondition::EqNum(v), true) => format!("{} <> {v}", self.feature),
            (SplitCondition::EqStr(v), false) => format!("{} = '{v}'", self.feature),
            (SplitCondition::EqStr(v), true) => format!("{} <> '{v}'", self.feature),
        }
    }
}

/// One node of a trained tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeNode {
    /// `None` for leaves.
    pub split: Option<Split>,
    /// Left child index (into [`Tree::nodes`]); meaningful only when
    /// `split` is `Some`.
    pub left: usize,
    /// Right child index; meaningful only when `split` is `Some`.
    pub right: usize,
    /// Leaf prediction value (defined on leaves; internal nodes carry the
    /// value they would predict if pruned here).
    pub value: f64,
    /// Weighted row count (C for variance trees, H for gradient trees).
    pub weight: f64,
    /// Depth of this node (root = 0).
    pub depth: usize,
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Tree {
    /// Node 0 is the root.
    pub nodes: Vec<TreeNode>,
}

/// Read access to one example's feature values during prediction.
pub trait FeatureRow {
    /// The example's value for the named feature (`None` = missing).
    fn feature(&self, name: &str) -> Option<Datum>;
}

impl FeatureRow for std::collections::HashMap<String, Datum> {
    fn feature(&self, name: &str) -> Option<Datum> {
        self.get(name).cloned()
    }
}

impl Tree {
    /// A tree with one leaf (the constant predictor).
    pub fn single_leaf(value: f64, weight: f64) -> Tree {
        Tree {
            nodes: vec![TreeNode {
                split: None,
                left: 0,
                right: 0,
                value,
                weight,
                depth: 0,
            }],
        }
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.split.is_none()).count()
    }

    /// Depth of the deepest node (a single leaf has depth 0).
    pub fn max_depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Score one example: the single entry point for applying a tree to
    /// a feature row (alias of [`Tree::predict`], the name the ensemble
    /// `score` methods build on).
    pub fn score(&self, row: &dyn FeatureRow) -> f64 {
        self.predict(row)
    }

    /// Predict the raw value for one example.
    pub fn predict(&self, row: &dyn FeatureRow) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut i = 0;
        loop {
            let node = &self.nodes[i];
            match &node.split {
                None => return node.value,
                Some(split) => {
                    let v = row.feature(&split.feature);
                    i = if split.goes_left(v.as_ref()) {
                        node.left
                    } else {
                        node.right
                    };
                }
            }
        }
    }

    /// Leaves in order, each with the conjunction of predicates along its
    /// path (used to build residual-update statements).
    pub fn leaves_with_paths(&self) -> Vec<(usize, Vec<(Split, bool)>)> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack: Vec<(usize, Vec<(Split, bool)>)> = vec![(0, Vec::new())];
        while let Some((i, path)) = stack.pop() {
            let node = &self.nodes[i];
            match &node.split {
                None => out.push((i, path)),
                Some(split) => {
                    let mut left_path = path.clone();
                    left_path.push((split.clone(), false));
                    let mut right_path = path;
                    right_path.push((split.clone(), true));
                    stack.push((node.right, right_path));
                    stack.push((node.left, left_path));
                }
            }
        }
        out
    }

    /// Human-readable dump (similar to LightGBM's `dump_model` text form).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_node(0, 0, &mut out);
        out
    }

    fn dump_node(&self, i: usize, indent: usize, out: &mut String) {
        if self.nodes.is_empty() {
            return;
        }
        let node = &self.nodes[i];
        let pad = "  ".repeat(indent);
        match &node.split {
            None => out.push_str(&format!(
                "{pad}leaf: value={:.6} weight={}\n",
                node.value, node.weight
            )),
            Some(s) => {
                out.push_str(&format!("{pad}if {} [{}]\n", s.to_sql(false), s.relation));
                self.dump_node(node.left, indent + 1, out);
                out.push_str(&format!("{pad}else\n"));
                self.dump_node(node.right, indent + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn two_level_tree() -> Tree {
        // if d <= 1 → 2.5 else (if c = 1 → 1.5 else 2.0)  (paper Fig 2a)
        Tree {
            nodes: vec![
                TreeNode {
                    split: Some(Split {
                        feature: "d".into(),
                        relation: "t".into(),
                        cond: SplitCondition::LtEq(1.0),
                        default_left: false,
                    }),
                    left: 1,
                    right: 2,
                    value: 2.0,
                    weight: 8.0,
                    depth: 0,
                },
                TreeNode {
                    split: None,
                    left: 0,
                    right: 0,
                    value: 2.5,
                    weight: 2.0,
                    depth: 1,
                },
                TreeNode {
                    split: Some(Split {
                        feature: "c".into(),
                        relation: "s".into(),
                        cond: SplitCondition::LtEq(1.0),
                        default_left: false,
                    }),
                    left: 3,
                    right: 4,
                    value: 1.75,
                    weight: 6.0,
                    depth: 1,
                },
                TreeNode {
                    split: None,
                    left: 0,
                    right: 0,
                    value: 1.5,
                    weight: 3.0,
                    depth: 2,
                },
                TreeNode {
                    split: None,
                    left: 0,
                    right: 0,
                    value: 2.0,
                    weight: 3.0,
                    depth: 2,
                },
            ],
        }
    }

    fn row(pairs: &[(&str, f64)]) -> HashMap<String, Datum> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Datum::Float(*v)))
            .collect()
    }

    #[test]
    fn predicts_by_path() {
        let t = two_level_tree();
        assert_eq!(t.predict(&row(&[("d", 1.0), ("c", 2.0)])), 2.5);
        assert_eq!(t.predict(&row(&[("d", 2.0), ("c", 1.0)])), 1.5);
        assert_eq!(t.predict(&row(&[("d", 2.0), ("c", 2.0)])), 2.0);
    }

    #[test]
    fn missing_values_follow_default() {
        let t = two_level_tree();
        // d missing, default_left = false → right subtree; c=1 → 1.5.
        assert_eq!(t.predict(&row(&[("c", 1.0)])), 1.5);
    }

    #[test]
    fn leaf_paths_are_mutually_exclusive_and_exhaustive() {
        let t = two_level_tree();
        let leaves = t.leaves_with_paths();
        assert_eq!(leaves.len(), 3);
        // Every leaf has the path length equal to its depth.
        for (i, path) in &leaves {
            assert_eq!(path.len(), t.nodes[*i].depth);
        }
        // The first leaf (d <= 1) has a single non-negated predicate.
        let (_, p0) = leaves.iter().find(|(i, _)| *i == 1).unwrap().clone();
        assert_eq!(p0.len(), 1);
        assert!(!p0[0].1);
    }

    #[test]
    fn counts_and_dump() {
        let t = two_level_tree();
        assert_eq!(t.num_leaves(), 3);
        assert_eq!(t.max_depth(), 2);
        let d = t.dump();
        assert!(d.contains("if d <= 1"));
        assert!(d.contains("leaf: value=2.500000"));
    }

    #[test]
    fn split_sql_rendering() {
        let s = Split {
            feature: "f".into(),
            relation: "r".into(),
            cond: SplitCondition::EqStr("x".into()),
            default_left: false,
        };
        assert_eq!(s.to_sql(false), "f = 'x'");
        assert_eq!(s.to_sql(true), "f <> 'x'");
    }
}
