//! Factorized gradient boosting (Section 4, 5.3, 5.4).
//!
//! Each iteration trains a tree on the residuals (or gradients) of the
//! preceding trees, which requires updating `Y` in the *non-materialized*
//! join result. On snowflake schemas the fact table is 1-1 with `R⋈`, so
//! residuals live in an annotation column of a lifted fact table and are
//! updated by one of five methods ([`crate::params::UpdateMethod`]). On
//! galaxy schemas individual updates are impossible (view-update
//! side-effects), but the variance semi-ring's
//! addition-to-multiplication-preserving lift lets us update the
//! *aggregEates* by `⊗`-ing the tree-cluster fact's annotation with
//! `lift(−p)` — Clustered Predicate Trees keep the join graph acyclic.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use joinboost_graph::cluster::clusters;
use joinboost_graph::RelId;
use joinboost_semiring::Objective;
use joinboost_sql::ast::Expr;

use crate::dataset::Dataset;
use crate::error::{Result, TrainError};
use crate::messages::Factorizer;
use crate::params::{TrainParams, UpdateMethod};
use crate::predict;
use crate::sqlgen::{gradient_sql, hessian_sql, RingKind};
use crate::trainer::{TrainStats, TreeGrower};
use crate::tree::{Split, Tree};

/// A trained gradient-boosting model.
#[derive(Debug, Clone)]
pub struct GbmModel {
    /// Loss function the model was trained with.
    pub objective: Objective,
    /// Constant initial prediction (raw score).
    pub init_score: f64,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// The boosted trees, in training order.
    pub trees: Vec<Tree>,
    /// Wall-clock spent finding splits (messages + split queries).
    pub train_time: Duration,
    /// Wall-clock spent on residual/gradient updates.
    pub update_time: Duration,
    /// Query counters and timings accumulated over all iterations.
    pub stats: TrainStats,
}

impl GbmModel {
    /// Raw additive score for a materialized feature table.
    pub fn predict_raw(&self, table: &joinboost_engine::Table) -> Vec<f64> {
        predict::predict_boosted(&self.trees, self.init_score, self.learning_rate, table)
    }

    /// Transformed predictions (identity / exp / sigmoid per objective).
    pub fn predict(&self, table: &joinboost_engine::Table) -> Vec<f64> {
        self.predict_raw(table)
            .into_iter()
            .map(|r| self.objective.transform(r))
            .collect()
    }

    /// Raw additive score for one feature row — `init + lr · Σ tree(x)`
    /// in the exact operation order of the batch path, so single-row and
    /// batch scoring are bit-identical.
    pub fn score(&self, row: &dyn crate::tree::FeatureRow) -> f64 {
        let mut s = self.init_score;
        for tree in &self.trees {
            s += self.learning_rate * tree.score(row);
        }
        s
    }
}

/// Does the objective have a constant unit Hessian (so the `h` component
/// never needs materializing — it equals the count)?
fn unit_hessian(obj: &Objective) -> bool {
    matches!(
        obj,
        Objective::SquaredError
            | Objective::AbsoluteError
            | Objective::Huber { .. }
            | Objective::Quantile { .. }
            | Objective::Mape
    )
}

/// Train a gradient boosting model.
pub fn train_gbm(set: &Dataset, params: &TrainParams) -> Result<GbmModel> {
    train_gbm_cb(set, params, |_, _| true)
}

/// Train with a per-iteration callback `(iteration, model-so-far)` —
/// used by the experiment harness to record time/accuracy curves, and by
/// the serving tier's job workers to observe progress. Returning `false`
/// stops training early: the model boosted so far comes back as `Ok`
/// (how job cancellation interrupts a run without poisoning anything).
pub fn train_gbm_cb(
    set: &Dataset,
    params: &TrainParams,
    mut callback: impl FnMut(usize, &GbmModel) -> bool,
) -> Result<GbmModel> {
    params.validate()?;
    if params.use_cuboid {
        return train_cuboid(set, params, &mut callback);
    }
    match set.graph.snowflake_fact() {
        Some(fact) => train_snowflake(set, params, fact, &[], &mut callback),
        None => train_galaxy(set, params, &[], &mut callback),
    }
}

/// Resume an interrupted training run from a partial forest (the
/// serving tier's crash-recovery path: a job persists its trees every k
/// iterations and warm-starts here after a restart).
///
/// The base tables must hold the same data the original run trained on
/// (a recovered WAL-backed engine guarantees this). The initial score is
/// recomputed — deterministic on identical data — the fact is re-lifted,
/// and each stored tree's residual/gradient update is *replayed*: the
/// replayed statements are byte-for-byte the statements the original run
/// executed, in the same order, so the annotation columns reach the
/// identical bit pattern and every subsequent split decision matches a
/// run that was never interrupted. Under the dyadic `leaf_quantization`
/// recipe the finished model is therefore `to_bits()`-identical to an
/// uncrashed reference. Tree leaf values round-trip exactly through the
/// wire codec (f64 by bit pattern), so a deserialized forest resumes as
/// faithfully as a live one.
///
/// The callback only fires for *newly trained* iterations. Not supported
/// with the cuboid optimization (`use_cuboid`), whose trees are relabeled
/// to user-facing relations after their update statements run.
pub fn train_gbm_resume(
    set: &Dataset,
    params: &TrainParams,
    prior: &[Tree],
    mut callback: impl FnMut(usize, &GbmModel) -> bool,
) -> Result<GbmModel> {
    params.validate()?;
    if params.use_cuboid {
        return Err(TrainError::Invalid(
            "resume is not supported with the cuboid optimization".into(),
        ));
    }
    if prior.len() > params.num_iterations {
        return Err(TrainError::Invalid(format!(
            "partial forest has {} trees but the run only asks for {} iterations",
            prior.len(),
            params.num_iterations
        )));
    }
    match set.graph.snowflake_fact() {
        Some(fact) => train_snowflake(set, params, fact, prior, &mut callback),
        None => train_galaxy(set, params, prior, &mut callback),
    }
}

// ---------------------------------------------------------------------------
// Histogram cuboid (Appendix D.3, Figure 20)
// ---------------------------------------------------------------------------

/// Train over the full-dimensional data cuboid: `GROUP BY` all (binned)
/// features once, producing a table of per-cell `(count, sum)` semi-ring
/// annotations that can be orders of magnitude smaller than `R⋈`; all
/// training queries then run against the cuboid.
fn train_cuboid(
    set: &Dataset,
    params: &TrainParams,
    callback: &mut impl FnMut(usize, &GbmModel) -> bool,
) -> Result<GbmModel> {
    use joinboost_sql::ast::{Query, SelectItem};
    if params.objective != Objective::SquaredError {
        return Err(TrainError::Invalid(
            "the cuboid optimization supports the rmse objective".into(),
        ));
    }
    // Bin ranges per feature (global MIN/MAX, like LightGBM's binning).
    let mut group_by = Vec::new();
    let mut items: Vec<SelectItem> = Vec::new();
    for (feat, rel) in set.features() {
        let table = set.graph.name(rel);
        let sql = format!("SELECT MIN({feat}) AS lo, MAX({feat}) AS hi FROM {table}");
        let t = set
            .db
            .query(&sql)
            .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
        let lo = t.scalar_f64("lo").unwrap_or(0.0);
        let hi = t.scalar_f64("hi").unwrap_or(0.0);
        let width = ((hi - lo) / params.max_bins as f64).max(f64::MIN_POSITIVE);
        let bin = Expr::func(
            "FLOOR",
            vec![Expr::div(
                Expr::sub(Expr::col(feat.clone()), Expr::float(lo)),
                Expr::float(width),
            )],
        );
        group_by.push(bin);
        // Representative value: the max raw value inside the cell.
        items.push(SelectItem::aliased(
            Expr::func("MAX", vec![Expr::col(feat.clone())]),
            feat.clone(),
        ));
    }
    items.push(SelectItem::aliased(Expr::count_star(), "jb_c"));
    items.push(SelectItem::aliased(
        Expr::sum(Expr::col(set.target_column.clone())),
        "jb_s",
    ));
    // Join shape reused from feature materialization, but aggregated.
    let base = crate::predict::features_query(set);
    let cuboid_q = Query {
        items,
        from: base.from,
        joins: base.joins,
        group_by,
        ..Default::default()
    };
    let cuboid = set.fresh_table("cuboid");
    set.db
        .execute(&format!("CREATE TABLE {cuboid} AS {cuboid_q}"))
        .map_err(|e| TrainError::Engine(format!("{e} in: {cuboid_q}")))?;

    // Single-relation dataset over the cuboid.
    let mut g1 = joinboost_graph::JoinGraph::new();
    let feats: Vec<String> = set.features().into_iter().map(|(f, _)| f).collect();
    let feat_refs: Vec<&str> = feats.iter().map(String::as_str).collect();
    g1.add_relation(&cuboid, &feat_refs)?;
    let sub = Dataset::new(set.db, g1, &cuboid, "jb_s")?;

    // Initial score; fold it into the residual sums (scaled by the cell
    // counts: Σ(y − init) = s − init·c).
    let totals = set
        .db
        .query(&format!(
            "SELECT SUM(jb_c) AS c, SUM(jb_s) AS s FROM {cuboid}"
        ))
        .map_err(TrainError::from)?;
    let c_all = totals.scalar_f64("c").unwrap_or(0.0);
    let s_all = totals.scalar_f64("s").unwrap_or(0.0);
    if c_all == 0.0 {
        return Err(TrainError::Invalid("empty training data".into()));
    }
    let init = params.snap_leaf(s_all / c_all);
    set.db
        .execute(&format!(
            "UPDATE {cuboid} SET jb_s = jb_s - {} * jb_c",
            Expr::float(init)
        ))
        .map_err(TrainError::from)?;

    let mut inner_params = params.clone();
    inner_params.use_cuboid = false;
    inner_params.max_bins = 0; // features are already binned
    let mut fx = Factorizer::new(&sub, RingKind::Variance);
    fx.set_annotation(0, vec![Expr::col("jb_c"), Expr::col("jb_s")]);
    let columns = set.db.column_names(&cuboid)?;
    let updater = Updater {
        method: UpdateMethod::CreateTable,
        table: cuboid.clone(),
        columns,
    };
    let mut model = GbmModel {
        objective: params.objective,
        init_score: init,
        learning_rate: params.learning_rate,
        trees: Vec::new(),
        train_time: Duration::ZERO,
        update_time: Duration::ZERO,
        stats: TrainStats::default(),
    };
    for iter in 0..params.num_iterations {
        let t0 = Instant::now();
        let feats1: Vec<(String, RelId)> = feats.iter().map(|f| (f.clone(), 0usize)).collect();
        let mut grower = TreeGrower::new(&mut fx, &inner_params, feats1);
        let mut tree = grower.grow()?;
        model.stats.merge(&grower.stats);
        model.train_time += t0.elapsed();
        let t1 = Instant::now();
        // Residual update scaled by the cell count:
        // (c, s) ⊗ lift(−lr·p) = (c, s − lr·p·c).
        let case_expr = leaf_case_updates_scaled(
            &sub,
            0,
            &tree,
            params.learning_rate,
            Expr::col("jb_s"),
            Some(Expr::col("jb_c")),
            true,
        )?;
        updater.apply(&sub, &[("jb_s".into(), case_expr)], &tree, 0, params)?;
        fx.bump_epoch(0);
        model.update_time += t1.elapsed();
        // Relabel splits with the user-facing relation names for
        // prediction over raw features.
        for node in &mut tree.nodes {
            if let Some(s) = &mut node.split {
                if let Some(rel) = set.graph.relation_of_feature(&s.feature) {
                    s.relation = set.graph.name(rel).to_string();
                }
            }
        }
        model.trees.push(tree);
        if !callback(iter, &model) {
            break;
        }
    }
    Ok(model)
}

// ---------------------------------------------------------------------------
// Snowflake schemas (Section 4.1)
// ---------------------------------------------------------------------------

fn train_snowflake(
    set: &Dataset,
    params: &TrainParams,
    fact: RelId,
    prior: &[Tree],
    callback: &mut impl FnMut(usize, &GbmModel) -> bool,
) -> Result<GbmModel> {
    check_update_capability(set, params)?;
    let obj = params.objective;
    let use_variance = obj == Objective::SquaredError;
    let y_expr = target_expr_on_fact(set, fact)?;

    // Initial score.
    let init = if use_variance {
        // Mean over R⋈ via one factorized aggregate.
        let mut fx0 = Factorizer::new(set, RingKind::Variance);
        fx0.set_annotation(
            set.target_rel(),
            vec![Expr::int(1), Expr::col(set.target_column.clone())],
        );
        let (c, s) = fx0.totals(set.target_rel(), &crate::messages::NodeContext::root())?;
        if c == 0.0 {
            return Err(TrainError::Invalid("empty training data".into()));
        }
        s / c
    } else {
        // Median/percentile/log-mean need the y values; the fact table is
        // 1-1 with R⋈ so we can read them from the (joined) fact.
        let ys = fetch_target_values(set, fact)?;
        obj.init_score(&ys)
    };
    let init = params.snap_leaf(init);

    // Lift the fact table.
    let lifted = set.fresh_table("fact");
    let mut extras: Vec<(String, Expr)> = Vec::new();
    let ring = if use_variance {
        extras.push(("jb_s".into(), Expr::sub(y_expr.clone(), Expr::float(init))));
        RingKind::Variance
    } else {
        extras.push(("jb_y".into(), y_expr.clone()));
        extras.push(("jb_p".into(), Expr::float(init)));
        extras.push((
            "jb_g".into(),
            gradient_sql(&obj, y_expr.clone(), Expr::float(init)),
        ));
        if !unit_hessian(&obj) {
            extras.push((
                "jb_h".into(),
                hessian_sql(&obj, y_expr.clone(), Expr::float(init)),
            ));
        }
        RingKind::Gradient
    };
    let external = params.update_method == UpdateMethod::Interop;
    let with_rid = params.update_method == UpdateMethod::Naive;
    create_lifted_fact(set, fact, &lifted, &extras, with_rid, external)?;

    let mut fx = Factorizer::new(set, ring);
    fx.set_table(fact, lifted.clone());
    let annotation = if use_variance {
        vec![Expr::int(1), Expr::col("jb_s")]
    } else if unit_hessian(&obj) {
        vec![Expr::int(1), Expr::col("jb_g")]
    } else {
        vec![Expr::col("jb_h"), Expr::col("jb_g")]
    };
    fx.set_annotation(fact, annotation);

    let columns = set.db.column_names(&lifted)?;
    let updater = Updater {
        method: params.update_method,
        table: lifted.clone(),
        columns,
    };

    let mut model = GbmModel {
        objective: obj,
        init_score: init,
        learning_rate: params.learning_rate,
        trees: Vec::new(),
        train_time: Duration::ZERO,
        update_time: Duration::ZERO,
        stats: TrainStats::default(),
    };
    // Warm start (resume): replay each stored tree's update statements
    // against the freshly lifted fact. These are byte-for-byte the
    // statements the original run executed, in order, so the annotation
    // columns land on the identical bit pattern and the first new tree
    // grows exactly as iteration `prior.len()` of an uninterrupted run.
    for tree in prior {
        if use_variance {
            let leaf_cases = leaf_case_updates(
                set,
                fact,
                tree,
                params.learning_rate,
                Expr::col("jb_s"),
                true,
            )?;
            updater.apply(set, &[("jb_s".into(), leaf_cases)], tree, fact, params)?;
        } else {
            let p_new = leaf_case_updates(
                set,
                fact,
                tree,
                params.learning_rate,
                Expr::col("jb_p"),
                false,
            )?;
            let mut assigns = vec![("jb_p".to_string(), p_new.clone())];
            assigns.push((
                "jb_g".into(),
                gradient_sql(&obj, Expr::col("jb_y"), p_new.clone()),
            ));
            if !unit_hessian(&obj) {
                assigns.push(("jb_h".into(), hessian_sql(&obj, Expr::col("jb_y"), p_new)));
            }
            updater.apply(set, &assigns, tree, fact, params)?;
        }
        fx.bump_epoch(fact);
        model.trees.push(tree.clone());
    }
    for iter in prior.len()..params.num_iterations {
        let t0 = Instant::now();
        let mut grower = TreeGrower::new(&mut fx, params, set.features());
        let mut tree = grower.grow()?;
        model.stats.merge(&grower.stats);
        // Leaf renewal (Table 3): percentile-style objectives re-fit each
        // leaf's prediction on the actual residuals (LightGBM's
        // RenewTreeOutput); gradients only shape the tree structure.
        if let Some(q) = renewal_percentile(&obj) {
            renew_leaves(set, fact, &lifted, &mut tree, q, params)?;
        }
        model.train_time += t0.elapsed();

        // Residual / gradient update.
        let t1 = Instant::now();
        if use_variance {
            let leaf_cases = leaf_case_updates(
                set,
                fact,
                &tree,
                params.learning_rate,
                Expr::col("jb_s"),
                true,
            )?;
            updater.apply(set, &[("jb_s".into(), leaf_cases)], &tree, fact, params)?;
        } else {
            let p_new = leaf_case_updates(
                set,
                fact,
                &tree,
                params.learning_rate,
                Expr::col("jb_p"),
                false,
            )?;
            let mut assigns = vec![("jb_p".to_string(), p_new.clone())];
            assigns.push((
                "jb_g".into(),
                gradient_sql(&obj, Expr::col("jb_y"), p_new.clone()),
            ));
            if !unit_hessian(&obj) {
                assigns.push(("jb_h".into(), hessian_sql(&obj, Expr::col("jb_y"), p_new)));
            }
            updater.apply(set, &assigns, &tree, fact, params)?;
        }
        fx.bump_epoch(fact);
        model.update_time += t1.elapsed();

        model.trees.push(tree);
        if !callback(iter, &model) {
            break;
        }
    }
    Ok(model)
}

/// Reject update methods the backend cannot execute, using its declared
/// capability flags rather than a failing trial statement.
fn check_update_capability(set: &Dataset, params: &TrainParams) -> Result<()> {
    let caps = set.db.capabilities();
    match params.update_method {
        UpdateMethod::ColumnSwap if !caps.column_swap => Err(TrainError::Invalid(format!(
            "backend {} does not support SWAP COLUMN (UpdateMethod::ColumnSwap)",
            set.db.name()
        ))),
        UpdateMethod::Interop if !caps.external_interop => Err(TrainError::Invalid(format!(
            "backend {} does not support external dataframe storage (UpdateMethod::Interop)",
            set.db.name()
        ))),
        _ => Ok(()),
    }
}

/// Objectives whose optimal leaf is a residual percentile (Table 3's
/// `median(E)` / `pctl_α(E)` prediction rules).
fn renewal_percentile(obj: &Objective) -> Option<f64> {
    match obj {
        Objective::AbsoluteError | Objective::Mape => Some(0.5),
        Objective::Quantile { alpha } => Some(*alpha),
        _ => None,
    }
}

/// Re-fit each leaf's value to the given percentile of its residuals
/// `y − p`, read from the lifted fact table with the leaf's semi-join
/// predicate.
fn renew_leaves(
    set: &Dataset,
    fact: RelId,
    lifted: &str,
    tree: &mut Tree,
    q: f64,
    params: &TrainParams,
) -> Result<()> {
    for (leaf, path) in tree.leaves_with_paths() {
        let pred = leaf_predicate_on_fact(set, fact, &path)?;
        let where_clause = pred.map(|p| format!(" WHERE {p}")).unwrap_or_default();
        let sql = format!("SELECT jb_y - jb_p AS e FROM {lifted}{where_clause}");
        let t = set
            .db
            .query(&sql)
            .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
        let mut resid = t
            .column(None, "e")
            .map_err(TrainError::from)?
            .to_f64_vec()
            .map_err(TrainError::from)?;
        resid.retain(|v| !v.is_nan());
        if resid.is_empty() {
            continue;
        }
        resid.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pos = (q.clamp(0.0, 1.0) * (resid.len() - 1) as f64).round() as usize;
        tree.nodes[leaf].value = params.snap_leaf(resid[pos]);
    }
    Ok(())
}

/// If the target lives in a dimension, it must be projected onto the fact
/// during lifting; within the lifting query the target column is simply in
/// scope after the joins.
fn target_expr_on_fact(set: &Dataset, _fact: RelId) -> Result<Expr> {
    Ok(Expr::col(set.target_column.clone()))
}

/// `CREATE TABLE lifted AS SELECT fact.*, <extras> FROM fact [JOIN path to
/// the target relation]`, keeping the 1-1 correspondence with `R⋈`.
fn create_lifted_fact(
    set: &Dataset,
    fact: RelId,
    lifted: &str,
    extras: &[(String, Expr)],
    with_rid: bool,
    external: bool,
) -> Result<()> {
    use joinboost_sql::ast::{Join, JoinKind, Query, SelectItem, TableRef};
    let g = &set.graph;
    let fact_name = g.name(fact);
    let fact_cols = set.db.column_names(fact_name)?;
    let mut items: Vec<SelectItem> = fact_cols
        .iter()
        .map(|c| SelectItem::new(Expr::qcol(fact_name, c.clone())))
        .collect();
    for (alias, e) in extras {
        items.push(SelectItem::aliased(e.clone(), alias.clone()));
    }
    let mut q = Query {
        items,
        from: Some(TableRef::named(fact_name)),
        ..Default::default()
    };
    if set.target_rel() != fact {
        // Join along the path to the target relation (left outer joins keep
        // the 1-1 shape even with missing keys).
        let path = g
            .path(fact, set.target_rel())
            .ok_or_else(|| TrainError::Graph("no path from fact to target".into()))?;
        for w in path.windows(2) {
            q.joins.push(Join {
                kind: JoinKind::Inner,
                table: TableRef::named(g.name(w[1])),
                using: g.join_keys(w[0], w[1]).expect("edge").to_vec(),
                on: None,
            });
        }
    }
    if external || with_rid {
        // Build programmatically: run the query, add a row id if needed,
        // then register as internal or external storage.
        let mut t = set
            .db
            .query(&q.to_string())
            .map_err(|e| TrainError::Engine(format!("{e} in: {q}")))?;
        if with_rid {
            let n = t.num_rows();
            t.push_column(
                joinboost_engine::table::ColumnMeta::new("jb_rid"),
                joinboost_engine::Column::int((0..n as i64).collect()),
            );
        }
        if external {
            set.db.register_external(lifted, &t)?;
        } else {
            set.db.create_table(lifted, t)?;
        }
    } else {
        set.db
            .execute(&format!("CREATE TABLE {lifted} AS {q}"))
            .map_err(|e| TrainError::Engine(format!("{e} in CREATE {lifted}: {q}")))?;
    }
    Ok(())
}

/// Read the target values joined onto the fact table (1-1 with `R⋈`).
fn fetch_target_values(set: &Dataset, fact: RelId) -> Result<Vec<f64>> {
    use joinboost_sql::ast::{Join, JoinKind, Query, SelectItem, TableRef};
    let g = &set.graph;
    let mut q = Query {
        items: vec![SelectItem::aliased(
            Expr::col(set.target_column.clone()),
            "jb_y",
        )],
        from: Some(TableRef::named(g.name(fact))),
        ..Default::default()
    };
    if set.target_rel() != fact {
        let path = g
            .path(fact, set.target_rel())
            .ok_or_else(|| TrainError::Graph("no path from fact to target".into()))?;
        for w in path.windows(2) {
            q.joins.push(Join {
                kind: JoinKind::Inner,
                table: TableRef::named(g.name(w[1])),
                using: g.join_keys(w[0], w[1]).expect("edge").to_vec(),
                on: None,
            });
        }
    }
    let t = set
        .db
        .query(&q.to_string())
        .map_err(|e| TrainError::Engine(e.to_string()))?;
    t.column(None, "jb_y")
        .map_err(TrainError::from)?
        .to_f64_vec()
        .map_err(TrainError::from)
}

/// Translate one leaf's predicate path into a predicate over the fact
/// table: predicates on the fact apply directly; predicates on other
/// relations become (nested) `IN (SELECT key FROM dim WHERE ..)`
/// semi-join filters along the N-to-1 path (Section 4.1).
pub fn leaf_predicate_on_fact(
    set: &Dataset,
    fact: RelId,
    path_preds: &[(Split, bool)],
) -> Result<Option<Expr>> {
    let g = &set.graph;
    // Group predicate expressions per relation.
    let mut by_rel: HashMap<RelId, Vec<Expr>> = HashMap::new();
    for (split, negated) in path_preds {
        let rel = g.rel_id(&split.relation)?;
        by_rel
            .entry(rel)
            .or_default()
            .push(crate::messages::Pred::from_split(split, *negated).expr);
    }
    let mut conjuncts: Vec<Expr> = Vec::new();
    for (rel, exprs) in by_rel {
        let combined = Expr::and_all(exprs).expect("non-empty");
        if rel == fact {
            conjuncts.push(combined);
            continue;
        }
        let path = g
            .path(fact, rel)
            .ok_or_else(|| TrainError::Graph("predicate relation unreachable".into()))?;
        // Build the nested IN from the innermost (predicate) relation out.
        let mut inner = combined;
        for w in path.windows(2).rev() {
            let keys = g.join_keys(w[0], w[1]).expect("edge");
            if keys.len() != 1 {
                return Err(TrainError::Invalid(
                    "semi-join predicate pushdown requires single-column join keys".into(),
                ));
            }
            let key = &keys[0];
            let sub = joinboost_sql::ast::Query {
                items: vec![joinboost_sql::ast::SelectItem::new(Expr::col(key.clone()))],
                from: Some(joinboost_sql::ast::TableRef::named(g.name(w[1]))),
                where_clause: Some(inner),
                ..Default::default()
            };
            inner = Expr::InSubquery {
                expr: Box::new(Expr::col(key.clone())),
                query: Box::new(sub),
                negated: false,
            };
        }
        conjuncts.push(inner);
    }
    Ok(Expr::and_all(conjuncts))
}

/// Build the `CASE WHEN <leaf-1 predicate> THEN base ∓ lr·p₁ ... ELSE
/// base END` expression updating an annotation column for every leaf.
/// `subtract` chooses residual (`s − lr·p`) vs prediction (`p + lr·v`).
fn leaf_case_updates(
    set: &Dataset,
    fact: RelId,
    tree: &Tree,
    learning_rate: f64,
    base: Expr,
    subtract: bool,
) -> Result<Expr> {
    leaf_case_updates_scaled(set, fact, tree, learning_rate, base, None, subtract)
}

/// As [`leaf_case_updates`], with an optional per-row scale factor (the
/// cell count `c` of pre-aggregated annotations: `s − lr·p·c`).
fn leaf_case_updates_scaled(
    set: &Dataset,
    fact: RelId,
    tree: &Tree,
    learning_rate: f64,
    base: Expr,
    scale: Option<Expr>,
    subtract: bool,
) -> Result<Expr> {
    let leaves = tree.leaves_with_paths();
    let mut whens = Vec::new();
    for (leaf, path) in &leaves {
        let delta = learning_rate * tree.nodes[*leaf].value;
        if delta == 0.0 {
            continue;
        }
        let delta_expr = match &scale {
            Some(s) => Expr::mul(Expr::float(delta), s.clone()),
            None => Expr::float(delta),
        };
        let updated = if subtract {
            Expr::sub(base.clone(), delta_expr)
        } else {
            Expr::add(base.clone(), delta_expr)
        };
        match leaf_predicate_on_fact(set, fact, path)? {
            Some(pred) => whens.push((pred, updated)),
            None => {
                // Root-only tree: unconditional update.
                return Ok(updated);
            }
        }
    }
    if whens.is_empty() {
        return Ok(base);
    }
    Ok(Expr::Case {
        whens,
        else_expr: Some(Box::new(base)),
    })
}

/// Executes annotation-column updates with the configured method.
struct Updater {
    method: UpdateMethod,
    table: String,
    columns: Vec<String>,
}

impl Updater {
    /// Apply `assignments` (column → new-value expression over the current
    /// table) using the configured update method.
    fn apply(
        &self,
        set: &Dataset,
        assignments: &[(String, Expr)],
        tree: &Tree,
        fact: RelId,
        params: &TrainParams,
    ) -> Result<()> {
        let db = set.db;
        match self.method {
            UpdateMethod::UpdateInPlace => {
                // The paper's SET variant: per-leaf UPDATE with semi-join
                // predicates for the residual column, full-table UPDATE for
                // derived columns. For simplicity we issue the CASE-typed
                // full-column UPDATE per assignment (same write volume).
                for (col, expr) in assignments {
                    let sql = format!("UPDATE {} SET {col} = {expr}", self.table);
                    db.execute(&sql)
                        .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                }
                let _ = (tree, fact, params);
                Ok(())
            }
            UpdateMethod::CreateTable => {
                let mut items: Vec<String> = Vec::new();
                for c in &self.columns {
                    match assignments.iter().find(|(a, _)| a.eq_ignore_ascii_case(c)) {
                        Some((a, e)) => items.push(format!("{e} AS {a}")),
                        None => items.push(c.clone()),
                    }
                }
                let sql = format!(
                    "CREATE OR REPLACE TABLE {} AS SELECT {} FROM {}",
                    self.table,
                    items.join(", "),
                    self.table
                );
                db.execute(&sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                Ok(())
            }
            UpdateMethod::ColumnSwap => {
                let tmp = set.fresh_table("delta");
                let items: Vec<String> = assignments
                    .iter()
                    .map(|(a, e)| format!("{e} AS {a}"))
                    .collect();
                let sql = format!(
                    "CREATE TABLE {tmp} AS SELECT {} FROM {}",
                    items.join(", "),
                    self.table
                );
                db.execute(&sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                for (a, _) in assignments {
                    let sql = format!("SWAP COLUMN {}.{a} WITH {tmp}.{a}", self.table);
                    db.execute(&sql)
                        .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                }
                db.execute(&format!("DROP TABLE {tmp}"))
                    .map_err(TrainError::from)?;
                Ok(())
            }
            UpdateMethod::Interop => {
                // Compute the new columns through the engine, then swap the
                // array pointers in external storage.
                let items: Vec<String> = assignments
                    .iter()
                    .map(|(a, e)| format!("{e} AS {a}"))
                    .collect();
                let sql = format!("SELECT {} FROM {}", items.join(", "), self.table);
                let t = db
                    .execute(&sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                let ext = db.external(&self.table).map_err(TrainError::from)?;
                for (i, (a, _)) in assignments.iter().enumerate() {
                    ext.replace_column(a, t.columns[i].clone())
                        .map_err(TrainError::from)?;
                }
                Ok(())
            }
            UpdateMethod::Naive => {
                // Materialize the update relation U (row id → new values),
                // then rebuild the fact by joining it back (Section 5.3's
                // straw man).
                let u = set.fresh_table("u");
                let items: Vec<String> = assignments
                    .iter()
                    .map(|(a, e)| format!("{e} AS jb_new_{a}"))
                    .collect();
                let sql = format!(
                    "CREATE TABLE {u} AS SELECT jb_rid, {} FROM {}",
                    items.join(", "),
                    self.table
                );
                db.execute(&sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                let mut out_items: Vec<String> = Vec::new();
                for c in &self.columns {
                    match assignments.iter().find(|(a, _)| a.eq_ignore_ascii_case(c)) {
                        Some((a, _)) => out_items.push(format!("jb_new_{a} AS {a}")),
                        None => out_items.push(c.clone()),
                    }
                }
                let sql = format!(
                    "CREATE OR REPLACE TABLE {} AS SELECT {} FROM {} JOIN {u} USING (jb_rid)",
                    self.table,
                    out_items.join(", "),
                    self.table
                );
                db.execute(&sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
                db.execute(&format!("DROP TABLE {u}"))
                    .map_err(TrainError::from)?;
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Galaxy schemas (Section 4.2)
// ---------------------------------------------------------------------------

fn train_galaxy(
    set: &Dataset,
    params: &TrainParams,
    prior: &[Tree],
    callback: &mut impl FnMut(usize, &GbmModel) -> bool,
) -> Result<GbmModel> {
    if !params.objective.supports_galaxy() {
        return Err(TrainError::Invalid(format!(
            "objective {} requires a snowflake schema; only rmse factorizes over galaxy schemas",
            params.objective.name()
        )));
    }
    if !matches!(
        params.update_method,
        UpdateMethod::UpdateInPlace | UpdateMethod::CreateTable | UpdateMethod::ColumnSwap
    ) {
        return Err(TrainError::Invalid(
            "galaxy training supports UpdateInPlace, CreateTable and ColumnSwap".into(),
        ));
    }
    check_update_capability(set, params)?;
    let g = &set.graph;
    let cluster_list = clusters(g);
    if cluster_list.is_empty() {
        return Err(TrainError::Graph("no CPT clusters found".into()));
    }
    // Initial score via one factorized aggregate.
    let mut fx0 = Factorizer::new(set, RingKind::Variance);
    fx0.set_annotation(
        set.target_rel(),
        vec![Expr::int(1), Expr::col(set.target_column.clone())],
    );
    let (c, s) = fx0.totals(set.target_rel(), &crate::messages::NodeContext::root())?;
    if c == 0.0 {
        return Err(TrainError::Invalid("empty training data".into()));
    }
    let init = params.snap_leaf(s / c);
    drop(fx0);

    // Lift: the target relation carries (1, y − init); every cluster fact
    // carries (1, s) with s starting at 0 (or combined if it is the target).
    let mut fx = Factorizer::new(set, RingKind::Variance);
    let mut lifted_of: HashMap<RelId, String> = HashMap::new();
    let target = set.target_rel();
    {
        let lifted = set.fresh_table("tgt");
        let resid = Expr::sub(Expr::col(set.target_column.clone()), Expr::float(init));
        let sql = format!(
            "CREATE TABLE {lifted} AS SELECT *, {resid} AS jb_s FROM {}",
            g.name(target)
        );
        set.db
            .execute(&sql)
            .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
        fx.set_table(target, lifted.clone());
        fx.set_annotation(target, vec![Expr::int(1), Expr::col("jb_s")]);
        lifted_of.insert(target, lifted);
    }
    for cl in &cluster_list {
        if cl.fact == target || lifted_of.contains_key(&cl.fact) {
            continue;
        }
        let lifted = set.fresh_table("cf");
        let sql = format!(
            "CREATE TABLE {lifted} AS SELECT *, 0.0 AS jb_s FROM {}",
            g.name(cl.fact)
        );
        set.db
            .execute(&sql)
            .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
        fx.set_table(cl.fact, lifted.clone());
        fx.set_annotation(cl.fact, vec![Expr::int(1), Expr::col("jb_s")]);
        lifted_of.insert(cl.fact, lifted);
    }

    let cluster_members: Vec<Vec<RelId>> = cluster_list.iter().map(|c| c.members.clone()).collect();
    let mut model = GbmModel {
        objective: params.objective,
        init_score: init,
        learning_rate: params.learning_rate,
        trees: Vec::new(),
        train_time: Duration::ZERO,
        update_time: Duration::ZERO,
        stats: TrainStats::default(),
    };
    // Warm start (resume): replay each stored tree's aggregate update.
    // A CPT tree only ever splits inside one cluster, so its active
    // cluster is recoverable from any split's relation; a stump updates
    // the target's cluster — the same choice the original run made.
    for tree in prior {
        let cluster_idx = match tree.nodes.iter().find_map(|n| n.split.as_ref()) {
            Some(split) => {
                let rel = g.rel_id(&split.relation)?;
                cluster_list
                    .iter()
                    .position(|c| c.contains(rel))
                    .ok_or_else(|| TrainError::Graph("split relation not in any cluster".into()))?
            }
            None => cluster_list
                .iter()
                .position(|c| c.contains(target))
                .unwrap_or(0),
        };
        let cfact = cluster_list[cluster_idx].fact;
        let ctable = lifted_of
            .get(&cfact)
            .cloned()
            .ok_or_else(|| TrainError::Graph("cluster fact not lifted".into()))?;
        let case_expr = leaf_case_updates(
            set,
            cfact,
            tree,
            params.learning_rate,
            Expr::col("jb_s"),
            true,
        )?;
        let columns = set.db.column_names(&ctable)?;
        let updater = Updater {
            method: params.update_method,
            table: ctable,
            columns,
        };
        updater.apply(set, &[("jb_s".into(), case_expr)], tree, cfact, params)?;
        fx.bump_epoch(cfact);
        model.trees.push(tree.clone());
    }
    for iter in prior.len()..params.num_iterations {
        let t0 = Instant::now();
        let mut grower = TreeGrower::new(&mut fx, params, set.features());
        grower.cpt_clusters = Some(cluster_members.clone());
        let tree = grower.grow()?;
        let active = grower.active_cluster;
        model.stats.merge(&grower.stats);
        model.train_time += t0.elapsed();

        let t1 = Instant::now();
        // Choose the cluster to update: the tree's active cluster, or the
        // target's cluster for a stump with no split.
        let cluster_idx = active.unwrap_or_else(|| {
            cluster_list
                .iter()
                .position(|c| c.contains(target))
                .unwrap_or(0)
        });
        let cfact = cluster_list[cluster_idx].fact;
        let ctable = lifted_of
            .get(&cfact)
            .cloned()
            .ok_or_else(|| TrainError::Graph("cluster fact not lifted".into()))?;
        // `(c,s) ⊗ lift(−lr·p) = (c, s − lr·p·c)`; base rows have c = 1.
        let case_expr = leaf_case_updates(
            set,
            cfact,
            &tree,
            params.learning_rate,
            Expr::col("jb_s"),
            true,
        )?;
        let columns = set.db.column_names(&ctable)?;
        let updater = Updater {
            method: params.update_method,
            table: ctable,
            columns,
        };
        updater.apply(set, &[("jb_s".into(), case_expr)], &tree, cfact, params)?;
        fx.bump_epoch(cfact);
        model.update_time += t1.elapsed();

        model.trees.push(tree);
        if !callback(iter, &model) {
            break;
        }
    }
    Ok(model)
}
