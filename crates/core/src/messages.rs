//! The Factorizer: decomposes aggregation queries into message passing and
//! absorption SQL (Sections 3.1, 3.3, 5.2), with three optimizations:
//!
//! * **message caching across tree nodes** (Section 5.5.1): messages are
//!   keyed by `(from, to, subtree-predicate signature, annotation epoch)`;
//!   after a split only the messages on the path from the split relation
//!   to the root are recomputed;
//! * **identity messages** (Appendix D.2): a leaf-ward relation annotated
//!   with `1̄`, with no predicates, joined N-to-1 from its parent, does not
//!   change annotations — its message is dropped entirely;
//! * **semi-join messages** (Appendix D.2): once such a relation gains a
//!   predicate, its message is just the set of surviving join keys, and
//!   the join becomes a semi-join filter.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use joinboost_graph::cache::{signature, MessageCache, MessageKey};
use joinboost_graph::{Multiplicity, RelId};
use joinboost_sql::ast::{Expr, Join, JoinKind, Query, SelectItem, TableRef};

use crate::dataset::Dataset;
use crate::error::{Result, TrainError};
use crate::sqlgen::{fold_annotations, identity_annotation, RingKind};
use crate::tree::{Split, SplitCondition};

/// A predicate on one relation: its canonical SQL (for cache signatures)
/// plus the parsed expression.
#[derive(Debug, Clone)]
pub struct Pred {
    /// Canonical SQL rendering (cache signature key).
    pub sql: String,
    /// The parsed predicate expression.
    pub expr: Expr,
}

impl Pred {
    /// Build from a tree split (possibly negated).
    pub fn from_split(split: &Split, negated: bool) -> Pred {
        let col = Expr::col(split.feature.clone());
        use joinboost_sql::ast::BinaryOp::*;
        let expr = match (&split.cond, negated) {
            (SplitCondition::LtEq(v), false) => Expr::binary(LtEq, col, Expr::float(*v)),
            (SplitCondition::LtEq(v), true) => Expr::binary(Gt, col, Expr::float(*v)),
            (SplitCondition::EqNum(v), false) => Expr::binary(Eq, col, Expr::float(*v)),
            (SplitCondition::EqNum(v), true) => Expr::binary(Neq, col, Expr::float(*v)),
            (SplitCondition::EqStr(v), false) => Expr::binary(Eq, col, Expr::str(v.clone())),
            (SplitCondition::EqStr(v), true) => Expr::binary(Neq, col, Expr::str(v.clone())),
        };
        Pred {
            sql: split.to_sql(negated),
            expr,
        }
    }
}

/// Per-tree-node predicate context: the conjunction of split predicates,
/// pushed to the relations that own the split features.
#[derive(Debug, Clone, Default)]
pub struct NodeContext {
    preds: HashMap<RelId, Vec<Pred>>,
}

impl NodeContext {
    /// The empty context of the tree root (no predicates).
    pub fn root() -> NodeContext {
        NodeContext::default()
    }

    /// Extend with one more predicate (returns the child context).
    pub fn with_pred(&self, rel: RelId, pred: Pred) -> NodeContext {
        let mut next = self.clone();
        next.preds.entry(rel).or_default().push(pred);
        next
    }

    /// Predicates pushed to one relation.
    pub fn preds_of(&self, rel: RelId) -> &[Pred] {
        self.preds.get(&rel).map_or(&[], Vec::as_slice)
    }

    fn signature_of(&self, rels: &[RelId], epochs: &HashMap<RelId, u64>) -> String {
        let mut parts: Vec<String> = Vec::new();
        for &r in rels {
            for p in self.preds_of(r) {
                parts.push(format!("{r}:{}", p.sql));
            }
            if let Some(e) = epochs.get(&r) {
                if *e > 0 {
                    parts.push(format!("{r}@{e}"));
                }
            }
        }
        signature(&parts)
    }
}

/// Qualify every bare column reference in an expression with `table`.
fn qualify_expr(e: Expr, table: &str) -> Expr {
    match e {
        Expr::Column { table: None, name } => Expr::Column {
            table: Some(table.to_string()),
            name,
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op,
            left: Box::new(qualify_expr(*left, table)),
            right: Box::new(qualify_expr(*right, table)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(qualify_expr(*expr, table)),
        },
        Expr::Func { name, args } => Expr::Func {
            name,
            args: args.into_iter().map(|a| qualify_expr(a, table)).collect(),
        },
        other => other,
    }
}

/// How an absorption groups feature values.
#[derive(Debug, Clone)]
pub struct GroupSpec {
    /// The feature column (NULL filtering).
    pub feature: String,
    /// Expression selected as `val` (the raw value, or `MAX(f)` per bin
    /// for histogram training so the split threshold is an actual value).
    pub select: Expr,
    /// Expression grouped by (the raw value, or the bin id).
    pub group: Expr,
    /// When the grouping expression is not itself the selected value (the
    /// histogram bin id), it is additionally emitted as an output column
    /// under this alias, so that partitioned backends can match groups
    /// across shards and `⊕`-merge per bin (shard-friendly absorbs; see
    /// `DESIGN.md` § "Distributed split evaluation").
    pub key_alias: Option<String>,
}

/// Output-column alias of a binned absorption's group key.
pub const BIN_KEY_ALIAS: &str = "jb_key";

impl GroupSpec {
    /// Plain per-distinct-value grouping.
    pub fn plain(feature: &str) -> GroupSpec {
        GroupSpec {
            feature: feature.to_string(),
            select: Expr::col(feature),
            group: Expr::col(feature),
            key_alias: None,
        }
    }

    /// Histogram grouping: group by `FLOOR((f − lo)/width)`, select
    /// `MAX(f)` so the returned threshold exactly separates the bins. The
    /// bin id rides along in the output as [`BIN_KEY_ALIAS`].
    pub fn binned(feature: &str, lo: f64, width: f64) -> GroupSpec {
        let bin = Expr::func(
            "FLOOR",
            vec![Expr::div(
                Expr::sub(Expr::col(feature), Expr::float(lo)),
                Expr::float(width.max(f64::MIN_POSITIVE)),
            )],
        );
        GroupSpec {
            feature: feature.to_string(),
            select: Expr::func("MAX", vec![Expr::col(feature)]),
            group: bin,
            key_alias: Some(BIN_KEY_ALIAS.to_string()),
        }
    }
}

/// A computed message.
#[derive(Debug, Clone)]
pub enum MsgHandle {
    /// Dropped: joining would not change annotations or counts.
    Identity,
    /// Semi-join filter: `table` holds the surviving join-key values.
    Semi {
        /// Materialized message table name.
        table: String,
        /// Join-key column names.
        keys: Vec<String>,
    },
    /// Full message: `table` holds the keys plus annotation columns.
    Full {
        /// Materialized message table name.
        table: String,
        /// Join-key column names.
        keys: Vec<String>,
    },
}

/// Execution statistics (drives Figure 9).
#[derive(Debug, Clone, Default)]
pub struct FactorizerStats {
    /// Materialized message queries (CREATE TABLE ... AS).
    pub message_queries: u64,
    /// Total wall-clock spent materializing messages.
    pub message_time: Duration,
    /// Per-message durations.
    pub message_durations: Vec<Duration>,
    /// Messages served from the cross-node cache.
    pub cache_hits: u64,
    /// Messages dropped by the identity optimization.
    pub identity_drops: u64,
    /// Messages reduced to semi-join key filters.
    pub semi_messages: u64,
}

/// The factorizer: owns the per-relation annotations and the message cache.
pub struct Factorizer<'a, 'b> {
    /// The dataset being trained on.
    pub set: &'b Dataset<'a>,
    /// Which semi-ring pair the annotations carry.
    pub ring: RingKind,
    /// Annotation expressions per relation, relative to its physical table.
    annotations: HashMap<RelId, Vec<Expr>>,
    /// Physical table override (lifted copies).
    tables: HashMap<RelId, String>,
    /// Bumped whenever a relation's annotation *data* changes (residual
    /// updates), invalidating cached messages that aggregated it.
    epochs: HashMap<RelId, u64>,
    cache: MessageCache<MsgHandle>,
    /// Message-passing counters (drives Figure 9).
    pub stats: FactorizerStats,
}

impl<'a, 'b> Factorizer<'a, 'b> {
    /// A factorizer with identity annotations and an empty cache.
    pub fn new(set: &'b Dataset<'a>, ring: RingKind) -> Self {
        Factorizer {
            set,
            ring,
            annotations: HashMap::new(),
            tables: HashMap::new(),
            epochs: HashMap::new(),
            cache: MessageCache::new(),
            stats: FactorizerStats::default(),
        }
    }

    /// Set a relation's annotation expressions `[comp0, comp1]` (defaults
    /// to the identity `(1, 0)`).
    pub fn set_annotation(&mut self, rel: RelId, ann: Vec<Expr>) {
        assert_eq!(ann.len(), 2);
        self.annotations.insert(rel, ann);
    }

    /// Redirect a relation to a (lifted/sampled) physical table.
    pub fn set_table(&mut self, rel: RelId, table: String) {
        self.tables.insert(rel, table);
    }

    /// Invalidate cached messages that aggregated `rel`'s annotations
    /// (called after every residual update).
    pub fn bump_epoch(&mut self, rel: RelId) {
        *self.epochs.entry(rel).or_insert(0) += 1;
    }

    /// The physical table a relation currently reads from (lifted copies
    /// override the graph name).
    pub fn table_of(&self, rel: RelId) -> &str {
        self.tables
            .get(&rel)
            .map(String::as_str)
            .unwrap_or_else(|| self.set.graph.name(rel))
    }

    fn annotation_of(&self, rel: RelId) -> Vec<Expr> {
        self.annotations
            .get(&rel)
            .cloned()
            .unwrap_or_else(identity_annotation)
    }

    fn is_identity_annotated(&self, rel: RelId) -> bool {
        self.annotation_of(rel) == identity_annotation()
    }

    /// Relations in the subtree of `from` when the edge to `to` is removed.
    fn subtree(&self, from: RelId, to: RelId) -> Vec<RelId> {
        let g = &self.set.graph;
        let mut seen = vec![from];
        let mut queue = vec![from];
        while let Some(u) = queue.pop() {
            for (v, _) in g.neighbors(u) {
                if v != to && !seen.contains(&v) {
                    seen.push(v);
                    queue.push(v);
                }
            }
        }
        seen.sort_unstable();
        seen
    }

    /// Compute (or fetch from cache) the message `from → to` under the
    /// node's predicate context.
    pub fn message(&mut self, from: RelId, to: RelId, ctx: &NodeContext) -> Result<MsgHandle> {
        let subtree = self.subtree(from, to);
        let key = MessageKey {
            from,
            to,
            signature: ctx.signature_of(&subtree, &self.epochs),
        };
        if let Some(m) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return Ok(m.clone());
        }
        // Recursively obtain child messages.
        let g = &self.set.graph;
        let children: Vec<RelId> = g
            .neighbors(from)
            .into_iter()
            .map(|(v, _)| v)
            .filter(|&v| v != to)
            .collect();
        let mut full_children: Vec<(RelId, MsgHandle)> = Vec::new();
        let mut semi_children: Vec<(RelId, MsgHandle)> = Vec::new();
        for c in children {
            match self.message(c, from, ctx)? {
                MsgHandle::Identity => {}
                m @ MsgHandle::Semi { .. } => semi_children.push((c, m)),
                m @ MsgHandle::Full { .. } => full_children.push((c, m)),
            }
        }
        let keys: Vec<String> = self
            .set
            .graph
            .join_keys(from, to)
            .ok_or_else(|| TrainError::Graph(format!("no edge between {from} and {to}")))?
            .to_vec();
        // Joining `to` with `from` preserves row counts iff each `to`-row
        // matches exactly one `from`-row (N-to-1 or 1-to-1 seen from `to`).
        let count_preserving = matches!(
            self.set.graph.multiplicity(to, from),
            Some(Multiplicity::ManyToOne) | Some(Multiplicity::OneToOne)
        );
        let has_preds = !ctx.preds_of(from).is_empty();
        let handle = if self.is_identity_annotated(from)
            && !has_preds
            && full_children.is_empty()
            && semi_children.is_empty()
            && count_preserving
        {
            self.stats.identity_drops += 1;
            MsgHandle::Identity
        } else if self.is_identity_annotated(from) && full_children.is_empty() && count_preserving {
            // Semi-join message: just the surviving key values.
            let table = self.materialize_semi_message(from, &keys, &semi_children, ctx)?;
            self.stats.semi_messages += 1;
            MsgHandle::Semi { table, keys }
        } else {
            let table =
                self.materialize_full_message(from, &keys, &full_children, &semi_children, ctx)?;
            MsgHandle::Full { table, keys }
        };
        self.cache.insert(key, handle.clone());
        Ok(handle)
    }

    fn base_from(&self, rel: RelId) -> TableRef {
        TableRef::Named {
            name: self.table_of(rel).to_string(),
            alias: None,
        }
    }

    fn attach_children(
        &self,
        q: &mut Query,
        full_children: &[(RelId, MsgHandle)],
        semi_children: &[(RelId, MsgHandle)],
    ) {
        for (_, m) in full_children {
            if let MsgHandle::Full { table, keys } = m {
                q.joins.push(Join {
                    kind: JoinKind::Inner,
                    table: TableRef::named(table.clone()),
                    using: keys.clone(),
                    on: None,
                });
            }
        }
        for (_, m) in semi_children {
            if let MsgHandle::Semi { table, keys } = m {
                q.joins.push(Join {
                    kind: JoinKind::Semi,
                    table: TableRef::named(table.clone()),
                    using: keys.clone(),
                    on: None,
                });
            }
        }
    }

    fn where_of(&self, rel: RelId, ctx: &NodeContext) -> Option<Expr> {
        Expr::and_all(ctx.preds_of(rel).iter().map(|p| p.expr.clone()))
    }

    /// Composite annotation of a relation joined with its full child
    /// messages (child components qualified by their message table name).
    fn composed_annotation(&self, rel: RelId, full_children: &[(RelId, MsgHandle)]) -> Vec<Expr> {
        let [n0, n1] = self.ring.components();
        // Qualify the base annotation's bare column refs with the physical
        // table name so they cannot collide with message columns.
        let table = self.table_of(rel).to_string();
        let base: Vec<Expr> = self
            .annotation_of(rel)
            .into_iter()
            .map(|e| qualify_expr(e, &table))
            .collect();
        let mut anns = vec![base];
        for (_, m) in full_children {
            if let MsgHandle::Full { table, .. } = m {
                anns.push(vec![
                    Expr::qcol(table.clone(), format!("jb_{n0}")),
                    Expr::qcol(table.clone(), format!("jb_{n1}")),
                ]);
            }
        }
        fold_annotations(&anns)
    }

    fn materialize_semi_message(
        &mut self,
        from: RelId,
        keys: &[String],
        semi_children: &[(RelId, MsgHandle)],
        ctx: &NodeContext,
    ) -> Result<String> {
        let mut q = Query {
            items: keys
                .iter()
                .map(|k| SelectItem::new(Expr::col(k.clone())))
                .collect(),
            from: Some(self.base_from(from)),
            group_by: keys.iter().map(|k| Expr::col(k.clone())).collect(),
            ..Default::default()
        };
        self.attach_children(&mut q, &[], semi_children);
        q.where_clause = self.where_of(from, ctx);
        self.run_create(q, "semi")
    }

    fn materialize_full_message(
        &mut self,
        from: RelId,
        keys: &[String],
        full_children: &[(RelId, MsgHandle)],
        semi_children: &[(RelId, MsgHandle)],
        ctx: &NodeContext,
    ) -> Result<String> {
        let [n0, n1] = self.ring.components();
        let ann = self.composed_annotation(from, full_children);
        let mut items: Vec<SelectItem> = keys
            .iter()
            .map(|k| SelectItem::new(Expr::col(k.clone())))
            .collect();
        items.push(SelectItem::aliased(
            Expr::sum(ann[0].clone()),
            format!("jb_{n0}"),
        ));
        items.push(SelectItem::aliased(
            Expr::sum(ann[1].clone()),
            format!("jb_{n1}"),
        ));
        let mut q = Query {
            items,
            from: Some(self.base_from(from)),
            group_by: keys.iter().map(|k| Expr::col(k.clone())).collect(),
            ..Default::default()
        };
        self.attach_children(&mut q, full_children, semi_children);
        q.where_clause = self.where_of(from, ctx);
        self.run_create(q, "msg")
    }

    fn run_create(&mut self, q: Query, hint: &str) -> Result<String> {
        let name = self.set.fresh_table(hint);
        // Hand the statement to the backend as an AST: backends with the
        // fast path skip print + re-parse entirely, the others serialize.
        let stmt = joinboost_sql::ast::Statement::CreateTableAs {
            name: name.clone(),
            query: q,
            or_replace: false,
        };
        let start = Instant::now();
        self.set
            .db
            .execute_ast(&stmt)
            .map_err(|e| TrainError::Engine(format!("{e} in: {stmt}")))?;
        let dt = start.elapsed();
        self.stats.message_queries += 1;
        self.stats.message_time += dt;
        self.stats.message_durations.push(dt);
        Ok(name)
    }

    /// Build the absorption query at `root`: join `root` with all incoming
    /// messages, apply the node predicates, and aggregate the composed
    /// annotation grouped by a feature of `root` (or globally).
    ///
    /// Output columns: `[val,] c0, c1` aliased to the generic component
    /// names expected by the split queries.
    pub fn absorb(
        &mut self,
        root: RelId,
        group: Option<&GroupSpec>,
        ctx: &NodeContext,
    ) -> Result<Query> {
        let g = &self.set.graph;
        let neighbors: Vec<RelId> = g.neighbors(root).into_iter().map(|(v, _)| v).collect();
        let mut full_children = Vec::new();
        let mut semi_children = Vec::new();
        for n in neighbors {
            match self.message(n, root, ctx)? {
                MsgHandle::Identity => {}
                m @ MsgHandle::Semi { .. } => semi_children.push((n, m)),
                m @ MsgHandle::Full { .. } => full_children.push((n, m)),
            }
        }
        let [n0, n1] = self.ring.components();
        let ann = self.composed_annotation(root, &full_children);
        let mut items = Vec::new();
        if let Some(g) = group {
            items.push(SelectItem::aliased(g.select.clone(), "val"));
        }
        items.push(SelectItem::aliased(Expr::sum(ann[0].clone()), n0));
        items.push(SelectItem::aliased(Expr::sum(ann[1].clone()), n1));
        if let Some(g) = group {
            // A binned absorption also outputs its group key (the bin id),
            // so shards can match groups when the aggregate is fanned out.
            if let Some(alias) = &g.key_alias {
                items.push(SelectItem::aliased(g.group.clone(), alias.clone()));
            }
        }
        let mut q = Query {
            items,
            from: Some(self.base_from(root)),
            group_by: group.map(|g| vec![g.group.clone()]).unwrap_or_default(),
            ..Default::default()
        };
        self.attach_children(&mut q, &full_children, &semi_children);
        let mut preds: Vec<Expr> = ctx.preds_of(root).iter().map(|p| p.expr.clone()).collect();
        if let Some(g) = group {
            // Missing feature values are excluded from split statistics
            // (they follow the split's default branch at prediction time).
            preds.push(Expr::IsNull {
                expr: Box::new(Expr::col(g.feature.clone())),
                negated: true,
            });
        }
        q.where_clause = Expr::and_all(preds);
        Ok(q)
    }

    /// Execute a global (no group-by) absorption and return the two
    /// aggregate components `(c0, c1)` — the node totals.
    pub fn totals(&mut self, root: RelId, ctx: &NodeContext) -> Result<(f64, f64)> {
        let [n0, n1] = self.ring.components();
        let q = self.absorb(root, None, ctx)?;
        let stmt = joinboost_sql::ast::Statement::Select(q);
        let t = self
            .set
            .db
            .execute_ast(&stmt)
            .map_err(|e| TrainError::Engine(format!("{e} in: {stmt}")))?;
        if t.num_rows() == 0 {
            return Ok((0.0, 0.0));
        }
        let c0 = t.scalar_f64(n0).unwrap_or(0.0);
        let c1 = t.scalar_f64(n1).unwrap_or(0.0);
        Ok((c0, c1))
    }

    /// Cache statistics passthrough.
    pub fn cache_stats(&self) -> joinboost_graph::cache::CacheStats {
        self.cache.stats()
    }

    /// Drop every cached message (the `Batch` ablation recomputes messages
    /// per tree node; backing temp tables are cleaned by the dataset).
    pub fn clear_cache(&mut self) {
        let _ = self.cache.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database, Table};
    use joinboost_graph::JoinGraph;

    /// Paper Figure 1 data: R(A,B) target B; S(A,C); T(A,D).
    fn figure1(db: &Database) -> JoinGraph {
        db.create_table(
            "r",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2, 2])),
                ("b", Column::float(vec![2.0, 3.0, 1.0, 2.0])),
            ]),
        )
        .unwrap();
        db.create_table(
            "s",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 2, 2])),
                ("c", Column::int(vec![2, 1, 3])),
            ]),
        )
        .unwrap();
        db.create_table(
            "t",
            Table::from_columns(vec![
                ("a", Column::int(vec![1, 1, 2])),
                ("d", Column::int(vec![1, 2, 2])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("r", &[]).unwrap();
        g.add_relation("s", &["c"]).unwrap();
        g.add_relation("t", &["d"]).unwrap();
        g.add_edge_with("r", "s", &["a"], Multiplicity::ManyToMany)
            .unwrap();
        g.add_edge_with("s", "t", &["a"], Multiplicity::ManyToMany)
            .unwrap();
        g
    }

    #[test]
    fn figure1_total_aggregate_is_8_16_36_minus_q() {
        // γ(R ⋈ S ⋈ T) = (8, 16, 36); we track (c, s) = (8, 16).
        let db = Database::in_memory();
        let g = figure1(&db);
        let set = Dataset::new(&db, g, "r", "b").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let target = set.target_rel();
        f.set_annotation(target, vec![Expr::int(1), Expr::col("b")]);
        let (c, s) = f.totals(target, &NodeContext::root()).unwrap();
        assert_eq!((c, s), (8.0, 16.0));
        // M-N chain: both S and T must send full messages (counts change).
        assert_eq!(f.stats.message_queries, 2);
        assert_eq!(f.stats.identity_drops, 0);
    }

    #[test]
    fn figure1c_groupby_c_matches_paper() {
        // γ_C(R⋈): C=1 → (2,3,5), C=2 → (4,10,26), C=3 → (2,3,5).
        let db = Database::in_memory();
        let g = figure1(&db);
        let set = Dataset::new(&db, g, "r", "b").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let target = set.target_rel();
        f.set_annotation(target, vec![Expr::int(1), Expr::col("b")]);
        let s_rel = set.graph.rel_id("s").unwrap();
        let q = f
            .absorb(s_rel, Some(&GroupSpec::plain("c")), &NodeContext::root())
            .unwrap();
        let t = db
            .query(&format!("SELECT * FROM ({q}) AS x ORDER BY val"))
            .unwrap();
        assert_eq!(t.num_rows(), 3);
        let c_col = t.column(None, "c").unwrap();
        let s_col = t.column(None, "s").unwrap();
        assert_eq!(c_col.f64_at(0), Some(2.0));
        assert_eq!(s_col.f64_at(0), Some(3.0));
        assert_eq!(c_col.f64_at(1), Some(4.0));
        assert_eq!(s_col.f64_at(1), Some(10.0));
        assert_eq!(c_col.f64_at(2), Some(2.0));
        assert_eq!(s_col.f64_at(2), Some(3.0));
    }

    /// Star schema: fact(sales) N-1 to two dims.
    fn star(db: &Database) -> JoinGraph {
        db.create_table(
            "fact",
            Table::from_columns(vec![
                ("k1", Column::int(vec![1, 1, 2, 2])),
                ("k2", Column::int(vec![1, 2, 1, 2])),
                ("y", Column::float(vec![1.0, 2.0, 3.0, 4.0])),
            ]),
        )
        .unwrap();
        db.create_table(
            "d1",
            Table::from_columns(vec![
                ("k1", Column::int(vec![1, 2])),
                ("f1", Column::int(vec![10, 20])),
            ]),
        )
        .unwrap();
        db.create_table(
            "d2",
            Table::from_columns(vec![
                ("k2", Column::int(vec![1, 2])),
                ("f2", Column::int(vec![7, 8])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("fact", &[]).unwrap();
        g.add_relation("d1", &["f1"]).unwrap();
        g.add_relation("d2", &["f2"]).unwrap();
        g.add_edge("fact", "d1", &["k1"]).unwrap();
        g.add_edge("fact", "d2", &["k2"]).unwrap();
        g
    }

    #[test]
    fn star_dims_send_identity_messages() {
        let db = Database::in_memory();
        let g = star(&db);
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let fact = set.target_rel();
        f.set_annotation(fact, vec![Expr::int(1), Expr::col("y")]);
        let (c, s) = f.totals(fact, &NodeContext::root()).unwrap();
        assert_eq!((c, s), (4.0, 10.0));
        // No predicates, identity dims, N-1 edges → zero message queries.
        assert_eq!(f.stats.message_queries, 0);
        assert_eq!(f.stats.identity_drops, 2);
    }

    #[test]
    fn predicate_on_dim_becomes_semijoin_message() {
        let db = Database::in_memory();
        let g = star(&db);
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let fact = set.target_rel();
        f.set_annotation(fact, vec![Expr::int(1), Expr::col("y")]);
        let d1 = set.graph.rel_id("d1").unwrap();
        let split = Split {
            feature: "f1".into(),
            relation: "d1".into(),
            cond: SplitCondition::LtEq(10.0),
            default_left: false,
        };
        let ctx = NodeContext::root().with_pred(d1, Pred::from_split(&split, false));
        let (c, s) = f.totals(fact, &ctx).unwrap();
        // f1 <= 10 → k1 = 1 → rows (1,1) and (1,2): c=2, s=3.
        assert_eq!((c, s), (2.0, 3.0));
        assert_eq!(f.stats.semi_messages, 1);
        // The other dim is still identity-dropped.
        assert_eq!(f.stats.identity_drops, 1);
        assert_eq!(
            f.stats.message_queries, 1,
            "only the semi message materializes"
        );
    }

    #[test]
    fn absorb_at_dim_pulls_fact_message() {
        let db = Database::in_memory();
        let g = star(&db);
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let fact = set.target_rel();
        f.set_annotation(fact, vec![Expr::int(1), Expr::col("y")]);
        let d1 = set.graph.rel_id("d1").unwrap();
        let q = f
            .absorb(d1, Some(&GroupSpec::plain("f1")), &NodeContext::root())
            .unwrap();
        let t = db
            .query(&format!("SELECT * FROM ({q}) AS x ORDER BY val"))
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        // f1 = 10 → k1 = 1 → (2, 3); f1 = 20 → k1 = 2 → (2, 7).
        assert_eq!(t.column(None, "s").unwrap().f64_at(0), Some(3.0));
        assert_eq!(t.column(None, "s").unwrap().f64_at(1), Some(7.0));
        // The fact's message to d1 is a full message (it carries y sums).
        assert_eq!(f.stats.message_queries, 1);
    }

    #[test]
    fn message_cache_reuses_across_nodes() {
        let db = Database::in_memory();
        let g = star(&db);
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let fact = set.target_rel();
        f.set_annotation(fact, vec![Expr::int(1), Expr::col("y")]);
        let d1 = set.graph.rel_id("d1").unwrap();
        let ctx = NodeContext::root();
        let _ = f.absorb(d1, Some(&GroupSpec::plain("f1")), &ctx).unwrap();
        let queries_before = f.stats.message_queries;
        // Same context again (another feature on the same relation):
        let _ = f.absorb(d1, Some(&GroupSpec::plain("f1")), &ctx).unwrap();
        assert_eq!(f.stats.message_queries, queries_before, "cache hit");
        assert!(f.stats.cache_hits >= 1);
        // A predicate on d2 invalidates the fact→d1 message (d2 is in its
        // subtree) but a predicate on d1 itself does not.
        let d2 = set.graph.rel_id("d2").unwrap();
        let split = Split {
            feature: "f2".into(),
            relation: "d2".into(),
            cond: SplitCondition::LtEq(7.0),
            default_left: false,
        };
        let ctx2 = ctx.with_pred(d2, Pred::from_split(&split, false));
        let _ = f.absorb(d1, Some(&GroupSpec::plain("f1")), &ctx2).unwrap();
        assert!(f.stats.message_queries > queries_before);
    }

    #[test]
    fn epoch_bump_invalidates_fact_messages() {
        let db = Database::in_memory();
        let g = star(&db);
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let mut f = Factorizer::new(&set, RingKind::Variance);
        let fact = set.target_rel();
        f.set_annotation(fact, vec![Expr::int(1), Expr::col("y")]);
        let d1 = set.graph.rel_id("d1").unwrap();
        let ctx = NodeContext::root();
        let _ = f.absorb(d1, Some(&GroupSpec::plain("f1")), &ctx).unwrap();
        let before = f.stats.message_queries;
        f.bump_epoch(fact);
        let _ = f.absorb(d1, Some(&GroupSpec::plain("f1")), &ctx).unwrap();
        assert!(f.stats.message_queries > before, "epoch forces recompute");
    }
}
