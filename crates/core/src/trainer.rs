//! Decision tree training — Algorithm 1 of the paper.
//!
//! The driver (this Rust code) runs the control flow; the expensive step —
//! evaluating the best split per feature (line 14) — is compiled into one
//! SQL query per feature and executed by the DBMS, in parallel across
//! features (Section 5.5.3). Split statistics come from factorized message
//! passing ([`crate::messages`]); messages are cached and shared between
//! parent and child nodes (Section 5.5.1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use joinboost_engine::Datum;
use joinboost_graph::RelId;
use joinboost_semiring::{second_order_gain, variance_reduction};

use crate::dataset::{Dataset, FeatureKind};
use crate::error::{Result, TrainError};
use crate::messages::{Factorizer, NodeContext, Pred};
use crate::params::{Growth, TrainParams};
use crate::scheduler;
use crate::sqlgen::{categorical_split_query, numeric_split_query, NodeTotals, RingKind};
use crate::tree::{Split, SplitCondition, Tree, TreeNode};

/// Statistics of one tree's training (drives Figure 9).
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Queries that evaluate the best split of one feature.
    pub split_queries: u64,
    /// Total wall-clock spent in split queries.
    pub split_time: Duration,
    /// Per-split-query durations.
    pub split_durations: Vec<Duration>,
    /// Message queries materialized (copied from the factorizer).
    pub message_queries: u64,
    /// Total wall-clock spent materializing messages.
    pub message_time: Duration,
    /// Per-message durations.
    pub message_durations: Vec<Duration>,
    /// Messages served from the cross-node cache.
    pub cache_hits: u64,
    /// Messages dropped by the identity optimization.
    pub identity_drops: u64,
}

impl TrainStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &TrainStats) {
        self.split_queries += other.split_queries;
        self.split_time += other.split_time;
        self.split_durations
            .extend(other.split_durations.iter().copied());
        self.message_queries += other.message_queries;
        self.message_time += other.message_time;
        self.message_durations
            .extend(other.message_durations.iter().copied());
        self.cache_hits += other.cache_hits;
        self.identity_drops += other.identity_drops;
    }
}

/// A candidate split with the aggregates needed to build both children.
#[derive(Debug, Clone)]
pub struct CandidateSplit {
    /// The winning split condition.
    pub split: Split,
    /// Relation the split feature lives in.
    pub rel: RelId,
    /// Exact gain (variance reduction or 0.5·gain − α).
    pub gain: f64,
    /// Left-side totals `(c0, c1)`.
    pub left: NodeTotals,
}

struct PendingNode {
    node: usize,
    depth: usize,
    ctx: NodeContext,
    totals: NodeTotals,
    candidate: CandidateSplit,
}

/// Heap ordering: best-first uses gain; depth-wise uses (shallowest,
/// then gain).
struct HeapItem {
    priority: (i64, f64),
    entry: PendingNode,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority.0.cmp(&other.priority.0).then(
            self.priority
                .1
                .partial_cmp(&other.priority.1)
                .unwrap_or(Ordering::Equal),
        )
    }
}

/// Grows one tree over a prepared factorizer.
pub struct TreeGrower<'a, 'b, 'c> {
    /// The factorizer computing split statistics.
    pub fx: &'c mut Factorizer<'a, 'b>,
    /// Training parameters.
    pub params: &'c TrainParams,
    /// Features allowed for this tree (after sampling / CPT restriction),
    /// as `(feature, relation)` pairs.
    pub features: Vec<(String, RelId)>,
    /// Clustered Predicate Trees (Section 4.2.2): when set, the root may
    /// split on any feature, but once it picks a relation the tree is
    /// confined to the cluster containing that relation.
    pub cpt_clusters: Option<Vec<Vec<RelId>>>,
    /// Index (into `cpt_clusters`) of the cluster chosen by the root
    /// split; readable after [`TreeGrower::grow`].
    pub active_cluster: Option<usize>,
    /// Cached `(lo, width)` histogram ranges per numeric feature.
    bin_ranges: std::collections::HashMap<String, (f64, f64)>,
    /// When false, the message cache is cleared before every node's split
    /// batch — the per-node `Batch` ablation of Figure 16a.
    pub share_messages_across_nodes: bool,
    /// Query counters and timings for this tree.
    pub stats: TrainStats,
}

impl<'a, 'b, 'c> TreeGrower<'a, 'b, 'c> {
    /// Prepare to grow one tree over the given features.
    pub fn new(
        fx: &'c mut Factorizer<'a, 'b>,
        params: &'c TrainParams,
        features: Vec<(String, RelId)>,
    ) -> Self {
        TreeGrower {
            fx,
            params,
            features,
            cpt_clusters: None,
            active_cluster: None,
            bin_ranges: std::collections::HashMap::new(),
            share_messages_across_nodes: true,
            stats: TrainStats::default(),
        }
    }

    fn leaf_value(&self, totals: NodeTotals) -> f64 {
        let v = match self.fx.ring {
            RingKind::Variance => {
                if totals.c0 > 0.0 {
                    totals.c1 / totals.c0
                } else {
                    0.0
                }
            }
            RingKind::Gradient => {
                joinboost_semiring::leaf_weight(totals.c1, totals.c0, self.params.reg_lambda)
            }
        };
        self.params.snap_leaf(v)
    }

    fn exact_gain(&self, totals: NodeTotals, left: NodeTotals) -> Option<f64> {
        match self.fx.ring {
            RingKind::Variance => variance_reduction(totals.c0, totals.c1, left.c0, left.c1),
            RingKind::Gradient => second_order_gain(
                totals.c1,
                totals.c0,
                left.c1,
                left.c0,
                self.params.reg_lambda,
                self.params.min_gain,
            ),
        }
    }

    fn min_gain_threshold(&self) -> f64 {
        match self.fx.ring {
            RingKind::Variance => self.params.min_gain,
            // α already subtracted inside second_order_gain.
            RingKind::Gradient => 0.0,
        }
    }

    /// GetBestSplit (Algorithm 1, lines 11–16): one SQL query per feature,
    /// run in parallel, best gain wins.
    pub fn get_best_split(
        &mut self,
        ctx: &NodeContext,
        totals: NodeTotals,
        allowed: &[(String, RelId)],
    ) -> Result<Option<CandidateSplit>> {
        if totals.c0 < 2.0 * self.params.min_data_in_leaf {
            return Ok(None);
        }
        // Numeric splits need window prefix sums (paper Example 2); refuse
        // early on backends that cannot run them instead of failing deep
        // inside a generated query.
        if !self.fx.set.db.capabilities().window_functions
            && allowed
                .iter()
                .any(|(f, _)| self.fx.set.feature_kind(f) == FeatureKind::Numeric)
        {
            return Err(TrainError::Invalid(
                "backend does not support window functions, which numeric splits require".into(),
            ));
        }
        if !self.share_messages_across_nodes {
            self.fx.clear_cache();
        }
        // Stage 1 (sequential): make sure all messages exist; build the
        // per-feature split queries.
        let mut queries: Vec<(String, RelId, FeatureKind, String)> = Vec::new();
        for (feat, rel) in allowed {
            let spec = self.group_spec(feat, *rel)?;
            let absorbed = self.fx.absorb(*rel, Some(&spec), ctx)?;
            let kind = self.fx.set.feature_kind(feat);
            let q = match kind {
                FeatureKind::Numeric => numeric_split_query(
                    absorbed,
                    self.fx.ring,
                    totals,
                    self.params.reg_lambda,
                    self.params.min_data_in_leaf,
                ),
                FeatureKind::Categorical => categorical_split_query(
                    absorbed,
                    self.fx.ring,
                    totals,
                    self.params.reg_lambda,
                    self.params.min_data_in_leaf,
                ),
            };
            queries.push((feat.clone(), *rel, kind, q.to_string()));
        }
        // Stage 2 (parallel): run the split queries.
        let sqls: Vec<String> = queries.iter().map(|(_, _, _, s)| s.clone()).collect();
        let start = Instant::now();
        let results = scheduler::run_parallel(self.fx.set.db, &sqls, self.params.threads);
        let elapsed = start.elapsed();
        self.stats.split_queries += sqls.len() as u64;
        self.stats.split_time += elapsed;
        let per = elapsed / (sqls.len().max(1) as u32);
        self.stats
            .split_durations
            .extend(std::iter::repeat_n(per, sqls.len()));
        // Pick the best candidate by exact gain.
        let [n0, n1] = self.fx.ring.components();
        let mut best: Option<CandidateSplit> = None;
        for ((feat, rel, kind, _), result) in queries.iter().zip(results) {
            let t = result?;
            if t.num_rows() == 0 {
                continue;
            }
            let val = t.column(None, "val").map_err(TrainError::from)?.get(0);
            let c0 = match t.column(None, n0)?.f64_at(0) {
                Some(v) => v,
                None => continue,
            };
            let c1 = t.column(None, n1)?.f64_at(0).unwrap_or(0.0);
            let left = NodeTotals { c0, c1 };
            let Some(gain) = self.exact_gain(totals, left) else {
                continue;
            };
            if gain <= self.min_gain_threshold() {
                continue;
            }
            let cond = match (kind, &val) {
                (FeatureKind::Numeric, v) => match v.as_f64() {
                    Some(x) => SplitCondition::LtEq(x),
                    None => continue,
                },
                (FeatureKind::Categorical, Datum::Str(s)) => SplitCondition::EqStr(s.clone()),
                (FeatureKind::Categorical, v) => match v.as_f64() {
                    Some(x) => SplitCondition::EqNum(x),
                    None => continue,
                },
            };
            let candidate = CandidateSplit {
                split: Split {
                    feature: feat.clone(),
                    relation: self.fx.set.graph.name(*rel).to_string(),
                    cond,
                    default_left: false,
                },
                rel: *rel,
                gain,
                left,
            };
            if best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(candidate);
            }
        }
        Ok(best)
    }

    /// Grouping for a feature's absorption: per-distinct-value, or
    /// histogram bins when `max_bins > 0` (Appendix D.3). Bin ranges come
    /// from a one-off `MIN`/`MAX` query per feature, cached for the tree.
    fn group_spec(&mut self, feat: &str, rel: RelId) -> Result<crate::messages::GroupSpec> {
        use crate::messages::GroupSpec;
        if self.params.max_bins == 0 || self.fx.set.feature_kind(feat) == FeatureKind::Categorical {
            return Ok(GroupSpec::plain(feat));
        }
        if let Some(&(lo, width)) = self.bin_ranges.get(feat) {
            return Ok(GroupSpec::binned(feat, lo, width));
        }
        let sql = format!(
            "SELECT MIN({feat}) AS lo, MAX({feat}) AS hi FROM {}",
            self.fx.table_of(rel)
        );
        let t = self
            .fx
            .set
            .db
            .query(&sql)
            .map_err(|e| TrainError::Engine(format!("{e} in: {sql}")))?;
        let lo = t.scalar_f64("lo").unwrap_or(0.0);
        let hi = t.scalar_f64("hi").unwrap_or(0.0);
        let width = ((hi - lo) / self.params.max_bins as f64).max(f64::MIN_POSITIVE);
        self.bin_ranges.insert(feat.to_string(), (lo, width));
        Ok(GroupSpec::binned(feat, lo, width))
    }

    fn allowed_for(&self, depth: usize) -> Vec<(String, RelId)> {
        let Some(clusters) = &self.cpt_clusters else {
            return self.features.clone();
        };
        // Root split of a CPT tree may use any feature.
        if depth == 0 || self.active_cluster.is_none() {
            return self.features.clone();
        }
        let members = &clusters[self.active_cluster.expect("checked")];
        self.features
            .iter()
            .filter(|(_, r)| members.contains(r))
            .cloned()
            .collect()
    }

    /// Once the root split picks a relation, lock the tree to a cluster
    /// containing it.
    fn lock_cluster(&mut self, root_rel: RelId) {
        if let Some(clusters) = &self.cpt_clusters {
            self.active_cluster = clusters.iter().position(|c| c.contains(&root_rel));
        }
    }

    /// Grow a tree (Algorithm 1). `root_ctx` carries predicates from an
    /// enclosing context (always empty today); totals are computed fresh.
    pub fn grow(&mut self) -> Result<Tree> {
        let params = self.params;
        params.validate()?;
        // The factorizer may be shared across trees (boosting); record its
        // counters at entry so this tree's stats are deltas.
        let fx_base_queries = self.fx.stats.message_queries;
        let fx_base_time = self.fx.stats.message_time;
        let fx_base_durations = self.fx.stats.message_durations.len();
        let fx_base_hits = self.fx.stats.cache_hits;
        let fx_base_drops = self.fx.stats.identity_drops;
        let target = self.fx.set.target_rel();
        let ctx = NodeContext::root();
        let (c0, c1) = self.fx.totals(target, &ctx)?;
        let totals = NodeTotals { c0, c1 };
        let mut tree = Tree::single_leaf(self.leaf_value(totals), totals.c0);
        if totals.c0 == 0.0 {
            return Ok(tree);
        }
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        let allowed = self.allowed_for(0);
        if let Some(cand) = self.get_best_split(&ctx, totals, &allowed)? {
            heap.push(self.heap_item(PendingNode {
                node: 0,
                depth: 0,
                ctx,
                totals,
                candidate: cand,
            }));
        }
        let mut num_leaves = 1;
        while num_leaves < params.num_leaves {
            let Some(HeapItem { entry, .. }) = heap.pop() else {
                break;
            };
            let PendingNode {
                node,
                depth,
                ctx,
                totals,
                candidate,
            } = entry;
            let right_totals = NodeTotals {
                c0: totals.c0 - candidate.left.c0,
                c1: totals.c1 - candidate.left.c1,
            };
            // Install the split.
            let left_id = tree.nodes.len();
            let right_id = left_id + 1;
            tree.nodes.push(TreeNode {
                split: None,
                left: 0,
                right: 0,
                value: self.leaf_value(candidate.left),
                weight: candidate.left.c0,
                depth: depth + 1,
            });
            tree.nodes.push(TreeNode {
                split: None,
                left: 0,
                right: 0,
                value: self.leaf_value(right_totals),
                weight: right_totals.c0,
                depth: depth + 1,
            });
            tree.nodes[node].split = Some(candidate.split.clone());
            tree.nodes[node].left = left_id;
            tree.nodes[node].right = right_id;
            num_leaves += 1;
            if node == 0 {
                self.lock_cluster(candidate.rel);
            }
            // Evaluate the children (unless depth-capped).
            if params.max_depth > 0 && depth + 1 >= params.max_depth {
                continue;
            }
            let split_rel = candidate.rel;
            let allowed = self.allowed_for(depth + 1);
            for (child_id, child_totals, negated) in [
                (left_id, candidate.left, false),
                (right_id, right_totals, true),
            ] {
                let child_ctx =
                    ctx.with_pred(split_rel, Pred::from_split(&candidate.split, negated));
                if let Some(cand) = self.get_best_split(&child_ctx, child_totals, &allowed)? {
                    heap.push(self.heap_item(PendingNode {
                        node: child_id,
                        depth: depth + 1,
                        ctx: child_ctx,
                        totals: child_totals,
                        candidate: cand,
                    }));
                }
            }
        }
        // Fold the factorizer stats accumulated by *this* tree into ours.
        self.stats.message_queries = self.fx.stats.message_queries - fx_base_queries;
        self.stats.message_time = self.fx.stats.message_time - fx_base_time;
        self.stats.message_durations =
            self.fx.stats.message_durations[fx_base_durations..].to_vec();
        self.stats.cache_hits = self.fx.stats.cache_hits - fx_base_hits;
        self.stats.identity_drops = self.fx.stats.identity_drops - fx_base_drops;
        Ok(tree)
    }

    fn heap_item(&self, entry: PendingNode) -> HeapItem {
        let priority = match self.params.growth {
            Growth::BestFirst => (0, entry.candidate.gain),
            Growth::DepthWise => (-(entry.depth as i64), entry.candidate.gain),
        };
        HeapItem { priority, entry }
    }
}

/// Train a single regression decision tree over the join graph using the
/// variance semi-ring. The returned leaf values are mean target values.
pub fn train_decision_tree(set: &Dataset, params: &TrainParams) -> Result<(Tree, TrainStats)> {
    train_decision_tree_opts(set, params, true)
}

/// As [`train_decision_tree`], with cross-node message sharing optionally
/// disabled (the `Batch` ablation).
pub fn train_decision_tree_opts(
    set: &Dataset,
    params: &TrainParams,
    share_messages: bool,
) -> Result<(Tree, TrainStats)> {
    use joinboost_semiring::Objective;
    if params.objective != Objective::SquaredError {
        return Err(TrainError::Invalid(
            "decision trees use the rmse objective; use train_gbm for other losses".into(),
        ));
    }
    let mut fx = Factorizer::new(set, RingKind::Variance);
    let target = set.target_rel();
    fx.set_annotation(
        target,
        vec![
            joinboost_sql::ast::Expr::int(1),
            joinboost_sql::ast::Expr::col(set.target_column.clone()),
        ],
    );
    let features = set.features();
    let mut grower = TreeGrower::new(&mut fx, params, features);
    grower.share_messages_across_nodes = share_messages;
    let tree = grower.grow()?;
    let stats = grower.stats.clone();
    Ok((tree, stats))
}
