//! Random forests over joins (Section 5.5.2).
//!
//! Each tree trains on a row sample and a feature sample. For snowflake
//! schemas the fact table is 1-1 with `R⋈`, so sampling the fact table
//! directly is uniform (the paper's minor optimization); otherwise
//! [`crate::sampling::ancestral_sample`] draws join tuples and the tree
//! trains over the materialized sample. Trees are independent, so they
//! train in parallel (the paper's tree-wise inter-query parallelism,
//! −35 % on Favorita).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use joinboost_graph::{JoinGraph, RelId};
use joinboost_semiring::Objective;
use joinboost_sql::ast::Expr;

use crate::dataset::Dataset;
use crate::error::{Result, TrainError};
use crate::messages::Factorizer;
use crate::params::TrainParams;
use crate::predict;
use crate::sampling::ancestral_sample;
use crate::sqlgen::RingKind;
use crate::trainer::{TrainStats, TreeGrower};
use crate::tree::Tree;

/// A trained random forest (predictions are averaged).
#[derive(Debug, Clone)]
pub struct RfModel {
    /// The bagged trees.
    pub trees: Vec<Tree>,
    /// Query counters and timings accumulated over all trees.
    pub stats: TrainStats,
}

impl RfModel {
    /// Averaged prediction for every row of a materialized feature table.
    pub fn predict(&self, table: &joinboost_engine::Table) -> Vec<f64> {
        predict::predict_bagged(&self.trees, table)
    }

    /// Averaged score for one feature row: the single-row entry point.
    pub fn score(&self, row: &dyn crate::tree::FeatureRow) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.score(row)).sum::<f64>() / self.trees.len() as f64
    }
}

/// Train a random forest over the join graph.
pub fn train_random_forest(set: &Dataset, params: &TrainParams) -> Result<RfModel> {
    params.validate()?;
    if params.objective != Objective::SquaredError {
        return Err(TrainError::Invalid(
            "random forests support the rmse objective".into(),
        ));
    }
    let all_features = set.features();
    if all_features.is_empty() {
        return Err(TrainError::Invalid("no features to train on".into()));
    }
    let n_feat = ((all_features.len() as f64 * params.feature_fraction).ceil() as usize)
        .clamp(1, all_features.len());

    // Per-tree preparation (sampled fact tables) must happen up front so
    // trees can run in parallel afterwards.
    enum TreePlan {
        /// Factorized training: fact relation redirected to a sampled copy.
        Snowflake { fact: RelId, table: String },
        /// Materialized ancestral sample trained as a single wide table.
        Sampled { table: String },
    }
    let fact = set.graph.snowflake_fact();
    let mut plans: Vec<(TreePlan, Vec<(String, RelId)>)> = Vec::new();
    for t in 0..params.num_iterations {
        let mut rng = StdRng::seed_from_u64(params.seed.wrapping_add(t as u64 * 7919));
        // Feature sample.
        let mut feats = all_features.clone();
        feats.shuffle(&mut rng);
        feats.truncate(n_feat);
        // Row sample.
        let plan = match fact {
            Some(f) => {
                // Sample positions first, then gather only those rows —
                // a partitioned backend takes each row from the shard
                // that owns it instead of shipping whole partitions.
                let n = set
                    .db
                    .row_count(set.graph.name(f))
                    .map_err(TrainError::from)?;
                let take = ((n as f64 * params.bagging_fraction).round() as usize).clamp(1, n);
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.shuffle(&mut rng);
                idx.truncate(take);
                let sample = set
                    .db
                    .gather_rows(set.graph.name(f), &idx)
                    .map_err(TrainError::from)?;
                let name = set.fresh_table("rf_fact");
                set.db
                    .create_table(&name, sample)
                    .map_err(TrainError::from)?;
                TreePlan::Snowflake {
                    fact: f,
                    table: name,
                }
            }
            None => {
                // General join graphs: ancestral sampling over R⋈.
                let total = estimate_join_size(set)?;
                let take = ((total as f64 * params.bagging_fraction).round() as usize).max(1);
                let sample = ancestral_sample(
                    set.db,
                    &set.graph,
                    set.target_rel(),
                    take,
                    params.seed.wrapping_add(t as u64 * 104729),
                )?;
                let name = set.fresh_table("rf_sample");
                set.db
                    .create_table(&name, sample)
                    .map_err(TrainError::from)?;
                TreePlan::Sampled { table: name }
            }
        };
        plans.push((plan, feats));
    }

    // Train trees (in parallel when params.threads > 1).
    let results: Vec<Result<(Tree, TrainStats)>> = if params.threads > 1 {
        let chunks = std::sync::Mutex::new(Vec::with_capacity(plans.len()));
        crossbeam::thread::scope(|scope| {
            let plans_ref = &plans;
            let chunks_ref = &chunks;
            let mut handles = Vec::new();
            for worker in 0..params.threads.min(plans.len()) {
                handles.push(scope.spawn(move |_| {
                    for (i, (plan, feats)) in plans_ref.iter().enumerate() {
                        if i % params.threads.min(plans_ref.len()) != worker {
                            continue;
                        }
                        let r = train_one_tree(set, params, plan, feats);
                        chunks_ref.lock().expect("rf lock").push((i, r));
                    }
                }));
            }
            for h in handles {
                h.join().expect("rf worker");
            }
        })
        .expect("rf scope");
        let mut v = chunks.into_inner().expect("rf lock");
        v.sort_by_key(|(i, _)| *i);
        v.into_iter().map(|(_, r)| r).collect()
    } else {
        plans
            .iter()
            .map(|(plan, feats)| train_one_tree(set, params, plan, feats))
            .collect()
    };

    let mut model = RfModel {
        trees: Vec::with_capacity(results.len()),
        stats: TrainStats::default(),
    };
    for r in results {
        let (tree, stats) = r?;
        model.trees.push(tree);
        model.stats.merge(&stats);
    }
    // Helper-fn for closures above; see bottom of file.
    #[allow(clippy::items_after_statements)]
    fn train_one_tree(
        set: &Dataset,
        params: &TrainParams,
        plan: &TreePlan,
        feats: &[(String, RelId)],
    ) -> Result<(Tree, TrainStats)> {
        match plan {
            TreePlan::Snowflake { fact, table } => {
                let mut fx = Factorizer::new(set, RingKind::Variance);
                fx.set_table(*fact, table.clone());
                fx.set_annotation(
                    set.target_rel(),
                    vec![Expr::int(1), Expr::col(set.target_column.clone())],
                );
                let mut grower = TreeGrower::new(&mut fx, params, feats.to_vec());
                let tree = grower.grow()?;
                Ok((tree, grower.stats.clone()))
            }
            TreePlan::Sampled { table } => {
                // Single-relation graph over the materialized sample.
                let mut g1 = JoinGraph::new();
                let names: Vec<String> = feats.iter().map(|(f, _)| f.clone()).collect();
                let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
                g1.add_relation(table, &name_refs)?;
                let sub = Dataset::new(set.db, g1, table, &set.target_column)?;
                let mut fx = Factorizer::new(&sub, RingKind::Variance);
                fx.set_annotation(
                    sub.target_rel(),
                    vec![Expr::int(1), Expr::col(sub.target_column.clone())],
                );
                let feats1: Vec<(String, RelId)> =
                    names.iter().map(|f| (f.clone(), 0usize)).collect();
                let mut grower = TreeGrower::new(&mut fx, params, feats1);
                let tree = grower.grow()?;
                Ok((tree, grower.stats.clone()))
            }
        }
    }
    Ok(model)
}

/// `|R⋈|` via one factorized COUNT.
fn estimate_join_size(set: &Dataset) -> Result<usize> {
    let mut fx = Factorizer::new(set, RingKind::Variance);
    fx.set_annotation(
        set.target_rel(),
        vec![Expr::int(1), Expr::col(set.target_column.clone())],
    );
    let (c, _) = fx.totals(set.target_rel(), &crate::messages::NodeContext::root())?;
    Ok(c as usize)
}
