//! Inter-query parallelism (Section 5.5.3).
//!
//! DBMSes give diminishing returns from intra-query parallelism on the
//! small aggregation queries JoinBoost emits, so JoinBoost also
//! parallelizes *across* queries: each query tracks its dependencies, and
//! when they complete it enters a FIFO run queue drained by worker
//! threads. Used for split-candidate queries (independent per feature),
//! messages on independent branches, and trees of a random forest.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use joinboost_engine::Table;

use crate::backend::SqlBackend;
use crate::error::{Result, TrainError};

/// One schedulable query.
#[derive(Debug, Clone)]
pub struct Task {
    /// The SQL statement to execute.
    pub sql: String,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
}

impl Task {
    /// A task with no dependencies.
    pub fn new(sql: impl Into<String>) -> Task {
        Task {
            sql: sql.into(),
            deps: Vec::new(),
        }
    }

    /// A task that runs only after `deps` complete.
    pub fn after(sql: impl Into<String>, deps: Vec<usize>) -> Task {
        Task {
            sql: sql.into(),
            deps,
        }
    }
}

struct DagState {
    /// Remaining dependency count per task; `usize::MAX` marks running/done.
    remaining: Vec<usize>,
    ready: VecDeque<usize>,
    done: Vec<bool>,
    results: Vec<Option<Result<Table>>>,
    pending: usize,
}

/// Execute a dependency DAG of SQL statements over `threads` workers.
/// Results are returned in task order. A failed task still releases its
/// dependents (they will typically fail on a missing table, surfacing the
/// root cause in their own error).
pub fn run_dag(db: &dyn SqlBackend, tasks: &[Task], threads: usize) -> Vec<Result<Table>> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    // Validate deps to avoid deadlocks on malformed input.
    for (i, t) in tasks.iter().enumerate() {
        for &d in &t.deps {
            assert!(d < n && d != i, "task {i} has invalid dependency {d}");
        }
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        // Sequential fast path (still respects dependency order).
        return run_sequential(db, tasks);
    }
    let mut remaining: Vec<usize> = tasks.iter().map(|t| t.deps.len()).collect();
    let mut ready = VecDeque::new();
    for (i, &r) in remaining.iter().enumerate() {
        if r == 0 {
            ready.push_back(i);
        }
    }
    // Dependents adjacency.
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, t) in tasks.iter().enumerate() {
        for &d in &t.deps {
            dependents[d].push(i);
        }
    }
    for r in &mut remaining {
        if *r == 0 {
            *r = usize::MAX;
        }
    }
    let state = Mutex::new(DagState {
        remaining,
        ready,
        done: vec![false; n],
        results: (0..n).map(|_| None).collect(),
        pending: n,
    });
    // Workers park here when the ready queue is momentarily empty (their
    // dependencies are still executing elsewhere) instead of spinning;
    // every completion that releases dependents — and the final one —
    // wakes them.
    let wake = Condvar::new();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let next = {
                    let mut st = state.lock().expect("scheduler lock");
                    loop {
                        if st.pending == 0 {
                            return;
                        }
                        match st.ready.pop_front() {
                            Some(i) => break i,
                            None => st = wake.wait(st).expect("scheduler lock"),
                        }
                    }
                };
                let result = db
                    .execute(&tasks[next].sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {}", tasks[next].sql)));
                let mut st = state.lock().expect("scheduler lock");
                st.results[next] = Some(result);
                st.done[next] = true;
                st.pending -= 1;
                let mut released = 0usize;
                for &dep in &dependents[next] {
                    if st.remaining[dep] != usize::MAX {
                        st.remaining[dep] -= 1;
                        if st.remaining[dep] == 0 {
                            st.remaining[dep] = usize::MAX;
                            st.ready.push_back(dep);
                            released += 1;
                        }
                    }
                }
                let finished = st.pending == 0;
                drop(st);
                if finished {
                    wake.notify_all();
                } else {
                    for _ in 0..released {
                        wake.notify_one();
                    }
                }
            });
        }
    })
    .expect("scheduler scope");
    state
        .into_inner()
        .expect("scheduler lock")
        .results
        .into_iter()
        .map(|r| r.expect("all tasks executed"))
        .collect()
}

fn run_sequential(db: &dyn SqlBackend, tasks: &[Task]) -> Vec<Result<Table>> {
    // Topological order via repeated sweeps (task lists are tiny).
    let n = tasks.len();
    let mut done = vec![false; n];
    let mut results: Vec<Option<Result<Table>>> = (0..n).map(|_| None).collect();
    let mut progressed = true;
    while progressed {
        progressed = false;
        for i in 0..n {
            if done[i] || !tasks[i].deps.iter().all(|&d| done[d]) {
                continue;
            }
            results[i] = Some(
                db.execute(&tasks[i].sql)
                    .map_err(|e| TrainError::Engine(format!("{e} in: {}", tasks[i].sql))),
            );
            done[i] = true;
            progressed = true;
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("acyclic task graph"))
        .collect()
}

/// Run independent queries in parallel, preserving input order.
pub fn run_parallel(db: &dyn SqlBackend, sqls: &[String], threads: usize) -> Vec<Result<Table>> {
    let tasks: Vec<Task> = sqls.iter().map(Task::new).collect();
    run_dag(db, &tasks, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database, Table as ETable};

    fn db() -> Database {
        let db = Database::in_memory();
        db.create_table(
            "nums",
            ETable::from_columns(vec![("x", Column::int((1..=100).collect()))]),
        )
        .unwrap();
        db
    }

    #[test]
    fn parallel_queries_return_in_order() {
        let db = db();
        let sqls: Vec<String> = (1..=8)
            .map(|i| format!("SELECT SUM(x * {i}) AS s FROM nums"))
            .collect();
        let results = run_parallel(&db, &sqls, 4);
        for (i, r) in results.iter().enumerate() {
            let t = r.as_ref().unwrap();
            assert_eq!(t.scalar_f64("s").unwrap(), 5050.0 * (i as f64 + 1.0));
        }
    }

    #[test]
    fn dag_respects_dependencies() {
        let db = db();
        let tasks = vec![
            Task::new("CREATE TABLE stage1 AS SELECT SUM(x) AS s FROM nums"),
            Task::after(
                "CREATE TABLE stage2 AS SELECT s * 2 AS s2 FROM stage1",
                vec![0],
            ),
            Task::after("SELECT s2 FROM stage2", vec![1]),
        ];
        let results = run_dag(&db, &tasks, 4);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok());
        let t = results[2].as_ref().unwrap();
        assert_eq!(t.scalar_f64("s2").unwrap(), 10100.0);
    }

    #[test]
    fn failed_task_reports_error_and_releases_dependents() {
        let db = db();
        let tasks = vec![
            Task::new("SELECT nope FROM missing_table"),
            Task::after("SELECT SUM(x) AS s FROM nums", vec![0]),
        ];
        let results = run_dag(&db, &tasks, 2);
        assert!(results[0].is_err());
        assert!(
            results[1].is_ok(),
            "dependent still runs (its input exists)"
        );
    }

    #[test]
    fn sequential_path_matches_parallel() {
        let db = db();
        let sqls = vec!["SELECT COUNT(*) AS c FROM nums".to_string()];
        let seq = run_parallel(&db, &sqls, 1);
        assert_eq!(seq[0].as_ref().unwrap().scalar_f64("c").unwrap(), 100.0);
    }

    #[test]
    #[should_panic(expected = "invalid dependency")]
    fn invalid_dependency_panics() {
        let db = db();
        let tasks = vec![Task::after("SELECT 1", vec![5])];
        let _ = run_dag(&db, &tasks, 2);
    }
}
