//! SQL generation: symbolic semi-ring algebra, split-criteria queries
//! (paper Example 2 / Appendix A) and per-objective gradient/Hessian
//! expressions (Appendix B, Table 3).
//!
//! JoinBoost's Semi-ring Library "translates math expressions in the
//! compiler-generated queries (×, +, lift) into SQL aggregation functions"
//! (Section 5.2). Here that translation is purely symbolic: annotations
//! are vectors of [`Expr`]s and `⊗` composes them with constant folding,
//! so identity annotations vanish from the generated SQL.

use joinboost_semiring::Objective;
use joinboost_sql::ast::{BinaryOp, Expr, OrderByItem, Query, SelectItem, TableRef, Value};

/// Which aggregate pair drives training.
///
/// The paper shows `q` need not be materialized for the variance ring
/// (Section 5.3.1), so both rings reduce to two components with the *same*
/// bilinear `⊗` table: `(a₀,a₁) ⊗ (b₀,b₁) = (a₀b₀, a₁b₀ + a₀b₁)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingKind {
    /// `(c, s)` — count and sum of the (residual) target. Criterion:
    /// reduction in variance. Leaf value: `s/c`.
    Variance,
    /// `(h, g)` — Hessian and gradient sums. Criterion: second-order
    /// gain. Leaf value: `−g/(h+λ)`.
    Gradient,
}

impl RingKind {
    /// Component column suffixes, in storage order.
    pub fn components(self) -> [&'static str; 2] {
        match self {
            RingKind::Variance => ["c", "s"],
            RingKind::Gradient => ["h", "g"],
        }
    }
}

/// Is this expression the literal `0` / `1`?
fn is_zero(e: &Expr) -> bool {
    match e {
        Expr::Literal(Value::Int(0)) => true,
        Expr::Literal(Value::Float(v)) => *v == 0.0,
        _ => false,
    }
}

fn is_one(e: &Expr) -> bool {
    match e {
        Expr::Literal(Value::Int(1)) => true,
        Expr::Literal(Value::Float(v)) => *v == 1.0,
        _ => false,
    }
}

/// `a * b` with constant folding of 0/1 factors.
pub fn fold_mul(a: &Expr, b: &Expr) -> Expr {
    if is_zero(a) || is_zero(b) {
        return Expr::int(0);
    }
    if is_one(a) {
        return b.clone();
    }
    if is_one(b) {
        return a.clone();
    }
    Expr::mul(a.clone(), b.clone())
}

/// `a + b` with constant folding of 0 terms.
pub fn fold_add(a: Expr, b: Expr) -> Expr {
    if is_zero(&a) {
        return b;
    }
    if is_zero(&b) {
        return a;
    }
    Expr::add(a, b)
}

/// The identity annotation `1̄ = (1, 0)`.
pub fn identity_annotation() -> Vec<Expr> {
    vec![Expr::int(1), Expr::int(0)]
}

/// Symbolic `⊗` of two 2-component annotations:
/// `(a₀b₀, a₁b₀ + a₀b₁)`, with identity factors folded away.
pub fn symbolic_mul(a: &[Expr], b: &[Expr]) -> Vec<Expr> {
    debug_assert_eq!(a.len(), 2);
    debug_assert_eq!(b.len(), 2);
    vec![
        fold_mul(&a[0], &b[0]),
        fold_add(fold_mul(&a[1], &b[0]), fold_mul(&a[0], &b[1])),
    ]
}

/// `⊗`-fold a list of annotations (identity if empty).
pub fn fold_annotations(anns: &[Vec<Expr>]) -> Vec<Expr> {
    let mut acc = identity_annotation();
    for a in anns {
        acc = symbolic_mul(&acc, a);
    }
    acc
}

/// Variance-reduction criterion over columns `(c, s)` with node totals
/// `(c_total, s_total)` interpolated as constants (paper Example 2):
///
/// `−(S/C)·S + (s/c)·s + ((S−s)/(C−c))·(S−s)`
pub fn variance_criterion(c_total: f64, s_total: f64) -> Expr {
    let c = Expr::col("c");
    let s = Expr::col("s");
    let ct = Expr::float(c_total);
    let st = Expr::float(s_total);
    let term_total = Expr::mul(Expr::neg(Expr::div(st.clone(), ct.clone())), st.clone());
    let term_left = Expr::mul(Expr::div(s.clone(), c.clone()), s.clone());
    let s_r = Expr::sub(st, s);
    let c_r = Expr::sub(ct, c);
    let term_right = Expr::mul(Expr::div(s_r.clone(), c_r), s_r);
    Expr::add(Expr::add(term_total, term_left), term_right)
}

/// Second-order gain criterion over columns `(h, g)` with node totals and
/// regularization λ (Appendix B; the constant 0.5 factor and the α offset
/// are applied by the trainer — they do not change the argmax):
///
/// `g²/(h+λ) + (G−g)²/(H−h+λ) − G²/(H+λ)`
pub fn gradient_criterion(h_total: f64, g_total: f64, lambda: f64) -> Expr {
    let h = Expr::col("h");
    let g = Expr::col("g");
    let term = |gn: Expr, hd: Expr| -> Expr {
        // (gn / hd) * gn  — the paper's overflow-safe form of gn²/hd.
        Expr::mul(Expr::div(gn.clone(), hd), gn)
    };
    let left = term(g.clone(), Expr::add(h.clone(), Expr::float(lambda)));
    let right = term(
        Expr::sub(Expr::float(g_total), g),
        Expr::add(Expr::sub(Expr::float(h_total), h), Expr::float(lambda)),
    );
    let total = term(Expr::float(g_total), Expr::float(h_total + lambda));
    Expr::sub(Expr::add(left, right), total)
}

/// Totals of a node, as `(component0, component1)` = `(C,S)` or `(H,G)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTotals {
    /// First component (`C` count or `H` Hessian sum).
    pub c0: f64,
    /// Second component (`S` target sum or `G` gradient sum).
    pub c1: f64,
}

/// Build the best-split query for a **numeric** feature (Example 2):
/// window prefix sums over the per-value aggregates, criteria, argmax.
///
/// `absorbed` must produce columns `val, c0, c1` (one row per distinct
/// feature value, ordered arbitrarily). The middle layer orders its rows
/// by `val`, so criteria ties resolve to the smallest value on *every*
/// backend regardless of the absorbed row order (group scan order on the
/// engine, merge order on a sharded backend).
pub fn numeric_split_query(
    absorbed: Query,
    ring: RingKind,
    totals: NodeTotals,
    lambda: f64,
    min_leaf: f64,
) -> Query {
    let [n0, n1] = ring.components();
    // Middle: running prefix sums ordered by value.
    let middle = Query {
        items: vec![
            SelectItem::new(Expr::col("val")),
            SelectItem::aliased(
                Expr::WindowSum {
                    arg: Box::new(Expr::col(n0)),
                    order_by: Box::new(Expr::col("val")),
                },
                n0,
            ),
            SelectItem::aliased(
                Expr::WindowSum {
                    arg: Box::new(Expr::col(n1)),
                    order_by: Box::new(Expr::col("val")),
                },
                n1,
            ),
        ],
        from: Some(TableRef::Subquery {
            query: Box::new(absorbed),
            alias: Some("g".into()),
        }),
        order_by: vec![OrderByItem {
            expr: Expr::col("val"),
            desc: false,
        }],
        ..Default::default()
    };
    outer_split_query(middle, ring, totals, lambda, min_leaf)
}

/// Build the best-split query for a **categorical** feature: per-value
/// aggregates directly, no prefix sums. Rows are ordered by `val` for the
/// same backend-independent tie-breaking as the numeric query.
pub fn categorical_split_query(
    absorbed: Query,
    ring: RingKind,
    totals: NodeTotals,
    lambda: f64,
    min_leaf: f64,
) -> Query {
    let [n0, n1] = ring.components();
    let middle = Query {
        items: vec![
            SelectItem::new(Expr::col("val")),
            SelectItem::new(Expr::col(n0)),
            SelectItem::new(Expr::col(n1)),
        ],
        from: Some(TableRef::Subquery {
            query: Box::new(absorbed),
            alias: Some("g".into()),
        }),
        order_by: vec![OrderByItem {
            expr: Expr::col("val"),
            desc: false,
        }],
        ..Default::default()
    };
    outer_split_query(middle, ring, totals, lambda, min_leaf)
}

fn outer_split_query(
    middle: Query,
    ring: RingKind,
    totals: NodeTotals,
    lambda: f64,
    min_leaf: f64,
) -> Query {
    let [n0, n1] = ring.components();
    // Aliases inside the criteria are the generic (c, s)/(h, g) names.
    let criteria = match ring {
        RingKind::Variance => variance_criterion(totals.c0, totals.c1),
        RingKind::Gradient => gradient_criterion(totals.c0, totals.c1, lambda),
    };
    // The left-side weight (c or h) must leave at least `min_leaf` on both
    // sides (degenerate boundary splits are filtered here, matching the
    // division-by-zero NULL semantics).
    let guard = Expr::and(
        Expr::binary(BinaryOp::GtEq, Expr::col(n0), Expr::float(min_leaf)),
        Expr::binary(
            BinaryOp::GtEq,
            Expr::sub(Expr::float(totals.c0), Expr::col(n0)),
            Expr::float(min_leaf),
        ),
    );
    Query {
        items: vec![
            SelectItem::new(Expr::col("val")),
            SelectItem::new(Expr::col(n0)),
            SelectItem::new(Expr::col(n1)),
            SelectItem::aliased(criteria, "criteria"),
        ],
        from: Some(TableRef::Subquery {
            query: Box::new(middle),
            alias: Some("w".into()),
        }),
        where_clause: Some(guard),
        order_by: vec![OrderByItem {
            expr: Expr::col("criteria"),
            desc: true,
        }],
        limit: Some(1),
        ..Default::default()
    }
}

/// The structural skeleton of a numeric best-split query, as recognized
/// back out of its SQL by partitioned backends (the shard-local split
/// evaluation of `DESIGN.md` § "Distributed split evaluation").
///
/// [`numeric_split_query`] emits exactly three layers; this type names the
/// pieces a distributed planner needs to push the outer two layers to the
/// shards: the component column names, the criteria expression (a function
/// of the two prefix-sum columns only) and the `min_leaf` guard.
#[derive(Debug, Clone)]
pub struct SplitQueryShape {
    /// Name of the `val` column (the candidate split values).
    pub val: String,
    /// Names of the two aggregate components (`["c","s"]` or `["h","g"]`)
    /// as they appear in the middle layer's output (and, via the window
    /// arguments, in the inner absorbed query's output).
    pub components: [String; 2],
    /// The outer layer's criteria expression over the component columns.
    pub criteria: Expr,
    /// The outer layer's `WHERE` guard (the `min_leaf` filter).
    pub guard: Option<Expr>,
}

/// Recognize the three-layer numeric split query emitted by
/// [`numeric_split_query`]: an argmax outer layer (`ORDER BY criteria
/// DESC LIMIT 1`) over a window-prefix-sum middle layer (`SUM(..) OVER
/// (ORDER BY val)`, `ORDER BY val`) over an absorbed `FROM`-subquery.
///
/// Returns the shape plus a reference to the inner absorbed query, or
/// `None` for any other query (categorical split queries — no window
/// layer — deliberately do not match: their per-value criteria need the
/// fully merged aggregates anyway).
pub fn split_pushdown_shape(q: &Query) -> Option<(SplitQueryShape, &Query)> {
    // Outer: SELECT val, n0, n1, <criteria> AS criteria FROM (middle) AS w
    //        [WHERE guard] ORDER BY criteria DESC LIMIT 1
    if q.limit != Some(1) || !q.joins.is_empty() || !q.group_by.is_empty() {
        return None;
    }
    let [o] = q.order_by.as_slice() else {
        return None;
    };
    if !o.desc {
        return None;
    }
    let Expr::Column { table: None, name } = &o.expr else {
        return None;
    };
    let order_col = name;
    let [i_val, i0, i1, i_crit] = q.items.as_slice() else {
        return None;
    };
    let bare = |it: &SelectItem| -> Option<String> {
        match (&it.expr, &it.alias) {
            (Expr::Column { table: None, name }, None) => Some(name.clone()),
            _ => None,
        }
    };
    let (val, n0, n1) = (bare(i_val)?, bare(i0)?, bare(i1)?);
    if i_crit.alias.as_deref() != Some(order_col.as_str()) {
        return None;
    }
    let Some(TableRef::Subquery { query: middle, .. }) = &q.from else {
        return None;
    };
    // Middle: SELECT val, SUM(n0) OVER (ORDER BY val) AS n0,
    //         SUM(n1) OVER (ORDER BY val) AS n1 FROM (inner) AS g
    //         ORDER BY val
    if middle.limit.is_some()
        || !middle.joins.is_empty()
        || !middle.group_by.is_empty()
        || middle.where_clause.is_some()
    {
        return None;
    }
    let [m_ord] = middle.order_by.as_slice() else {
        return None;
    };
    if m_ord.desc || m_ord.expr != Expr::col(val.clone()) {
        return None;
    }
    let [m_val, m0, m1] = middle.items.as_slice() else {
        return None;
    };
    if bare(m_val).as_deref() != Some(val.as_str()) {
        return None;
    }
    // Each window item must be SUM(component) OVER (ORDER BY val), aliased
    // to the component name the outer layer reads.
    let window = |it: &SelectItem, outer_name: &str| -> Option<String> {
        let Expr::WindowSum { arg, order_by } = &it.expr else {
            return None;
        };
        if **order_by != Expr::col(val.clone()) || it.alias.as_deref() != Some(outer_name) {
            return None;
        }
        match arg.as_ref() {
            Expr::Column { table: None, name } => Some(name.clone()),
            _ => None,
        }
    };
    let inner0 = window(m0, &n0)?;
    let inner1 = window(m1, &n1)?;
    // The emitter aliases the inner components to the same names the
    // windows read; require that so the planner can find them by name.
    if inner0 != n0 || inner1 != n1 {
        return None;
    }
    let Some(TableRef::Subquery { query: inner, .. }) = &middle.from else {
        return None;
    };
    Some((
        SplitQueryShape {
            val,
            components: [n0, n1],
            criteria: i_crit.expr.clone(),
            guard: q.where_clause.clone(),
        },
        inner.as_ref(),
    ))
}

/// SQL expression for the gradient of `objective` given column expressions
/// for the target `y` and the raw prediction `p` (Table 3).
pub fn gradient_sql(objective: &Objective, y: Expr, p: Expr) -> Expr {
    let e = || Expr::sub(y.clone(), p.clone()); // ε = y − p
    match *objective {
        Objective::SquaredError => Expr::sub(p.clone(), y.clone()),
        Objective::AbsoluteError => Expr::func("SIGN", vec![Expr::sub(p.clone(), y.clone())]),
        Objective::Huber { delta } => Expr::Case {
            whens: vec![(
                Expr::binary(
                    BinaryOp::LtEq,
                    Expr::func("ABS", vec![e()]),
                    Expr::float(delta),
                ),
                Expr::sub(p.clone(), y.clone()),
            )],
            else_expr: Some(Box::new(Expr::mul(
                Expr::float(delta),
                Expr::func("SIGN", vec![Expr::sub(p.clone(), y.clone())]),
            ))),
        },
        Objective::Fair { c } => Expr::div(
            Expr::mul(Expr::float(c), Expr::sub(p.clone(), y.clone())),
            Expr::add(Expr::func("ABS", vec![e()]), Expr::float(c)),
        ),
        Objective::Poisson => Expr::sub(Expr::func("EXP", vec![p.clone()]), y.clone()),
        Objective::Quantile { alpha } => Expr::Case {
            whens: vec![(
                Expr::binary(BinaryOp::Lt, e(), Expr::int(0)),
                Expr::float(1.0 - alpha),
            )],
            else_expr: Some(Box::new(Expr::float(-alpha))),
        },
        Objective::Mape => Expr::div(
            Expr::func("SIGN", vec![Expr::sub(p.clone(), y.clone())]),
            Expr::func(
                "GREATEST",
                vec![Expr::func("ABS", vec![y.clone()]), Expr::int(1)],
            ),
        ),
        Objective::Logistic => Expr::sub(sigmoid_sql(p.clone()), y.clone()),
    }
}

/// SQL expression for the Hessian of `objective` (Table 3).
pub fn hessian_sql(objective: &Objective, y: Expr, p: Expr) -> Expr {
    match *objective {
        Objective::SquaredError
        | Objective::AbsoluteError
        | Objective::Huber { .. }
        | Objective::Quantile { .. }
        | Objective::Mape => Expr::int(1),
        Objective::Fair { c } => {
            let denom = Expr::add(
                Expr::func("ABS", vec![Expr::sub(y.clone(), p.clone())]),
                Expr::float(c),
            );
            Expr::div(Expr::float(c * c), Expr::mul(denom.clone(), denom))
        }
        Objective::Poisson => Expr::func("EXP", vec![p]),
        Objective::Logistic => {
            let s = sigmoid_sql(p);
            Expr::func(
                "GREATEST",
                vec![
                    Expr::mul(s.clone(), Expr::sub(Expr::float(1.0), s)),
                    Expr::float(1e-16),
                ],
            )
        }
    }
}

fn sigmoid_sql(p: Expr) -> Expr {
    Expr::div(
        Expr::float(1.0),
        Expr::add(Expr::float(1.0), Expr::func("EXP", vec![Expr::neg(p)])),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database, Table};

    #[test]
    fn symbolic_mul_folds_identity() {
        let lifted = vec![Expr::int(1), Expr::col("jb_s")];
        let id = identity_annotation();
        let prod = symbolic_mul(&lifted, &id);
        assert_eq!(prod, lifted, "identity must vanish");
        let msg = vec![Expr::col("c"), Expr::col("s")];
        let prod = symbolic_mul(&lifted, &msg);
        assert_eq!(prod[0].to_string(), "c");
        assert_eq!(prod[1].to_string(), "jb_s * c + s");
    }

    #[test]
    fn fold_annotations_of_identities_is_identity() {
        let anns = vec![identity_annotation(), identity_annotation()];
        assert_eq!(fold_annotations(&anns), identity_annotation());
    }

    #[test]
    fn variance_criterion_prints_like_paper() {
        let e = variance_criterion(8.0, 16.0);
        let sql = e.to_string();
        assert!(sql.contains("s / c"), "{sql}");
        assert!(sql.contains("16.0"), "{sql}");
    }

    #[test]
    fn numeric_split_query_runs_on_engine() {
        // Per-value aggregates: values 1..4 with c=1 and s=v; the best
        // split of s-values [1,2,5,6] is between 2 and 5 → val <= 2.
        let db = Database::in_memory();
        db.create_table(
            "g0",
            Table::from_columns(vec![
                ("val", Column::int(vec![1, 2, 3, 4])),
                ("c", Column::int(vec![1, 1, 1, 1])),
                ("s", Column::float(vec![1.0, 2.0, 5.0, 6.0])),
            ]),
        )
        .unwrap();
        let absorbed = joinboost_sql::parse_query("SELECT val, c, s FROM g0").unwrap();
        let q = numeric_split_query(
            absorbed,
            RingKind::Variance,
            NodeTotals { c0: 4.0, c1: 14.0 },
            0.0,
            1.0,
        );
        let t = db.query(&q.to_string()).unwrap();
        assert_eq!(t.num_rows(), 1);
        assert_eq!(
            t.column(None, "val").unwrap().get(0),
            joinboost_engine::Datum::Int(2)
        );
        assert_eq!(t.scalar_f64("c").unwrap(), 2.0);
        assert_eq!(t.scalar_f64("s").unwrap(), 3.0);
        // criteria = −14²/4 + 3²/2 + 11²/2 = −49 + 4.5 + 60.5 = 16.
        assert!((t.scalar_f64("criteria").unwrap() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn categorical_split_query_runs_on_engine() {
        let db = Database::in_memory();
        db.create_table(
            "g0",
            Table::from_columns(vec![
                ("val", Column::int(vec![10, 20, 30])),
                ("c", Column::int(vec![2, 2, 2])),
                ("s", Column::float(vec![2.0, 2.0, 10.0])),
            ]),
        )
        .unwrap();
        let absorbed = joinboost_sql::parse_query("SELECT val, c, s FROM g0").unwrap();
        let q = categorical_split_query(
            absorbed,
            RingKind::Variance,
            NodeTotals { c0: 6.0, c1: 14.0 },
            0.0,
            1.0,
        );
        let t = db.query(&q.to_string()).unwrap();
        assert_eq!(
            t.column(None, "val").unwrap().get(0),
            joinboost_engine::Datum::Int(30)
        );
    }

    #[test]
    fn split_shape_recognizes_numeric_but_not_categorical() {
        let absorbed = joinboost_sql::parse_query("SELECT val, c, s FROM g0").unwrap();
        let q = numeric_split_query(
            absorbed.clone(),
            RingKind::Variance,
            NodeTotals { c0: 4.0, c1: 14.0 },
            0.0,
            1.0,
        );
        let (shape, inner) = split_pushdown_shape(&q).expect("numeric shape");
        assert_eq!(shape.val, "val");
        assert_eq!(shape.components, ["c".to_string(), "s".to_string()]);
        assert!(shape.guard.is_some());
        assert_eq!(*inner, absorbed);
        // Survives a print → parse round-trip (what a sharded backend sees).
        let reparsed = joinboost_sql::parse_query(&q.to_string()).unwrap();
        assert!(split_pushdown_shape(&reparsed).is_some());
        let cat = categorical_split_query(
            absorbed,
            RingKind::Variance,
            NodeTotals { c0: 4.0, c1: 14.0 },
            0.0,
            1.0,
        );
        assert!(split_pushdown_shape(&cat).is_none(), "no window layer");
    }

    #[test]
    fn gradient_and_hessian_sql_match_rust_losses() {
        let db = Database::in_memory();
        db.create_table(
            "d",
            Table::from_columns(vec![
                ("y", Column::float(vec![3.0, 0.0, 1.0, 5.0, 2.0])),
                ("p", Column::float(vec![1.0, 2.0, 0.3, 4.9, -1.0])),
            ]),
        )
        .unwrap();
        let objectives = [
            Objective::SquaredError,
            Objective::AbsoluteError,
            Objective::Huber { delta: 1.0 },
            Objective::Fair { c: 2.0 },
            Objective::Poisson,
            Objective::Quantile { alpha: 0.9 },
            Objective::Mape,
        ];
        for obj in objectives {
            let gsql = gradient_sql(&obj, Expr::col("y"), Expr::col("p"));
            let hsql = hessian_sql(&obj, Expr::col("y"), Expr::col("p"));
            let t = db
                .query(&format!("SELECT y, p, {gsql} AS g, {hsql} AS h FROM d"))
                .unwrap();
            for i in 0..t.num_rows() {
                let y = t.column(None, "y").unwrap().f64_at(i).unwrap();
                let p = t.column(None, "p").unwrap().f64_at(i).unwrap();
                let g = t.column(None, "g").unwrap().f64_at(i).unwrap();
                let h = t.column(None, "h").unwrap().f64_at(i).unwrap();
                assert!(
                    (g - obj.gradient(y, p)).abs() < 1e-9,
                    "{} gradient at ({y},{p}): sql {g} rust {}",
                    obj.name(),
                    obj.gradient(y, p)
                );
                assert!(
                    (h - obj.hessian(y, p)).abs() < 1e-9,
                    "{} hessian at ({y},{p})",
                    obj.name()
                );
            }
        }
    }

    #[test]
    fn logistic_sql_matches_rust() {
        let db = Database::in_memory();
        db.create_table(
            "d",
            Table::from_columns(vec![
                ("y", Column::float(vec![0.0, 1.0, 1.0])),
                ("p", Column::float(vec![0.5, -2.0, 3.0])),
            ]),
        )
        .unwrap();
        let obj = Objective::Logistic;
        let gsql = gradient_sql(&obj, Expr::col("y"), Expr::col("p"));
        let hsql = hessian_sql(&obj, Expr::col("y"), Expr::col("p"));
        let t = db
            .query(&format!("SELECT y, p, {gsql} AS g, {hsql} AS h FROM d"))
            .unwrap();
        for i in 0..t.num_rows() {
            let y = t.column(None, "y").unwrap().f64_at(i).unwrap();
            let p = t.column(None, "p").unwrap().f64_at(i).unwrap();
            assert!(
                (t.column(None, "g").unwrap().f64_at(i).unwrap() - obj.gradient(y, p)).abs() < 1e-9
            );
            assert!(
                (t.column(None, "h").unwrap().f64_at(i).unwrap() - obj.hessian(y, p)).abs() < 1e-9
            );
        }
    }
}
