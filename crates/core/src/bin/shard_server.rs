//! Standalone shard server: hosts one JoinBoost engine behind the wire
//! protocol, for multi-process sharding over sockets.
//!
//! ```text
//! shard_server [--addr 127.0.0.1:0] [--allow-swap] [--fail-after N] [--stall]
//!              [--drop-every N] [--flaky-after N] [--grace-ms MS]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once bound (an ephemeral port with
//! `--addr 127.0.0.1:0`, the default), then serves until killed. The
//! `--fail-after`/`--stall` flags are the fault-injection knobs of the
//! test suite: after N requests the server behaves like a crashed
//! (respectively hung) process. `--drop-every`/`--flaky-after` inject
//! *recovering* faults — connections drop but the server keeps serving,
//! exercising the client's reconnect-and-replay path — and `--grace-ms`
//! sets how long a disconnected session's state survives.

use std::net::TcpListener;
use std::time::Duration;

use joinboost::backend::WireServer;
use joinboost_engine::{Database, EngineConfig};

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut fail_after = None;
    let mut stall = false;
    let mut drop_every = None;
    let mut flaky_after = None;
    let mut grace_ms: Option<u64> = None;
    let mut config = EngineConfig::duckdb_mem();
    let mut args = std::env::args().skip(1);
    fn number(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} needs a number"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--allow-swap" => config.allow_swap = true,
            "--fail-after" => fail_after = Some(number(&mut args, "--fail-after")),
            "--stall" => stall = true,
            "--drop-every" => drop_every = Some(number(&mut args, "--drop-every")),
            "--flaky-after" => flaky_after = Some(number(&mut args, "--flaky-after")),
            "--grace-ms" => grace_ms = Some(number(&mut args, "--grace-ms")),
            "--help" | "-h" => {
                println!(
                    "usage: shard_server [--addr HOST:PORT] [--allow-swap] \
                     [--fail-after N] [--stall] [--drop-every N] \
                     [--flaky-after N] [--grace-ms MS]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let listener = TcpListener::bind(&addr).expect("bind");
    let local = listener.local_addr().expect("local addr");
    // The parent (test rig or operator) reads this line to learn the
    // ephemeral port.
    println!("LISTENING {local}");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush");
    let mut builder = WireServer::builder(Database::new(config)).stall(stall);
    if let Some(n) = fail_after {
        builder = builder.fail_after(n);
    }
    if let Some(n) = drop_every {
        builder = builder.drop_every(n);
    }
    if let Some(n) = flaky_after {
        builder = builder.flaky_after(n);
    }
    if let Some(ms) = grace_ms {
        builder = builder.session_grace(Duration::from_millis(ms));
    }
    builder.serve(listener);
}
