//! Standalone shard server: hosts one JoinBoost engine behind the wire
//! protocol, for multi-process sharding over sockets.
//!
//! ```text
//! shard_server [--addr 127.0.0.1:0] [--allow-swap] [--fail-after N] [--stall]
//!              [--drop-every N] [--flaky-after N] [--grace-ms MS]
//!              [--reply-jitter SEED:MAX_MICROS]
//!              [--storage DIR] [--checkpoint-bytes N]
//!              [--job-checkpoint-iters K] [--crash-after-iters N]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once bound (an ephemeral port with
//! `--addr 127.0.0.1:0`, the default), then serves until killed. The
//! `--fail-after`/`--stall` flags are the fault-injection knobs of the
//! test suite: after N requests the server behaves like a crashed
//! (respectively hung) process. `--drop-every`/`--flaky-after` inject
//! *recovering* faults — connections drop but the server keeps serving,
//! exercising the client's reconnect-and-replay path — and `--grace-ms`
//! sets how long a disconnected session's state survives.
//! `--reply-jitter SEED:MAX_MICROS` delays each reply by a deterministic
//! pseudo-random duration, scrambling the completion order of pipelined
//! requests without changing any payload (the interleaving-equivalence
//! tests' knob).
//!
//! `--storage DIR` hosts the paged, WAL-backed engine on `DIR` instead of
//! the in-memory one: tables, the job registry and training checkpoints
//! survive a kill, and a restart on the same directory resumes
//! interrupted jobs. `--checkpoint-bytes` bounds the WAL (snapshot +
//! truncate past that many logged bytes), `--job-checkpoint-iters`
//! persists running forests every K iterations, and `--crash-after-iters`
//! aborts the process after N trained iterations (the restart test's
//! kill switch).

use std::net::TcpListener;
use std::time::Duration;

use joinboost::backend::WireServer;
use joinboost_engine::{Database, EngineConfig};

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut allow_swap = false;
    let mut fail_after = None;
    let mut stall = false;
    let mut drop_every = None;
    let mut flaky_after = None;
    let mut grace_ms: Option<u64> = None;
    let mut reply_jitter: Option<(u64, u64)> = None;
    let mut storage: Option<String> = None;
    let mut checkpoint_bytes: Option<u64> = None;
    let mut job_checkpoint_iters: Option<u64> = None;
    let mut crash_after_iters: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    fn number(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
        args.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .parse()
            .unwrap_or_else(|_| panic!("{flag} needs a number"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--allow-swap" => allow_swap = true,
            "--fail-after" => fail_after = Some(number(&mut args, "--fail-after")),
            "--stall" => stall = true,
            "--drop-every" => drop_every = Some(number(&mut args, "--drop-every")),
            "--flaky-after" => flaky_after = Some(number(&mut args, "--flaky-after")),
            "--grace-ms" => grace_ms = Some(number(&mut args, "--grace-ms")),
            "--reply-jitter" => {
                let spec = args.next().expect("--reply-jitter needs SEED:MAX_MICROS");
                let (seed, max) = spec
                    .split_once(':')
                    .expect("--reply-jitter needs SEED:MAX_MICROS");
                reply_jitter = Some((
                    seed.parse().expect("--reply-jitter seed must be a number"),
                    max.parse().expect("--reply-jitter max must be a number"),
                ));
            }
            "--storage" => storage = Some(args.next().expect("--storage needs a directory")),
            "--checkpoint-bytes" => {
                checkpoint_bytes = Some(number(&mut args, "--checkpoint-bytes"))
            }
            "--job-checkpoint-iters" => {
                job_checkpoint_iters = Some(number(&mut args, "--job-checkpoint-iters"))
            }
            "--crash-after-iters" => {
                crash_after_iters = Some(number(&mut args, "--crash-after-iters"))
            }
            "--help" | "-h" => {
                println!(
                    "usage: shard_server [--addr HOST:PORT] [--allow-swap] \
                     [--fail-after N] [--stall] [--drop-every N] \
                     [--flaky-after N] [--grace-ms MS] \
                     [--reply-jitter SEED:MAX_MICROS] [--storage DIR] \
                     [--checkpoint-bytes N] [--job-checkpoint-iters K] \
                     [--crash-after-iters N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let mut config = match &storage {
        Some(dir) => EngineConfig::paged(dir),
        None => EngineConfig::duckdb_mem(),
    };
    config.allow_swap = allow_swap;
    if storage.is_some() {
        config.checkpoint_bytes = checkpoint_bytes.or(config.checkpoint_bytes);
    }
    let listener = TcpListener::bind(&addr).expect("bind");
    let local = listener.local_addr().expect("local addr");
    // The parent (test rig or operator) reads this line to learn the
    // ephemeral port.
    println!("LISTENING {local}");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush");
    let mut builder = WireServer::builder(Database::new(config)).stall(stall);
    if let Some(n) = fail_after {
        builder = builder.fail_after(n);
    }
    if let Some(n) = drop_every {
        builder = builder.drop_every(n);
    }
    if let Some(n) = flaky_after {
        builder = builder.flaky_after(n);
    }
    if let Some(ms) = grace_ms {
        builder = builder.session_grace(Duration::from_millis(ms));
    }
    if let Some((seed, max_micros)) = reply_jitter {
        builder = builder.reply_jitter(seed, max_micros);
    }
    if let Some(k) = job_checkpoint_iters {
        builder = builder.job_checkpoint_iters(k);
    }
    if let Some(n) = crash_after_iters {
        builder = builder.crash_after_iters(n);
    }
    builder.serve(listener);
}
