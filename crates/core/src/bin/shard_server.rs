//! Standalone shard server: hosts one JoinBoost engine behind the wire
//! protocol, for multi-process sharding over sockets.
//!
//! ```text
//! shard_server [--addr 127.0.0.1:0] [--allow-swap] [--fail-after N] [--stall]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once bound (an ephemeral port with
//! `--addr 127.0.0.1:0`, the default), then serves until killed. The
//! `--fail-after`/`--stall` flags are the fault-injection knobs of the
//! test suite: after N requests the server behaves like a crashed
//! (respectively hung) process.

use std::net::TcpListener;

use joinboost::backend::WireServer;
use joinboost_engine::{Database, EngineConfig};

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut fail_after = None;
    let mut stall = false;
    let mut config = EngineConfig::duckdb_mem();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs a value"),
            "--allow-swap" => config.allow_swap = true,
            "--fail-after" => {
                let n = args.next().expect("--fail-after needs a value");
                fail_after = Some(n.parse().expect("--fail-after needs a number"));
            }
            "--stall" => stall = true,
            "--help" | "-h" => {
                println!(
                    "usage: shard_server [--addr HOST:PORT] [--allow-swap] \
                     [--fail-after N] [--stall]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let listener = TcpListener::bind(&addr).expect("bind");
    let local = listener.local_addr().expect("local addr");
    // The parent (test rig or operator) reads this line to learn the
    // ephemeral port.
    println!("LISTENING {local}");
    use std::io::Write as _;
    std::io::stdout().flush().expect("flush");
    let mut builder = WireServer::builder(Database::new(config)).stall(stall);
    if let Some(n) = fail_after {
        builder = builder.fail_after(n);
    }
    builder.serve(listener);
}
