//! Training errors.

use std::fmt;

/// Result type of every training-side operation.
pub type Result<T> = std::result::Result<T, TrainError>;

/// Errors raised while preparing or training a model.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Problem with the join graph (cyclic, disconnected, bad reference).
    Graph(String),
    /// Problem reported by the DBMS backend.
    Engine(String),
    /// Invalid parameters or dataset/objective combination.
    Invalid(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Graph(m) => write!(f, "join graph error: {m}"),
            TrainError::Engine(m) => write!(f, "engine error: {m}"),
            TrainError::Invalid(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<joinboost_engine::EngineError> for TrainError {
    fn from(e: joinboost_engine::EngineError) -> Self {
        TrainError::Engine(e.to_string())
    }
}

impl From<joinboost_graph::GraphError> for TrainError {
    fn from(e: joinboost_graph::GraphError) -> Self {
        TrainError::Graph(e.to_string())
    }
}
