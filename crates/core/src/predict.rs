//! Applying trained models: feature materialization for evaluation,
//! ensemble prediction, and metrics.
//!
//! Training never materializes the join — but *evaluating* a model on the
//! denormalized data requires the feature values per joined tuple. For
//! tests and accuracy reporting we materialize `R⋈` (or a sample of it)
//! with one SPJA query; real deployments would push prediction into SQL
//! the same way training pushes split evaluation.

use joinboost_engine::{Datum, Table};
use joinboost_sql::ast::{Expr, Join, JoinKind, Query, SelectItem, TableRef};

use crate::dataset::Dataset;
use crate::error::{Result, TrainError};
use crate::tree::{FeatureRow, Tree};

/// One row of a materialized table viewed as a feature row.
pub struct TableRow<'a> {
    /// The materialized feature table.
    pub table: &'a Table,
    /// Row index within the table.
    pub index: usize,
}

impl FeatureRow for TableRow<'_> {
    fn feature(&self, name: &str) -> Option<Datum> {
        let i = self.table.resolve(None, name).ok()?;
        let v = self.table.columns[i].get(self.index);
        if v.is_null() {
            None
        } else {
            Some(v)
        }
    }
}

/// The SPJA query materializing the full join with all features plus the
/// target column (aliased `jb_target`). Joins follow a BFS order from the
/// target relation so each join key is in scope.
pub fn features_query(set: &Dataset) -> Query {
    let g = &set.graph;
    let root = set.target_rel();
    let order = g.sampling_order(root);
    let mut items: Vec<SelectItem> = Vec::new();
    for (feat, _) in set.features() {
        items.push(SelectItem::new(Expr::col(feat)));
    }
    items.push(SelectItem::aliased(
        Expr::qcol(g.name(root), set.target_column.clone()),
        "jb_target",
    ));
    let mut q = Query {
        items,
        from: Some(TableRef::named(g.name(root))),
        ..Default::default()
    };
    for (rel, keys) in order.iter().skip(1) {
        q.joins.push(Join {
            kind: JoinKind::Inner,
            table: TableRef::named(g.name(*rel)),
            using: keys.clone(),
            on: None,
        });
    }
    q
}

/// Execute [`features_query`], returning the denormalized table.
pub fn materialize_features(set: &Dataset) -> Result<Table> {
    let q = features_query(set);
    set.db
        .query(&q.to_string())
        .map_err(|e| TrainError::Engine(format!("{e} in: {q}")))
}

/// Raw additive prediction of a boosted ensemble for every row of a
/// materialized feature table: `init + lr · Σ tree(x)`.
///
/// Crate-internal: the public entry points are
/// [`GbmModel::score`](crate::boosting::GbmModel::score) (and the
/// [`Scorer`](crate::serve::Scorer) trait for per-key serving).
pub(crate) fn predict_boosted(
    trees: &[Tree],
    init_score: f64,
    learning_rate: f64,
    table: &Table,
) -> Vec<f64> {
    let n = table.num_rows();
    let mut out = vec![init_score; n];
    for tree in trees {
        for (i, o) in out.iter_mut().enumerate() {
            *o += learning_rate * tree.predict(&TableRow { table, index: i });
        }
    }
    out
}

/// Averaged prediction of a bagged ensemble (random forest).
///
/// Crate-internal: the public entry point is
/// [`RfModel::score`](crate::forest::RfModel::score).
pub(crate) fn predict_bagged(trees: &[Tree], table: &Table) -> Vec<f64> {
    let n = table.num_rows();
    let mut out = vec![0.0; n];
    if trees.is_empty() {
        return out;
    }
    for tree in trees {
        for (i, o) in out.iter_mut().enumerate() {
            *o += tree.predict(&TableRow { table, index: i });
        }
    }
    for o in &mut out {
        *o /= trees.len() as f64;
    }
    out
}

/// Extract the target column from a table produced by
/// [`materialize_features`].
pub fn targets(table: &Table) -> Result<Vec<f64>> {
    table
        .column(None, "jb_target")
        .map_err(TrainError::from)?
        .to_f64_vec()
        .map_err(TrainError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::{Column, Database, Table as ETable};
    use joinboost_graph::JoinGraph;

    #[test]
    fn materializes_star_features() {
        let db = Database::in_memory();
        db.create_table(
            "fact",
            ETable::from_columns(vec![
                ("k", Column::int(vec![1, 1, 2])),
                ("y", Column::float(vec![1.0, 2.0, 3.0])),
            ]),
        )
        .unwrap();
        db.create_table(
            "dim",
            ETable::from_columns(vec![
                ("k", Column::int(vec![1, 2])),
                ("f", Column::int(vec![10, 20])),
            ]),
        )
        .unwrap();
        let mut g = JoinGraph::new();
        g.add_relation("fact", &[]).unwrap();
        g.add_relation("dim", &["f"]).unwrap();
        g.add_edge("fact", "dim", &["k"]).unwrap();
        let set = Dataset::new(&db, g, "fact", "y").unwrap();
        let t = materialize_features(&set).unwrap();
        assert_eq!(t.num_rows(), 3);
        let ys = targets(&t).unwrap();
        assert_eq!(ys.iter().sum::<f64>(), 6.0);
        let row = TableRow {
            table: &t,
            index: 2,
        };
        assert_eq!(row.feature("f"), Some(Datum::Int(20)));
    }

    #[test]
    fn boosted_and_bagged_prediction() {
        let t = ETable::from_columns(vec![("f", Column::float(vec![1.0, 5.0]))]);
        let leafy = |v: f64| Tree::single_leaf(v, 1.0);
        let boosted = predict_boosted(&[leafy(1.0), leafy(2.0)], 10.0, 0.5, &t);
        assert_eq!(boosted, vec![11.5, 11.5]);
        let bagged = predict_bagged(&[leafy(1.0), leafy(3.0)], &t);
        assert_eq!(bagged, vec![2.0, 2.0]);
        assert_eq!(predict_bagged(&[], &t), vec![0.0, 0.0]);
    }
}
