//! # JoinBoost: grow trees over normalized data using only SQL
//!
//! A Rust reproduction of the VLDB 2023 paper. JoinBoost trains decision
//! trees, random forests and gradient-boosted trees over a *normalized*
//! database without ever materializing the join: the training algorithm
//! runs in Rust (like the paper's Python driver) and compiles its
//! computationally heavy step — evaluating split criteria — into plain
//! SPJA SQL executed by a DBMS backend (here, `joinboost-engine`).
//!
//! ```
//! use joinboost::{train_gbm, Dataset, TrainParams};
//! use joinboost_engine::{Column, Database, Table};
//! use joinboost_graph::JoinGraph;
//!
//! // `sales` (fact, target net_profit) joins `dates` (dimension).
//! let db = Database::in_memory();
//! db.create_table(
//!     "sales",
//!     Table::from_columns(vec![
//!         ("date_id", Column::int(vec![1, 1, 2, 2])),
//!         ("net_profit", Column::float(vec![10.0, 12.0, 30.0, 34.0])),
//!     ]),
//! )
//! .unwrap();
//! db.create_table(
//!     "dates",
//!     Table::from_columns(vec![
//!         ("date_id", Column::int(vec![1, 2])),
//!         ("holiday", Column::int(vec![0, 1])),
//!     ]),
//! )
//! .unwrap();
//! let mut graph = JoinGraph::new();
//! graph.add_relation("sales", &[]).unwrap();
//! graph.add_relation("dates", &["holiday"]).unwrap();
//! graph.add_edge("sales", "dates", &["date_id"]).unwrap();
//!
//! let dataset = Dataset::new(&db, graph, "sales", "net_profit").unwrap();
//! let params = TrainParams { num_iterations: 3, ..TrainParams::default() };
//! let model = train_gbm(&dataset, &params).unwrap();
//! assert_eq!(model.trees.len(), 3);
//! // Holiday days are more profitable; the model learns the gap.
//! assert!(model.trees[0].num_leaves() > 1);
//! ```
//!
//! ## Module map
//!
//! * [`backend`] — the [`SqlBackend`] trait every training query goes
//!   through, and its implementations: the in-memory engine (AST fast
//!   path), the SQL-text round-trip backend, the remote wire backend
//!   (SQL over a socket to a separate engine process), and the sharded
//!   fan-out backend with pluggable in-process/remote shard transports
//!   (Section 5's portability claim, made pluggable).
//! * [`dataset`] — binding a [`joinboost_graph::JoinGraph`] to database
//!   tables; feature kinds; lifted (annotated) table creation. Training
//!   never modifies user data: all writes go to `jb_`-prefixed temp tables.
//! * [`sqlgen`] — symbolic semi-ring algebra → SQL expressions; split
//!   criteria queries (paper Example 2); gradient/Hessian SQL for every
//!   objective of Table 3.
//! * [`messages`] — factorized message passing with identity-message and
//!   semi-join optimizations, plus the cross-node message cache
//!   (Section 5.5.1).
//! * [`trainer`] — Algorithm 1 (best-first / depth-wise decision tree
//!   growth) over factorized split evaluation.
//! * [`boosting`] — factorized gradient boosting: residual updates on
//!   snowflake schemas (UPDATE / CREATE TABLE / column swap / dataframe
//!   interop — Sections 4.1, 5.3, 5.4) and galaxy schemas via update
//!   relations and Clustered Predicate Trees (Section 4.2).
//! * [`forest`] — random forests with fact-table / ancestral sampling
//!   (Section 5.5.2) and tree-parallel training.
//! * [`sampling`] — ancestral sampling over the join graph.
//! * [`scheduler`] — inter-query parallelism: dependency-tracked FIFO run
//!   queue over worker threads (Section 5.5.3).
//! * [`tree`], [`predict`] — the returned models and their application.
//! * [`serve`] — the serving tier: trained forests compiled into
//!   per-relation message tables so per-key scoring is dictionary
//!   lookups plus `⊕`-adds — never a join — with a [`Scorer`] trait over
//!   the materialized and factorized paths.

#![deny(missing_docs)]

pub mod backend;
pub mod boosting;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod messages;
pub mod params;
pub mod predict;
pub mod sampling;
pub mod scheduler;
pub mod serve;
pub mod sqlgen;
pub mod trainer;
pub mod tree;

pub use backend::{
    BackendCapabilities, BackendResult, EngineBackend, RemoteBackend, ShardedBackend, SqlBackend,
    SqlTextBackend,
};
pub use boosting::{train_gbm, train_gbm_cb, train_gbm_resume, GbmModel};
pub use dataset::{Dataset, FeatureKind};
pub use error::{Result, TrainError};
pub use forest::{train_random_forest, RfModel};
pub use params::{Growth, TrainParams, UpdateMethod};
pub use serve::{FactorizedScorer, JoinScorer, Scorer, ScorerSpec};
pub use trainer::{train_decision_tree, TrainStats};
pub use tree::{Split, SplitCondition, Tree};
