//! The shard side of the distributed split-evaluation protocol.
//!
//! PR 4's shard-local split evaluation is a coordinator-driven protocol:
//! each shard keeps its per-value aggregates and ships only boundary
//! keys, per-interval boundary-prefix-sum summaries, refinement keys and
//! the candidate intervals' rows. When shards were in-process engines the
//! "shard side" could live in the coordinator's address space; with
//! remote shards it must run *where the data is*, or every split query
//! would pull the full per-value table across the wire and the shuffle
//! reduction would be pure bookkeeping.
//!
//! This module is that shard side, factored so one implementation serves
//! both transports ([`LocalSplitState`]):
//!
//! * the in-process transport holds it directly (same code path as
//!   before, no extra copies),
//! * the wire server holds it per connection and answers the
//!   `Split*` requests from it, so over sockets only the protocol's
//!   messages cross — measurable in `BackendStats::bytes_received`.
//!
//! The coordinator half (grid assembly, convexity/chord bounds, pruning,
//! run-compressed merge) stays in `sharded.rs` and drives shards through
//! the [`SplitHandle`] trait.

use joinboost_engine::{Column, Datum, EngineError, Table};

use super::BackendResult;

/// How one output column of a fanned-out aggregate merges across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeSpec {
    /// Group key: identifies the row, not merged.
    Key,
    /// Partial sums/counts add (`⊕` of the semi-ring).
    Sum,
    /// Partial minima take the least.
    Min,
    /// Partial maxima take the greatest.
    Max,
}

impl MergeSpec {
    /// Wire tag of this spec.
    pub fn to_tag(self) -> u8 {
        match self {
            MergeSpec::Key => 0,
            MergeSpec::Sum => 1,
            MergeSpec::Min => 2,
            MergeSpec::Max => 3,
        }
    }

    /// Decode a wire tag.
    pub fn from_tag(tag: u8) -> Option<MergeSpec> {
        Some(match tag {
            0 => MergeSpec::Key,
            1 => MergeSpec::Sum,
            2 => MergeSpec::Min,
            3 => MergeSpec::Max,
            _ => return None,
        })
    }
}

/// Accumulator for one aggregate cell. Integer partials stay integers
/// (exact counts); the first float partial promotes the accumulated total
/// exactly (`i64 as f64` is exact for the count magnitudes here).
#[derive(Debug, Clone)]
pub(crate) enum Acc {
    Empty,
    Int(i64),
    Float(f64),
    Best(Datum),
}

impl Acc {
    pub(crate) fn add(&mut self, v: &Datum) {
        match v {
            Datum::Null => {}
            Datum::Int(x) => match self {
                Acc::Empty => *self = Acc::Int(*x),
                Acc::Int(t) => *t += *x,
                Acc::Float(t) => *t += *x as f64,
                Acc::Best(_) => unreachable!("sum into best"),
            },
            Datum::Float(x) => match self {
                Acc::Empty => *self = Acc::Float(*x),
                Acc::Int(t) => *self = Acc::Float(*t as f64 + *x),
                Acc::Float(t) => *t += *x,
                Acc::Best(_) => unreachable!("sum into best"),
            },
            Datum::Str(_) => {}
        }
    }

    pub(crate) fn best(&mut self, v: &Datum, want_max: bool) {
        if v.is_null() {
            return;
        }
        match self {
            Acc::Empty => *self = Acc::Best(v.clone()),
            Acc::Best(cur) => {
                let ord = v.sql_cmp(cur);
                if (want_max && ord == std::cmp::Ordering::Greater)
                    || (!want_max && ord == std::cmp::Ordering::Less)
                {
                    *cur = v.clone();
                }
            }
            _ => unreachable!("best into sum"),
        }
    }

    pub(crate) fn into_datum(self) -> Datum {
        match self {
            Acc::Empty => Datum::Null,
            Acc::Int(v) => Datum::Int(v),
            Acc::Float(v) => Datum::Float(v),
            Acc::Best(d) => d,
        }
    }
}

/// Which columns of the absorbed per-value result play which role in the
/// split protocol, plus how every column merges across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitSpec {
    /// The single group-key column (rows sort by it).
    pub key_col: usize,
    /// First split component (the prefix-count side of the criteria).
    pub c0_col: usize,
    /// Second split component (the prefix-sum side).
    pub c1_col: usize,
    /// Per-column merge behavior, parallel to the result columns.
    pub specs: Vec<MergeSpec>,
}

/// One (shard, interval) boundary summary — the 8-number message that
/// replaces shipping the interval's rows while pruning decisions are
/// made. All values are exact f64 views of the shard's local prefix sums
/// over the interval (used only for *bounds*; exact values travel as
/// [`Datum`]s in [`SplitHandle::fetch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IntervalSummary {
    /// Interval sum of component 0 on this shard.
    pub dc: f64,
    /// Interval sum of component 1 on this shard.
    pub ds: f64,
    /// Min/max local prefix value of component 0 reachable in-interval.
    pub min0: f64,
    /// See `min0`.
    pub max0: f64,
    /// Min/max local prefix value of component 1 reachable in-interval.
    pub min1: f64,
    /// See `min1`.
    pub max1: f64,
    /// max |Δs(t) − ρᵢ·Δc(t)| over the interval (ρᵢ = local slope).
    pub maxdev: f64,
    /// max |Δc(t)| over the interval.
    pub maxabsdc: f64,
    /// Rows of this shard inside the interval (the coordinator's
    /// refinement budget and bail-out checks need row mass, not values).
    pub rows: u64,
}

/// One shard's view of a split query: the absorbed per-value aggregates
/// held *where they were computed*, answering the protocol's four
/// questions. Implemented by [`LocalSplitState`] (in-process and inside
/// the wire server) and by the remote client's proxy handle.
pub trait SplitHandle: Send + Sync {
    /// Rows of the absorbed result on this shard.
    fn num_rows(&self) -> usize;

    /// Up to `k` equal-count boundary keys, ascending, the shard's
    /// largest key always included.
    fn boundaries(&self, k: usize) -> BackendResult<Vec<Datum>>;

    /// Per-interval boundary summaries for the given ascending grid
    /// (interval `j` holds keys in `(grid[j-1], grid[j]]`).
    fn summaries(&self, grid: &[Datum]) -> BackendResult<Vec<IntervalSummary>>;

    /// Delta form of [`SplitHandle::summaries`]: summaries for the
    /// ascending subset `changed` of interval indices only. An interval's
    /// summary is a pure function of the absolute row range its bounding
    /// keys enclose, so a caller that caches the previous round's
    /// summaries can skip intervals whose bounds survived refinement —
    /// their summaries are bit-identical by construction. The default
    /// delegates to the full computation; shard-side implementations
    /// override it to compute (and ship) only the changed intervals.
    fn summaries_delta(
        &self,
        grid: &[Datum],
        changed: &[usize],
    ) -> BackendResult<Vec<IntervalSummary>> {
        let all = self.summaries(grid)?;
        changed
            .iter()
            .map(|&j| {
                all.get(j).copied().ok_or_else(|| {
                    EngineError::Other(format!(
                        "split delta: interval {j} out of range ({} intervals)",
                        all.len()
                    ))
                })
            })
            .collect()
    }

    /// Equal-count sub-boundary keys inside the given intervals of the
    /// grid; `targets` pairs an interval index with the per-shard key
    /// budget for it.
    fn refine(&self, grid: &[Datum], targets: &[(usize, usize)]) -> BackendResult<Vec<Datum>>;

    /// The shard's contribution to the run-compressed merged table: full
    /// rows (key-ascending) for retained intervals, one compressed
    /// partial row per non-empty pruned interval (interval ⊕-sums for
    /// `Sum` columns, the boundary key's row value for `Min`/`Max`).
    fn fetch(&self, grid: &[Datum], retain: &[bool]) -> BackendResult<Table>;

    /// Consume the handle and return the full absorbed result (the dense
    /// fallback for tiny cardinalities — over the wire this is exactly
    /// the "ship every per-value row" cost the protocol avoids; in
    /// process it is a move, not a copy).
    fn into_all_rows(self: Box<Self>) -> BackendResult<Table>;
}

/// The canonical shard-side state: the absorbed result plus its key
/// order and `f64` prefix sums of the two split components.
pub struct LocalSplitState {
    table: Table,
    spec: SplitSpec,
    /// Row indices sorted ascending by group key.
    order: Vec<u32>,
    /// Sorted group keys (unique within a shard: they come from GROUP BY).
    keys: Vec<Datum>,
    /// Running prefix sums of component 0/1 in key order.
    p0: Vec<f64>,
    p1: Vec<f64>,
}

impl LocalSplitState {
    /// Sort the absorbed result by its key and build the component
    /// prefix sums. `Err` returns the table untouched when a component
    /// is NULL somewhere (the summary bounds could not mirror the exact
    /// merge) — callers then reuse it for the dense path instead of
    /// re-executing the query.
    pub fn build(table: Table, spec: SplitSpec) -> Result<LocalSplitState, Table> {
        let n = table.num_rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            table.columns[spec.key_col]
                .get(a as usize)
                .sql_cmp(&table.columns[spec.key_col].get(b as usize))
        });
        let keys: Vec<Datum> = order
            .iter()
            .map(|&i| table.columns[spec.key_col].get(i as usize))
            .collect();
        let mut p0 = Vec::with_capacity(n);
        let mut p1 = Vec::with_capacity(n);
        let (mut a0, mut a1) = (0.0f64, 0.0f64);
        for &i in &order {
            let (Some(v0), Some(v1)) = (
                table.columns[spec.c0_col].f64_at(i as usize),
                table.columns[spec.c1_col].f64_at(i as usize),
            ) else {
                return Err(table);
            };
            a0 += v0;
            a1 += v1;
            p0.push(a0);
            p1.push(a1);
        }
        Ok(LocalSplitState {
            table,
            spec,
            order,
            keys,
            p0,
            p1,
        })
    }

    /// Interval segmentation: interval `j` holds keys in
    /// `(grid[j-1], grid[j]]`. The grid's maximum must cover every key.
    fn segments(&self, grid: &[Datum]) -> Vec<(usize, usize)> {
        let mut seg = Vec::with_capacity(grid.len());
        let mut t = 0usize;
        for b in grid {
            let start = t;
            while t < self.keys.len() && self.keys[t].sql_cmp(b) != std::cmp::Ordering::Greater {
                t += 1;
            }
            seg.push((start, t));
        }
        debug_assert_eq!(t, self.keys.len(), "keys above the grid maximum");
        seg
    }

    /// The boundary summary of one absolute row range `[start, end)`.
    /// Pure in `(start, end)` — the bit-identity of unchanged intervals
    /// across refinement rounds (and thus the delta protocol) rests on
    /// exactly this.
    fn summary_of(&self, start: usize, end: usize) -> IntervalSummary {
        let at = |p: &[f64], i: usize| if i == 0 { 0.0 } else { p[i - 1] };
        let c_at_start = at(&self.p0, start);
        let s_at_start = at(&self.p1, start);
        let dc = at(&self.p0, end) - c_at_start;
        let ds = at(&self.p1, end) - s_at_start;
        // Local prefix values reachable inside the interval: the
        // value at its start plus every row's value.
        let (mut mn0, mut mx0) = (c_at_start, c_at_start);
        let (mut mn1, mut mx1) = (s_at_start, s_at_start);
        let rho_i = if dc != 0.0 { ds / dc } else { 0.0 };
        let (mut maxdev, mut maxabsdc) = (0.0f64, 0.0f64);
        for t in start..end {
            mn0 = mn0.min(self.p0[t]);
            mx0 = mx0.max(self.p0[t]);
            mn1 = mn1.min(self.p1[t]);
            mx1 = mx1.max(self.p1[t]);
            let a = self.p0[t] - c_at_start;
            let b = self.p1[t] - s_at_start;
            maxdev = maxdev.max((b - rho_i * a).abs());
            maxabsdc = maxabsdc.max(a.abs());
        }
        IntervalSummary {
            dc,
            ds,
            min0: mn0,
            max0: mx0,
            min1: mn1,
            max1: mx1,
            maxdev,
            maxabsdc,
            rows: (end - start) as u64,
        }
    }
}

impl SplitHandle for LocalSplitState {
    fn num_rows(&self) -> usize {
        self.keys.len()
    }

    fn boundaries(&self, k: usize) -> BackendResult<Vec<Datum>> {
        let n = self.keys.len();
        let k = k.max(2);
        let mut out = Vec::new();
        let mut last = usize::MAX;
        for j in 1..=k {
            let pos = (n * j).div_ceil(k).saturating_sub(1);
            if n == 0 || pos == last {
                continue;
            }
            last = pos;
            out.push(self.keys[pos].clone());
        }
        Ok(out)
    }

    fn summaries(&self, grid: &[Datum]) -> BackendResult<Vec<IntervalSummary>> {
        let seg = self.segments(grid);
        Ok(seg
            .iter()
            .map(|&(start, end)| self.summary_of(start, end))
            .collect())
    }

    fn summaries_delta(
        &self,
        grid: &[Datum],
        changed: &[usize],
    ) -> BackendResult<Vec<IntervalSummary>> {
        let seg = self.segments(grid);
        changed
            .iter()
            .map(|&j| {
                seg.get(j)
                    .map(|&(start, end)| self.summary_of(start, end))
                    .ok_or_else(|| {
                        EngineError::Other(format!(
                            "split delta: interval {j} out of range ({} intervals)",
                            seg.len()
                        ))
                    })
            })
            .collect()
    }

    fn refine(&self, grid: &[Datum], targets: &[(usize, usize)]) -> BackendResult<Vec<Datum>> {
        let seg = self.segments(grid);
        let mut out = Vec::new();
        for &(j, per_target) in targets {
            let (start, end) = seg[j];
            let span = end - start;
            if span < 2 {
                continue;
            }
            let per = per_target.max(1).min(span - 1);
            let mut last = usize::MAX;
            for t in 1..=per {
                let pos = start + (span * t).div_ceil(per + 1).saturating_sub(1);
                if pos + 1 >= end || pos == last {
                    continue;
                }
                last = pos;
                out.push(self.keys[pos].clone());
            }
        }
        Ok(out)
    }

    fn fetch(&self, grid: &[Datum], retain: &[bool]) -> BackendResult<Table> {
        let seg = self.segments(grid);
        let specs = &self.spec.specs;
        let ncols = specs.len();
        let mut cols: Vec<Vec<Datum>> = vec![Vec::new(); ncols];
        for (j, &(start, end)) in seg.iter().enumerate() {
            if retain[j] {
                // Candidate interval: every row ships, key-ascending.
                for t in start..end {
                    let row = self.order[t] as usize;
                    for (ci, col) in cols.iter_mut().enumerate() {
                        col.push(self.table.columns[ci].get(row));
                    }
                }
            } else {
                if start == end {
                    continue; // nothing of this interval on this shard
                }
                // Pruned interval: one compressed partial row standing at
                // the boundary key — interval ⊕-sums for Sum columns, the
                // boundary key's row value for Min/Max.
                for (ci, spec) in specs.iter().enumerate() {
                    let datum = match spec {
                        MergeSpec::Key => grid[j].clone(),
                        MergeSpec::Sum => {
                            let mut acc = Acc::Empty;
                            for t in start..end {
                                acc.add(&self.table.columns[ci].get(self.order[t] as usize));
                            }
                            acc.into_datum()
                        }
                        MergeSpec::Min | MergeSpec::Max => {
                            let mut acc = Acc::Empty;
                            if let Ok(t) = self.keys.binary_search_by(|k| k.sql_cmp(&grid[j])) {
                                acc.best(
                                    &self.table.columns[ci].get(self.order[t] as usize),
                                    *spec == MergeSpec::Max,
                                );
                            }
                            acc.into_datum()
                        }
                    };
                    cols[ci].push(datum);
                }
            }
        }
        let mut out = Table::new();
        for (meta, vals) in self.table.meta.iter().zip(&cols) {
            out.push_column(meta.clone(), Column::from_datums(vals));
        }
        Ok(out)
    }

    fn into_all_rows(self: Box<Self>) -> BackendResult<Table> {
        Ok(self.table)
    }
}

// ---------------------------------------------------------------------------
// Wire views: the protocol's messages as tables (reusing the columnar
// codec for bit-exactness and framing).
// ---------------------------------------------------------------------------

/// A key list as a 1-column table. Keys come from one group-by column,
/// so they are homogeneously typed (plus possible NULLs) — which is what
/// lets them ride in a single [`Column`].
pub fn keys_to_table(keys: &[Datum]) -> Table {
    let mut t = Table::new();
    t.push_column(
        joinboost_engine::table::ColumnMeta::new("k"),
        Column::from_datums(keys),
    );
    t
}

/// Decode a 1-column key table.
pub fn keys_from_table(t: &Table) -> Vec<Datum> {
    match t.columns.first() {
        Some(c) => (0..t.num_rows()).map(|i| c.get(i)).collect(),
        None => Vec::new(),
    }
}

/// Interval summaries as a table: eight float columns plus the integer
/// row count.
pub fn summaries_to_table(rows: &[IntervalSummary]) -> Table {
    type FieldGet = fn(&IntervalSummary) -> f64;
    let cols: [(&str, FieldGet); 8] = [
        ("dc", |s| s.dc),
        ("ds", |s| s.ds),
        ("min0", |s| s.min0),
        ("max0", |s| s.max0),
        ("min1", |s| s.min1),
        ("max1", |s| s.max1),
        ("maxdev", |s| s.maxdev),
        ("maxabsdc", |s| s.maxabsdc),
    ];
    let mut t = Table::new();
    for (name, get) in cols {
        t.push_column(
            joinboost_engine::table::ColumnMeta::new(name),
            Column::float(rows.iter().map(get).collect()),
        );
    }
    t.push_column(
        joinboost_engine::table::ColumnMeta::new("rows"),
        Column::int(rows.iter().map(|s| s.rows as i64).collect()),
    );
    t
}

/// Decode a summary table produced by [`summaries_to_table`].
pub fn summaries_from_table(t: &Table) -> Option<Vec<IntervalSummary>> {
    if t.num_columns() != 9 {
        return None;
    }
    let f = |c: usize, i: usize| t.columns[c].f64_at(i);
    (0..t.num_rows())
        .map(|i| {
            Some(IntervalSummary {
                dc: f(0, i)?,
                ds: f(1, i)?,
                min0: f(2, i)?,
                max0: f(3, i)?,
                min1: f(4, i)?,
                max1: f(5, i)?,
                maxdev: f(6, i)?,
                maxabsdc: f(7, i)?,
                rows: match t.columns[8].get(i) {
                    Datum::Int(v) if v >= 0 => v as u64,
                    _ => return None,
                },
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Coordinator-side delta bookkeeping
// ---------------------------------------------------------------------------

/// Map each interval of a refined grid back to the old-grid interval it
/// is *identical* to, or `None` when it must be re-summarized. Interval
/// `j` of a grid holds keys in `(grid[j-1], grid[j]]` (open start before
/// index 0), so new interval `j` equals old interval `oi` exactly when
/// both bounding keys match — refinement only inserts keys, it never
/// moves or removes them, but the map is correct for arbitrary ascending
/// grids. Two-pointer walk, `O(|old| + |new|)`.
pub fn interval_delta_map(old: &[Datum], new: &[Datum]) -> Vec<Option<usize>> {
    use std::cmp::Ordering;
    let mut map = Vec::with_capacity(new.len());
    let mut oi = 0usize;
    for (j, nk) in new.iter().enumerate() {
        while oi < old.len() && old[oi].sql_cmp(nk) == Ordering::Less {
            oi += 1;
        }
        let upper = oi < old.len() && old[oi].sql_cmp(nk) == Ordering::Equal;
        let lower = if j == 0 {
            oi == 0
        } else {
            oi > 0 && old[oi - 1].sql_cmp(&new[j - 1]) == Ordering::Equal
        };
        map.push(if upper && lower { Some(oi) } else { None });
    }
    map
}

/// Rebuild the full summary vector of the new grid from the cached old
/// summaries plus the shard's delta reply (`changed` rows in ascending
/// interval order, as produced against [`interval_delta_map`]). Returns
/// `None` when the pieces don't fit — a malformed delta reply must
/// surface as a typed error at the call site, never a panic.
pub fn reconstruct_summaries(
    old: &[IntervalSummary],
    map: &[Option<usize>],
    changed: &[IntervalSummary],
) -> Option<Vec<IntervalSummary>> {
    let mut fresh = changed.iter();
    let mut out = Vec::with_capacity(map.len());
    for slot in map {
        out.push(match slot {
            Some(oi) => *old.get(*oi)?,
            None => *fresh.next()?,
        });
    }
    // A reply carrying extra rows is as malformed as one carrying too few.
    if fresh.next().is_some() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> LocalSplitState {
        // Keys deliberately unsorted in storage order.
        let t = Table::from_columns(vec![
            ("val", Column::int(vec![30, 10, 20, 40])),
            ("c", Column::int(vec![1, 1, 1, 1])),
            ("s", Column::float(vec![3.0, 1.0, 2.0, 4.0])),
        ]);
        LocalSplitState::build(
            t,
            SplitSpec {
                key_col: 0,
                c0_col: 1,
                c1_col: 2,
                specs: vec![MergeSpec::Key, MergeSpec::Sum, MergeSpec::Sum],
            },
        )
        .unwrap_or_else(|_| panic!("no NULL components"))
    }

    #[test]
    fn boundaries_are_equal_count_and_cover_the_max() {
        let st = state();
        let b = st.boundaries(2).unwrap();
        assert_eq!(b, vec![Datum::Int(20), Datum::Int(40)]);
        assert_eq!(st.num_rows(), 4);
    }

    #[test]
    fn summaries_carry_exact_interval_sums() {
        let st = state();
        let grid = vec![Datum::Int(20), Datum::Int(40)];
        let s = st.summaries(&grid).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].dc, s[0].ds), (2.0, 3.0)); // keys 10, 20
        assert_eq!((s[1].dc, s[1].ds), (2.0, 7.0)); // keys 30, 40
        let rt = summaries_from_table(&summaries_to_table(&s)).unwrap();
        assert_eq!(rt, s);
    }

    #[test]
    fn fetch_compresses_pruned_intervals_to_boundary_partials() {
        let st = state();
        let grid = vec![Datum::Int(20), Datum::Int(40)];
        let t = st.fetch(&grid, &[false, true]).unwrap();
        // Pruned interval 0 → one partial row at key 20 holding the run
        // sums; retained interval 1 → both rows.
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.columns[0].get(0), Datum::Int(20));
        assert_eq!(t.columns[1].get(0), Datum::Int(2));
        assert_eq!(t.columns[2].get(0), Datum::Float(3.0));
        assert_eq!(t.columns[0].get(1), Datum::Int(30));
        assert_eq!(t.columns[0].get(2), Datum::Int(40));
    }

    #[test]
    fn null_components_refuse_to_build_and_return_the_table() {
        let t = Table::from_columns(vec![
            ("val", Column::int(vec![1, 2])),
            ("c", Column::from_datums(&[Datum::Int(1), Datum::Null])),
            ("s", Column::float(vec![1.0, 2.0])),
        ]);
        let back = LocalSplitState::build(
            t.clone(),
            SplitSpec {
                key_col: 0,
                c0_col: 1,
                c1_col: 2,
                specs: vec![MergeSpec::Key, MergeSpec::Sum, MergeSpec::Sum],
            },
        )
        .map(|_| ())
        .expect_err("NULL component must refuse the protocol");
        // The dense fallback reuses the executed result — no re-run.
        assert_eq!(back, t);
    }

    #[test]
    fn delta_summaries_match_full_summaries_bit_exactly() {
        let st = state();
        let old_grid = vec![Datum::Int(20), Datum::Int(40)];
        let new_grid = vec![
            Datum::Int(10),
            Datum::Int(20),
            Datum::Int(30),
            Datum::Int(40),
        ];
        let map = interval_delta_map(&old_grid, &new_grid);
        // Only interval (−∞,10], (10,20] split off old interval 0; (20,30]
        // and (30,40] split old interval 1 — every new interval changed
        // except none (all bounds moved), so the map is all-None except
        // where both bounds survive.
        assert_eq!(map, vec![None, None, None, None]);
        // Refine only below 20: intervals above keep both bounds.
        let new_grid = vec![Datum::Int(10), Datum::Int(20), Datum::Int(40)];
        let map = interval_delta_map(&old_grid, &new_grid);
        assert_eq!(map, vec![None, None, Some(1)]);
        let changed: Vec<usize> = map
            .iter()
            .enumerate()
            .filter_map(|(j, m)| m.is_none().then_some(j))
            .collect();
        let old_sums = st.summaries(&old_grid).unwrap();
        let delta = st.summaries_delta(&new_grid, &changed).unwrap();
        let rebuilt = reconstruct_summaries(&old_sums, &map, &delta).unwrap();
        assert_eq!(rebuilt, st.summaries(&new_grid).unwrap());
    }

    #[test]
    fn malformed_delta_replies_are_rejected_not_panics() {
        let st = state();
        let grid = vec![Datum::Int(20), Datum::Int(40)];
        // Out-of-range interval index → typed error.
        assert!(st.summaries_delta(&grid, &[5]).is_err());
        let sums = st.summaries(&grid).unwrap();
        // Too few / too many delta rows → None.
        assert!(reconstruct_summaries(&sums, &[None, None], &sums[..1]).is_none());
        assert!(reconstruct_summaries(&sums, &[Some(0)], &sums[..1]).is_none());
        // Stale cache shorter than the map demands → None.
        assert!(reconstruct_summaries(&sums[..1], &[Some(1)], &[]).is_none());
    }

    #[test]
    fn key_tables_roundtrip() {
        for keys in [
            vec![Datum::Int(1), Datum::Int(5), Datum::Null],
            vec![Datum::Str("a".into()), Datum::Str("b".into())],
            vec![Datum::Float(0.5), Datum::Float(-1.25)],
        ] {
            assert_eq!(keys_from_table(&keys_to_table(&keys)), keys);
        }
        assert!(keys_from_table(&Table::new()).is_empty());
    }
}
