//! The sharded fan-out backend: one fact partition per engine instance.
//!
//! Reproduces the paper's multi-node setup (Figures 12–13) behind the
//! [`SqlBackend`] trait: dimension tables are replicated to every shard
//! (and to a coordinator engine), the fact relation is hash-partitioned on
//! a shard key, and every table *derived from* the fact — the lifted fact,
//! its messages — stays shard-local. Statements route by the tables they
//! reference:
//!
//! * statements touching a sharded table broadcast to all shards (DDL,
//!   residual updates) or fan out and merge (`SELECT`s),
//! * statements over replicated tables run everywhere (so replicas stay
//!   in sync) or on the coordinator alone (plain reads).
//!
//! `SELECT`s over sharded data come in three shapes:
//!
//! 1. **distributable SPJA aggregates** (`SELECT keys, SUM(..) .. GROUP BY
//!    keys`) — executed on every shard in parallel, partial aggregates
//!    `⊕`-merged by group key (SUM/COUNT partials add, MIN/MAX partials
//!    take the best). Because the fact partition induces a disjoint
//!    partition of the join result, the merge is exact ⊕, not an
//!    approximation (Definition 1: `c`, `s`, `q` are additive).
//! 2. **plain scans** (no aggregates/windows/ordering) — gathered by
//!    concatenating shard results in shard order.
//! 3. **nested queries** (the split queries: window prefix sums + argmax
//!    over an absorbed aggregate) — the innermost `FROM`-subquery is
//!    resolved recursively (usually by shape 1), materialized on the
//!    coordinator, and the outer layers run there.
//!
//! Queries joining *two* sharded relations are rejected: each shard would
//! only see same-shard pairs. JoinBoost never emits such a query — every
//! join closure contains at most one fact-derived table.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::RwLock;

use joinboost_engine::column::HKey;
use joinboost_engine::table::ColumnMeta;
use joinboost_engine::{Column, DataType, Database, Datum, EngineConfig, EngineError, Table};
use joinboost_sql::ast::{Expr, Query, Statement, TableRef};
use joinboost_sql::parse_statement;

use super::{BackendCapabilities, BackendResult, SqlBackend};

/// Observable work done by a [`ShardedBackend`] (drives the scaling
/// experiments and the example's report).
#[derive(Debug, Clone, Default)]
pub struct ShardedStats {
    /// `SELECT`s fanned out to every shard and `⊕`-merged.
    pub fanout_selects: u64,
    /// Statements broadcast to every shard (DDL, updates on sharded data).
    pub broadcast_statements: u64,
    /// Statements executed on replicated tables (coordinator + shards).
    pub replicated_statements: u64,
    /// Queries answered by the coordinator alone.
    pub coordinator_selects: u64,
    /// Rows moved shard → coordinator by gathers and merges (the shuffle
    /// volume of the paper's multi-node experiments).
    pub rows_shuffled: u64,
}

/// N engine instances over a hash-partitioned fact relation, plus a
/// coordinator engine holding every replicated table and running the
/// non-distributable query layers.
///
/// See the [`crate::backend`] module docs for the routing rules and
/// `DESIGN.md` § Backends for the merge-exactness argument.
pub struct ShardedBackend {
    coordinator: Database,
    shards: Vec<Database>,
    label: String,
    /// Lowercase name of the relation to partition on load.
    fact: String,
    /// Column of the fact relation whose hash picks the shard.
    shard_key: String,
    /// Lowercase names of fact-derived (shard-local) tables.
    sharded: RwLock<HashSet<String>>,
    column_swap: bool,
    tmp_counter: AtomicUsize,
    fanout_selects: AtomicU64,
    broadcast_statements: AtomicU64,
    replicated_statements: AtomicU64,
    coordinator_selects: AtomicU64,
    rows_shuffled: AtomicU64,
}

impl ShardedBackend {
    /// Create `num_shards` engine instances (plus a coordinator) with the
    /// given configuration. `fact_table` will be hash-partitioned on
    /// `shard_key` when it is bulk-loaded; every other table replicates.
    pub fn new(
        num_shards: usize,
        config: EngineConfig,
        fact_table: &str,
        shard_key: &str,
    ) -> ShardedBackend {
        assert!(num_shards >= 1, "at least one shard");
        ShardedBackend {
            coordinator: Database::new(config.clone()),
            shards: (0..num_shards)
                .map(|_| Database::new(config.clone()))
                .collect(),
            label: format!("sharded x{num_shards}"),
            fact: fact_table.to_ascii_lowercase(),
            shard_key: shard_key.to_string(),
            sharded: RwLock::new(HashSet::new()),
            column_swap: config.allow_swap,
            tmp_counter: AtomicUsize::new(0),
            fanout_selects: AtomicU64::new(0),
            broadcast_statements: AtomicU64::new(0),
            replicated_statements: AtomicU64::new(0),
            coordinator_selects: AtomicU64::new(0),
            rows_shuffled: AtomicU64::new(0),
        }
    }

    /// Number of fact partitions.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's engine (inspection/tests).
    pub fn shard(&self, i: usize) -> &Database {
        &self.shards[i]
    }

    /// The coordinator engine (inspection/tests).
    pub fn coordinator(&self) -> &Database {
        &self.coordinator
    }

    /// Is this table hash-partitioned (fact-derived) rather than
    /// replicated?
    pub fn is_sharded(&self, name: &str) -> bool {
        self.sharded.read().contains(&name.to_ascii_lowercase())
    }

    /// Snapshot of the work counters.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            fanout_selects: self.fanout_selects.load(Ordering::Relaxed),
            broadcast_statements: self.broadcast_statements.load(Ordering::Relaxed),
            replicated_statements: self.replicated_statements.load(Ordering::Relaxed),
            coordinator_selects: self.coordinator_selects.load(Ordering::Relaxed),
            rows_shuffled: self.rows_shuffled.load(Ordering::Relaxed),
        }
    }

    // ---- routing ----------------------------------------------------------

    /// The subset of `names` that are currently sharded (normalized,
    /// deduplicated).
    fn filter_sharded(&self, names: &[String]) -> Vec<String> {
        let sharded = self.sharded.read();
        let mut out: Vec<String> = names
            .iter()
            .map(|n| n.to_ascii_lowercase())
            .filter(|n| sharded.contains(n))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Reject statements that reference a sharded table from *expression*
    /// position (an `IN (SELECT ..)` predicate, for instance): each shard
    /// would evaluate the subquery against only its own partition, and a
    /// replicated outer table would be scanned once per shard — silently
    /// wrong either way, so this shape errors instead.
    fn reject_sharded_expr_refs(&self, expr_refs: &[String], what: &str) -> BackendResult<()> {
        let bad = self.filter_sharded(expr_refs);
        if bad.is_empty() {
            return Ok(());
        }
        Err(EngineError::Other(format!(
            "sharded relation {} is referenced from an expression subquery in {what}; \
             each shard would see only its own partition — rewrite with the sharded \
             relation in the FROM clause",
            bad.join(", ")
        )))
    }

    /// Run a closure on every shard in parallel, collecting results in
    /// shard order.
    fn on_all_shards<F>(&self, f: F) -> Vec<BackendResult>
    where
        F: Fn(&Database) -> BackendResult + Sync,
    {
        if self.shards.len() == 1 {
            return vec![f(&self.shards[0])];
        }
        let fr = &f;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|db| scope.spawn(move |_| fr(db)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        .expect("shard scope")
    }

    /// Broadcast a statement to every shard; marks `creates` sharded.
    fn broadcast(&self, stmt: &Statement, creates: Option<&str>) -> BackendResult {
        self.broadcast_statements.fetch_add(1, Ordering::Relaxed);
        for r in self.on_all_shards(|db| db.execute_statement(stmt)) {
            r?;
        }
        if let Some(name) = creates {
            self.sharded.write().insert(name.to_ascii_lowercase());
        }
        Ok(Table::new())
    }

    /// Execute a statement on the coordinator and every shard (replicated
    /// tables must stay in sync everywhere).
    fn replicate(&self, stmt: &Statement) -> BackendResult {
        self.replicated_statements.fetch_add(1, Ordering::Relaxed);
        let result = self.coordinator.execute_statement(stmt)?;
        for r in self.on_all_shards(|db| db.execute_statement(stmt)) {
            r?;
        }
        Ok(result)
    }

    // ---- SELECT routing ---------------------------------------------------

    fn exec_select(&self, q: &Query) -> BackendResult {
        let stmt = Statement::Select(q.clone());
        let mut from_refs = Vec::new();
        collect_from_tables(q, &mut from_refs);
        let mut expr_refs = Vec::new();
        collect_expr_position_tables(q, &mut expr_refs);
        let from_sharded = self.filter_sharded(&from_refs);
        if from_sharded.is_empty() && self.filter_sharded(&expr_refs).is_empty() {
            self.coordinator_selects.fetch_add(1, Ordering::Relaxed);
            return self.coordinator.execute_statement(&stmt);
        }
        self.reject_sharded_expr_refs(&expr_refs, "a SELECT")?;
        if from_sharded.len() > 1 {
            return Err(EngineError::Other(format!(
                "sharded backend cannot join two sharded relations ({}): \
                 each shard would only see same-shard pairs; in: {q}",
                from_sharded.join(", ")
            )));
        }
        if let Some(specs) = distributable_merge_plan(q) {
            return self.fan_out_merge(q, &specs);
        }
        if is_plain_scan(q) {
            return self.gather(q);
        }
        // Nested query: resolve the FROM-subquery recursively, materialize
        // the merged result on the coordinator, run the outer layers there.
        if let Some(TableRef::Subquery { query, alias }) = &q.from {
            let inner = self.exec_select(query)?;
            let tmp = format!(
                "jb_shard_merge_{}",
                self.tmp_counter.fetch_add(1, Ordering::Relaxed)
            );
            self.coordinator.create_table(&tmp, inner)?;
            let mut outer = q.clone();
            outer.from = Some(TableRef::Named {
                name: tmp.clone(),
                alias: alias.clone(),
            });
            let mut outer_refs = Vec::new();
            collect_query_tables(&outer, &mut outer_refs);
            let result = if self.filter_sharded(&outer_refs).is_empty() {
                self.coordinator
                    .execute_statement(&Statement::Select(outer))
            } else {
                Err(EngineError::Other(format!(
                    "outer query layers may not reference sharded tables: {q}"
                )))
            };
            let _ = self.coordinator.drop_table(&tmp);
            return result;
        }
        Err(EngineError::Other(format!(
            "query shape not supported over sharded data \
             (not a mergeable SPJA aggregate, plain scan, or nested query): {q}"
        )))
    }

    /// Shape 1: run on every shard, `⊕`-merge the partial aggregates.
    fn fan_out_merge(&self, q: &Query, specs: &[MergeSpec]) -> BackendResult {
        self.fanout_selects.fetch_add(1, Ordering::Relaxed);
        let stmt = Statement::Select(q.clone());
        let mut partials = Vec::with_capacity(self.shards.len());
        for r in self.on_all_shards(|db| db.execute_statement(&stmt)) {
            partials.push(r?);
        }
        let shuffled: usize = partials.iter().map(Table::num_rows).sum();
        self.rows_shuffled
            .fetch_add(shuffled as u64, Ordering::Relaxed);
        merge_partials(partials, specs)
    }

    /// Shape 2: concatenate shard results in shard order.
    fn gather(&self, q: &Query) -> BackendResult {
        self.fanout_selects.fetch_add(1, Ordering::Relaxed);
        let stmt = Statement::Select(q.clone());
        let mut partials = Vec::with_capacity(self.shards.len());
        for r in self.on_all_shards(|db| db.execute_statement(&stmt)) {
            partials.push(r?);
        }
        let shuffled: usize = partials.iter().map(Table::num_rows).sum();
        self.rows_shuffled
            .fetch_add(shuffled as u64, Ordering::Relaxed);
        concat_tables(partials)
    }

    /// Hash of the shard-key datum: FNV-1a over a type-tagged byte
    /// encoding plus an avalanche finalizer (FNV's low bit is a plain XOR
    /// of input low bits, so without the mix all-even surrogate ids would
    /// collapse onto one shard under `% 2`). Deterministic across runs.
    fn shard_of(&self, key: &Datum) -> usize {
        const OFFSET: u64 = 1469598103934665603;
        const PRIME: u64 = 1099511628211;
        let fnv = |tag: u8, bytes: &[u8]| -> u64 {
            let mut acc = (OFFSET ^ tag as u64).wrapping_mul(PRIME);
            for &b in bytes {
                acc = (acc ^ b as u64).wrapping_mul(PRIME);
            }
            // splitmix64-style finalizer: mix high bits into the low bits
            // the modulo below actually looks at.
            acc ^= acc >> 33;
            acc = acc.wrapping_mul(0xff51afd7ed558ccd);
            acc ^= acc >> 33;
            acc = acc.wrapping_mul(0xc4ceb9fe1a85ec53);
            acc ^ (acc >> 33)
        };
        let h = match key {
            Datum::Int(v) => fnv(0, &v.to_le_bytes()),
            Datum::Float(v) => fnv(1, &v.to_bits().to_le_bytes()),
            Datum::Str(s) => fnv(2, s.as_bytes()),
            Datum::Null => fnv(3, &[]),
        };
        (h % self.shards.len() as u64) as usize
    }
}

impl SqlBackend for ShardedBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            window_functions: true, // the coordinator runs window layers
            ast_statements: true,
            column_swap: self.column_swap,
            external_interop: false, // no single array store to swap into
            shards: self.shards.len(),
        }
    }

    fn execute(&self, sql: &str) -> BackendResult {
        let stmt = parse_statement(sql)?;
        self.execute_ast(&stmt)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        match stmt {
            Statement::Select(q) => self.exec_select(q),
            Statement::CreateTableAs { name, query, .. } => {
                let mut expr_refs = Vec::new();
                collect_expr_position_tables(query, &mut expr_refs);
                self.reject_sharded_expr_refs(&expr_refs, "a CREATE TABLE AS")?;
                let mut from_refs = Vec::new();
                collect_from_tables(query, &mut from_refs);
                if self.filter_sharded(&from_refs).is_empty() {
                    self.replicate(stmt)
                } else {
                    self.broadcast(stmt, Some(name))
                }
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let mut expr_refs = Vec::new();
                for (_, e) in assignments {
                    collect_expr_tables(e, &mut expr_refs);
                }
                if let Some(w) = where_clause {
                    collect_expr_tables(w, &mut expr_refs);
                }
                self.reject_sharded_expr_refs(&expr_refs, "an UPDATE")?;
                // Route by the *written* table: a sharded target updates
                // shard-locally; a replicated target must update every
                // replica (coordinator included) to stay consistent.
                if self.is_sharded(table) {
                    self.broadcast(stmt, None)
                } else {
                    self.replicate(stmt)
                }
            }
            Statement::SwapColumn {
                table_a, table_b, ..
            } => match (self.is_sharded(table_a), self.is_sharded(table_b)) {
                (true, true) => self.broadcast(stmt, None),
                (false, false) => self.replicate(stmt),
                _ => Err(EngineError::Other(format!(
                    "cannot SWAP COLUMN between sharded and replicated tables \
                     ({table_a}, {table_b})"
                ))),
            },
            Statement::DropTable { name, if_exists } => {
                if !if_exists && !self.has_table(name) {
                    return Err(EngineError::UnknownTable(name.clone()));
                }
                // Drop wherever the table lives; replicas may be partial
                // after errors, so tolerate misses everywhere.
                let _ = self.coordinator.drop_table(name);
                for db in &self.shards {
                    let _ = db.drop_table(name);
                }
                self.sharded.write().remove(&name.to_ascii_lowercase());
                Ok(Table::new())
            }
        }
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        if name.eq_ignore_ascii_case(&self.fact) {
            // Hash-partition the fact relation on the shard key.
            let kidx = table.resolve(None, &self.shard_key)?;
            let n = self.shards.len();
            let mut masks: Vec<Vec<bool>> = vec![vec![false; table.num_rows()]; n];
            #[allow(clippy::needless_range_loop)] // i indexes the key column and masks
            for i in 0..table.num_rows() {
                let s = self.shard_of(&table.columns[kidx].get(i));
                masks[s][i] = true;
            }
            for (db, mask) in self.shards.iter().zip(&masks) {
                db.create_table(name, table.filter(mask))?;
            }
            self.sharded.write().insert(self.fact.clone());
            Ok(())
        } else {
            self.coordinator.create_table(name, table.clone())?;
            for db in &self.shards {
                db.create_table(name, table.clone())?;
            }
            Ok(())
        }
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        if self.is_sharded(name) {
            let mut parts = Vec::with_capacity(self.shards.len());
            for r in self.on_all_shards(|db| db.snapshot(name)) {
                parts.push(r?);
            }
            let shuffled: usize = parts.iter().map(Table::num_rows).sum();
            self.rows_shuffled
                .fetch_add(shuffled as u64, Ordering::Relaxed);
            concat_tables(parts)
        } else {
            self.coordinator.snapshot(name)
        }
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        if self.is_sharded(table) {
            self.shards[0].column_names(table)
        } else {
            self.coordinator.column_names(table)
        }
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        if self.is_sharded(table) {
            self.shards[0].column_dtype(table, column)
        } else {
            self.coordinator.column_dtype(table, column)
        }
    }

    fn has_table(&self, name: &str) -> bool {
        self.coordinator.has_table(name) || self.shards.iter().any(|db| db.has_table(name))
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        if self.is_sharded(name) {
            let mut total = 0;
            for db in &self.shards {
                total += db.row_count(name)?;
            }
            Ok(total)
        } else {
            self.coordinator.row_count(name)
        }
    }
}

// ---------------------------------------------------------------------------
// Merge planning
// ---------------------------------------------------------------------------

/// How one output column of a fanned-out aggregate merges across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeSpec {
    /// Group key: identifies the row, not merged.
    Key,
    /// Partial sums/counts add (`⊕` of the semi-ring).
    Sum,
    /// Partial minima take the least.
    Min,
    /// Partial maxima take the greatest.
    Max,
}

/// Decide whether `q` fans out with an exact merge, and how each select
/// item merges. `None` if the query is not a distributable SPJA aggregate.
fn distributable_merge_plan(q: &Query) -> Option<Vec<MergeSpec>> {
    // Fan-out replays the whole query per shard, so the source must be
    // named tables and the result must not be ordered or truncated.
    if !matches!(q.from, Some(TableRef::Named { .. })) {
        return None;
    }
    if q.joins
        .iter()
        .any(|j| !matches!(j.table, TableRef::Named { .. }))
    {
        return None;
    }
    if !q.order_by.is_empty() || q.limit.is_some() {
        return None;
    }
    let mut specs = Vec::with_capacity(q.items.len());
    let mut key_items = 0usize;
    for item in &q.items {
        if q.group_by.contains(&item.expr) {
            specs.push(MergeSpec::Key);
            key_items += 1;
            continue;
        }
        match &item.expr {
            Expr::Func { name, .. } => match name.as_str() {
                "SUM" | "COUNT" => specs.push(MergeSpec::Sum),
                "MIN" => specs.push(MergeSpec::Min),
                "MAX" => specs.push(MergeSpec::Max),
                // AVG partials do not ⊕-merge; anything else is not an
                // aggregate output.
                _ => return None,
            },
            _ => return None,
        }
    }
    // Every group-by expression must be carried in the output, or rows of
    // the same group could not be matched across shards (this is why
    // histogram-binned absorbs — GROUP BY FLOOR(..) with MAX(f) selected —
    // are rejected rather than silently merged wrong).
    if key_items != q.group_by.len() {
        return None;
    }
    if q.group_by.is_empty() && specs.is_empty() {
        return None;
    }
    Some(specs)
}

/// A query with no aggregation, windows, grouping, ordering or limit:
/// shard results concatenate.
fn is_plain_scan(q: &Query) -> bool {
    q.group_by.is_empty()
        && q.order_by.is_empty()
        && q.limit.is_none()
        && q.items
            .iter()
            .all(|it| !contains_aggregate_or_window(&it.expr))
}

fn contains_aggregate_or_window(e: &Expr) -> bool {
    match e {
        Expr::WindowSum { .. } => true,
        Expr::Func { name, args } => {
            matches!(name.as_str(), "SUM" | "COUNT" | "AVG" | "MIN" | "MAX")
                || args.iter().any(contains_aggregate_or_window)
        }
        Expr::Binary { left, right, .. } => {
            contains_aggregate_or_window(left) || contains_aggregate_or_window(right)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => contains_aggregate_or_window(expr),
        Expr::Case { whens, else_expr } => {
            whens
                .iter()
                .any(|(c, t)| contains_aggregate_or_window(c) || contains_aggregate_or_window(t))
                || else_expr
                    .as_deref()
                    .is_some_and(contains_aggregate_or_window)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate_or_window(expr) || list.iter().any(contains_aggregate_or_window)
        }
        Expr::InSubquery { expr, .. } => contains_aggregate_or_window(expr),
        Expr::Column { .. } | Expr::Literal(_) | Expr::Wildcard => false,
    }
}

// ---------------------------------------------------------------------------
// Merge execution
// ---------------------------------------------------------------------------

/// Accumulator for one aggregate cell. Integer partials stay integers
/// (exact counts); the first float partial promotes the accumulated total
/// exactly (`i64 as f64` is exact for the count magnitudes here).
#[derive(Debug, Clone)]
enum Acc {
    Empty,
    Int(i64),
    Float(f64),
    Best(Datum),
}

impl Acc {
    fn add(&mut self, v: &Datum) {
        match v {
            Datum::Null => {}
            Datum::Int(x) => match self {
                Acc::Empty => *self = Acc::Int(*x),
                Acc::Int(t) => *t += *x,
                Acc::Float(t) => *t += *x as f64,
                Acc::Best(_) => unreachable!("sum into best"),
            },
            Datum::Float(x) => match self {
                Acc::Empty => *self = Acc::Float(*x),
                Acc::Int(t) => *self = Acc::Float(*t as f64 + *x),
                Acc::Float(t) => *t += *x,
                Acc::Best(_) => unreachable!("sum into best"),
            },
            Datum::Str(_) => {}
        }
    }

    fn best(&mut self, v: &Datum, want_max: bool) {
        if v.is_null() {
            return;
        }
        match self {
            Acc::Empty => *self = Acc::Best(v.clone()),
            Acc::Best(cur) => {
                let ord = v.sql_cmp(cur);
                if (want_max && ord == std::cmp::Ordering::Greater)
                    || (!want_max && ord == std::cmp::Ordering::Less)
                {
                    *cur = v.clone();
                }
            }
            _ => unreachable!("best into sum"),
        }
    }

    fn into_datum(self) -> Datum {
        match self {
            Acc::Empty => Datum::Null,
            Acc::Int(v) => Datum::Int(v),
            Acc::Float(v) => Datum::Float(v),
            Acc::Best(d) => d,
        }
    }
}

/// `⊕`-merge per-shard partial aggregates. Groups are matched on the key
/// columns; output rows are sorted by the keys so the merged table has a
/// deterministic, backend-independent order.
fn merge_partials(partials: Vec<Table>, specs: &[MergeSpec]) -> BackendResult {
    let first = partials
        .first()
        .ok_or_else(|| EngineError::Other("no shard partials".into()))?;
    if first.num_columns() != specs.len() {
        return Err(EngineError::Other(format!(
            "merge plan arity mismatch: {} columns, {} specs",
            first.num_columns(),
            specs.len()
        )));
    }
    let meta: Vec<ColumnMeta> = first.meta.clone();
    let key_cols: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == MergeSpec::Key)
        .map(|(i, _)| i)
        .collect();
    let mut slots: HashMap<Vec<HKey>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Datum>> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    for t in &partials {
        if t.num_columns() != specs.len() {
            return Err(EngineError::Other("shard partial arity mismatch".into()));
        }
        for row in 0..t.num_rows() {
            let hk: Vec<HKey> = key_cols.iter().map(|&c| t.columns[c].hkey(row)).collect();
            let slot = *slots.entry(hk).or_insert_with(|| {
                keys.push(key_cols.iter().map(|&c| t.columns[c].get(row)).collect());
                accs.push(specs.iter().map(|_| Acc::Empty).collect());
                keys.len() - 1
            });
            for (c, spec) in specs.iter().enumerate() {
                let v = t.columns[c].get(row);
                match spec {
                    MergeSpec::Key => {}
                    MergeSpec::Sum => accs[slot][c].add(&v),
                    MergeSpec::Min => accs[slot][c].best(&v, false),
                    MergeSpec::Max => accs[slot][c].best(&v, true),
                }
            }
        }
    }
    // Deterministic output order: sort groups by their key values.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| {
        for (ka, kb) in keys[a].iter().zip(&keys[b]) {
            let ord = ka.sql_cmp(kb);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Table::new();
    for (c, (m, spec)) in meta.iter().zip(specs).enumerate() {
        let vals: Vec<Datum> = order
            .iter()
            .map(|&slot| match spec {
                MergeSpec::Key => {
                    let ki = key_cols.iter().position(|&k| k == c).expect("key column");
                    keys[slot][ki].clone()
                }
                _ => accs[slot][c].clone().into_datum(),
            })
            .collect();
        out.push_column(ColumnMeta::new(m.name.clone()), Column::from_datums(&vals));
    }
    Ok(out)
}

/// Vertically concatenate shard results (layouts must match). Int and
/// float columns without NULLs concatenate slice-to-slice; only string or
/// nullable columns take the per-value fallback.
fn concat_tables(parts: Vec<Table>) -> BackendResult {
    let first = parts
        .first()
        .ok_or_else(|| EngineError::Other("no shard partials".into()))?;
    let meta: Vec<ColumnMeta> = first.meta.clone();
    let ncols = first.num_columns();
    if parts.iter().any(|t| t.num_columns() != ncols) {
        return Err(EngineError::Other("shard gather layout mismatch".into()));
    }
    let mut out = Table::new();
    for (ci, m) in meta.iter().enumerate() {
        let cols: Vec<&Column> = parts.iter().map(|t| &t.columns[ci]).collect();
        out.push_column(ColumnMeta::new(m.name.clone()), concat_columns(&cols));
    }
    Ok(out)
}

fn concat_columns(cols: &[&Column]) -> Column {
    let total: usize = cols.iter().map(|c| c.len()).sum();
    if cols.iter().all(|c| c.validity.is_none()) {
        if cols.iter().all(|c| c.as_i64_slice().is_some()) {
            let mut v = Vec::with_capacity(total);
            for c in cols {
                v.extend_from_slice(c.as_i64_slice().expect("checked"));
            }
            return Column::int(v);
        }
        if cols.iter().all(|c| c.as_f64_slice().is_some()) {
            let mut v = Vec::with_capacity(total);
            for c in cols {
                v.extend_from_slice(c.as_f64_slice().expect("checked"));
            }
            return Column::float(v);
        }
    }
    let mut vals = Vec::with_capacity(total);
    for c in cols {
        for i in 0..c.len() {
            vals.push(c.get(i));
        }
    }
    Column::from_datums(&vals)
}

// ---------------------------------------------------------------------------
// Table-reference collection
// ---------------------------------------------------------------------------

/// Tables in the FROM/JOIN closure, through nested `FROM`-subqueries —
/// the positions where a sharded relation may legitimately appear.
fn collect_from_tables(q: &Query, out: &mut Vec<String>) {
    fn tref(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Named { name, .. } => out.push(name.clone()),
            TableRef::Subquery { query, .. } => collect_from_tables(query, out),
        }
    }
    if let Some(from) = &q.from {
        tref(from, out);
    }
    for j in &q.joins {
        tref(&j.table, out);
    }
}

/// Tables referenced from *expression* position — select items, `WHERE`,
/// `GROUP BY`, `ORDER BY`, join `ON` (each including any `IN (SELECT ..)`
/// subquery in full) — through nested `FROM`-subqueries. Sharded
/// relations here cannot be fanned out correctly and are rejected.
fn collect_expr_position_tables(q: &Query, out: &mut Vec<String>) {
    for item in &q.items {
        collect_expr_tables(&item.expr, out);
    }
    if let Some(w) = &q.where_clause {
        collect_expr_tables(w, out);
    }
    for g in &q.group_by {
        collect_expr_tables(g, out);
    }
    for o in &q.order_by {
        collect_expr_tables(&o.expr, out);
    }
    for j in &q.joins {
        if let Some(on) = &j.on {
            collect_expr_tables(on, out);
        }
        if let TableRef::Subquery { query, .. } = &j.table {
            collect_expr_position_tables(query, out);
        }
    }
    if let Some(TableRef::Subquery { query, .. }) = &q.from {
        collect_expr_position_tables(query, out);
    }
}

/// Every table a query references, in any position.
fn collect_query_tables(q: &Query, out: &mut Vec<String>) {
    if let Some(from) = &q.from {
        collect_tref_tables(from, out);
    }
    for j in &q.joins {
        collect_tref_tables(&j.table, out);
        if let Some(on) = &j.on {
            collect_expr_tables(on, out);
        }
    }
    for item in &q.items {
        collect_expr_tables(&item.expr, out);
    }
    if let Some(w) = &q.where_clause {
        collect_expr_tables(w, out);
    }
    for g in &q.group_by {
        collect_expr_tables(g, out);
    }
    for o in &q.order_by {
        collect_expr_tables(&o.expr, out);
    }
}

fn collect_tref_tables(t: &TableRef, out: &mut Vec<String>) {
    match t {
        TableRef::Named { name, .. } => out.push(name.clone()),
        TableRef::Subquery { query, .. } => collect_query_tables(query, out),
    }
}

fn collect_expr_tables(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Binary { left, right, .. } => {
            collect_expr_tables(left, out);
            collect_expr_tables(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_expr_tables(expr, out),
        Expr::Func { args, .. } => {
            for a in args {
                collect_expr_tables(a, out);
            }
        }
        Expr::WindowSum { arg, order_by } => {
            collect_expr_tables(arg, out);
            collect_expr_tables(order_by, out);
        }
        Expr::Case { whens, else_expr } => {
            for (c, t) in whens {
                collect_expr_tables(c, out);
                collect_expr_tables(t, out);
            }
            if let Some(el) = else_expr {
                collect_expr_tables(el, out);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            collect_expr_tables(expr, out);
            collect_query_tables(query, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_expr_tables(expr, out);
            for i in list {
                collect_expr_tables(i, out);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n_shards: usize) -> ShardedBackend {
        let b = ShardedBackend::new(n_shards, EngineConfig::duckdb_mem(), "fact", "k");
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int((0..100).map(|i| i % 10).collect())),
                ("y", Column::float((0..100).map(|i| i as f64).collect())),
            ]),
        )
        .unwrap();
        b.create_table(
            "dim",
            Table::from_columns(vec![
                ("k", Column::int((0..10).collect())),
                ("grp", Column::int((0..10).map(|i| i % 2).collect())),
            ]),
        )
        .unwrap();
        b
    }

    #[test]
    fn partitions_fact_and_replicates_dims() {
        let b = star(4);
        assert!(b.is_sharded("fact"));
        assert!(!b.is_sharded("dim"));
        assert_eq!(b.row_count("fact").unwrap(), 100);
        let per_shard: Vec<usize> = (0..4)
            .map(|i| b.shard(i).row_count("fact").unwrap())
            .collect();
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
        assert_eq!(b.coordinator().row_count("dim").unwrap(), 10);
        assert!(!b.coordinator().has_table("fact"));
    }

    #[test]
    fn grouped_aggregate_merges_exactly_across_shard_counts() {
        let single = star(1);
        let q = "SELECT grp, SUM(y) AS s, COUNT(*) AS c \
                 FROM fact JOIN dim USING (k) GROUP BY grp";
        let expected = single.query(q).unwrap();
        for n in [2, 3, 4] {
            let b = star(n);
            let got = b.query(q).unwrap();
            assert_eq!(got, expected, "{n} shards diverged");
            assert!(b.stats().fanout_selects > 0);
            assert!(b.stats().rows_shuffled > 0);
        }
    }

    #[test]
    fn sharded_create_table_as_stays_shard_local() {
        let b = star(3);
        b.execute("CREATE TABLE msg AS SELECT k, SUM(y) AS s FROM fact GROUP BY k")
            .unwrap();
        assert!(b.is_sharded("msg"));
        assert!(!b.coordinator().has_table("msg"));
        // Joining the replicated dim against the shard-local message still
        // merges to the global answer.
        let t = b
            .query("SELECT grp, SUM(s) AS s FROM dim JOIN msg USING (k) GROUP BY grp")
            .unwrap();
        let expected = star(1)
            .query("SELECT grp, SUM(y) AS s FROM fact JOIN dim USING (k) GROUP BY grp")
            .unwrap();
        assert_eq!(
            t.column(None, "s").unwrap(),
            expected.column(None, "s").unwrap()
        );
        b.execute("DROP TABLE msg").unwrap();
        assert!(!b.has_table("msg"));
    }

    #[test]
    fn nested_split_query_runs_outer_layers_on_coordinator() {
        // The Example-2 shape: window prefix sums + argmax over an
        // absorbed aggregate of sharded data.
        let q = "SELECT val, c, s FROM (SELECT val, SUM(c) OVER (ORDER BY val) AS c, \
                 SUM(s) OVER (ORDER BY val) AS s FROM (SELECT grp AS val, COUNT(*) AS c, \
                 SUM(y) AS s FROM fact JOIN dim USING (k) GROUP BY grp) AS g) AS w \
                 ORDER BY s DESC LIMIT 1";
        let expected = star(1).query(q).unwrap();
        for n in [2, 4] {
            let got = star(n).query(q).unwrap();
            assert_eq!(got, expected, "{n} shards diverged");
        }
    }

    #[test]
    fn updates_broadcast_to_shards() {
        let b = star(3);
        b.execute("UPDATE fact SET y = 0.0 WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
            .unwrap();
        let t = b.query("SELECT SUM(y) AS s FROM fact").unwrap();
        let expected = {
            let s1 = star(1);
            s1.execute("UPDATE fact SET y = 0.0 WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
                .unwrap();
            s1.query("SELECT SUM(y) AS s FROM fact").unwrap()
        };
        assert_eq!(t, expected);
    }

    #[test]
    fn plain_scan_gathers_all_rows() {
        let b = star(4);
        let t = b.query("SELECT y FROM fact WHERE k = 3").unwrap();
        assert_eq!(t.num_rows(), 10);
    }

    #[test]
    fn joining_two_sharded_relations_is_rejected() {
        let b = star(2);
        b.execute("CREATE TABLE m1 AS SELECT k, SUM(y) AS s FROM fact GROUP BY k")
            .unwrap();
        let err = b
            .query("SELECT SUM(fact.y) AS s FROM fact JOIN m1 USING (k)")
            .unwrap_err();
        assert!(err.to_string().contains("two sharded relations"), "{err}");
    }

    #[test]
    fn binned_absorb_without_key_in_output_is_rejected_not_wrong() {
        let b = star(2);
        // GROUP BY FLOOR(..) with only MAX selected: groups cannot be
        // matched across shards from the output alone.
        let err = b
            .query("SELECT MAX(y) AS val, COUNT(*) AS c FROM fact GROUP BY FLOOR(y / 10.0)")
            .unwrap_err();
        assert!(
            err.to_string().contains("not supported over sharded data"),
            "{err}"
        );
    }

    #[test]
    fn sharded_ref_inside_expression_subquery_is_rejected_not_multiplied() {
        // A replicated outer table filtered by an IN-subquery over the
        // sharded fact: fanning out would scan the dim replica once per
        // shard and ADD partials — silently shard-count-multiplied. Must
        // error instead.
        let b = star(4);
        for q in [
            "SELECT SUM(grp) AS s FROM dim WHERE k IN (SELECT k FROM fact WHERE y > 50.0)",
            "SELECT grp FROM dim WHERE k IN (SELECT k FROM fact WHERE y > 50.0)",
        ] {
            let err = b.query(q).unwrap_err();
            assert!(err.to_string().contains("expression subquery"), "{err}");
        }
        // Same shape with a replicated subquery target is fine.
        let t = b
            .query("SELECT SUM(y) AS s FROM fact WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
            .unwrap();
        assert_eq!(
            t,
            star(1)
                .query("SELECT SUM(y) AS s FROM fact WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
                .unwrap()
        );
    }

    #[test]
    fn update_of_replicated_table_with_sharded_predicate_is_rejected() {
        // Broadcasting would leave the coordinator stale and make shard
        // replicas diverge (each evaluates the subquery on its partition).
        let b = star(2);
        let err = b
            .execute("UPDATE dim SET grp = 9 WHERE k IN (SELECT k FROM fact WHERE y > 0.0)")
            .unwrap_err();
        assert!(err.to_string().contains("expression subquery"), "{err}");
        // Replicated-only updates still apply everywhere.
        b.execute("UPDATE dim SET grp = 9 WHERE k = 0").unwrap();
        for db in [b.coordinator(), b.shard(0), b.shard(1)] {
            let t = db.query("SELECT grp FROM dim WHERE k = 0").unwrap();
            assert_eq!(t.column(None, "grp").unwrap().get(0), Datum::Int(9));
        }
    }

    #[test]
    fn swap_between_sharded_and_replicated_is_rejected() {
        let b = ShardedBackend::new(
            2,
            EngineConfig {
                allow_swap: true,
                ..EngineConfig::duckdb_mem()
            },
            "fact",
            "k",
        );
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int(vec![1, 2])),
                ("y", Column::float(vec![1.0, 2.0])),
            ]),
        )
        .unwrap();
        b.create_table(
            "dim",
            Table::from_columns(vec![
                ("k", Column::int(vec![1, 2])),
                ("y", Column::float(vec![9.0, 9.0])),
            ]),
        )
        .unwrap();
        let err = b.execute("SWAP COLUMN fact.y WITH dim.y").unwrap_err();
        assert!(err.to_string().contains("SWAP COLUMN"), "{err}");
    }

    #[test]
    fn strided_integer_keys_still_spread_across_shards() {
        // All-even surrogate ids: `v % shards` would land everything on
        // shard 0; the FNV hash must spread them.
        let b = ShardedBackend::new(2, EngineConfig::duckdb_mem(), "fact", "k");
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int((0..100).map(|i| i * 2).collect())),
                ("y", Column::float(vec![1.0; 100])),
            ]),
        )
        .unwrap();
        let (a, c) = (
            b.shard(0).row_count("fact").unwrap(),
            b.shard(1).row_count("fact").unwrap(),
        );
        assert_eq!(a + c, 100);
        assert!(a > 10 && c > 10, "skewed partition: {a}/{c}");
    }

    #[test]
    fn snapshot_gathers_partitions() {
        let b = star(3);
        let t = b.snapshot("fact").unwrap();
        assert_eq!(t.num_rows(), 100);
        let sum: f64 = (0..t.num_rows())
            .map(|i| t.column(None, "y").unwrap().f64_at(i).unwrap())
            .sum();
        assert_eq!(sum, 4950.0);
    }
}
