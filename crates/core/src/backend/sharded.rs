//! The sharded fan-out backend: one fact partition per engine instance.
//!
//! Reproduces the paper's multi-node setup (Figures 12–13) behind the
//! [`SqlBackend`] trait: dimension tables are replicated to every shard
//! (and to a coordinator engine), the fact relation is hash-partitioned on
//! a shard key, and every table *derived from* the fact — the lifted fact,
//! its messages — stays shard-local. Statements route by the tables they
//! reference:
//!
//! * statements touching a sharded table broadcast to all shards (DDL,
//!   residual updates) or fan out and merge (`SELECT`s),
//! * statements over replicated tables run everywhere (so replicas stay
//!   in sync) or on the coordinator alone (plain reads).
//!
//! `SELECT`s over sharded data come in three shapes:
//!
//! 1. **distributable SPJA aggregates** (`SELECT keys, SUM(..) .. GROUP BY
//!    keys`) — executed on every shard in parallel, partial aggregates
//!    `⊕`-merged by group key (SUM/COUNT partials add, MIN/MAX partials
//!    take the best). Because the fact partition induces a disjoint
//!    partition of the join result, the merge is exact ⊕, not an
//!    approximation (Definition 1: `c`, `s`, `q` are additive). A group
//!    key missing from the output (histogram-binned absorbs, `GROUP BY
//!    FLOOR(..)`) is *injected* as an extra output column per shard and
//!    projected away after the merge.
//! 2. **plain scans** (no aggregates/windows/ordering) — gathered by
//!    concatenating shard results in shard order.
//! 3. **split queries** (window prefix sums + argmax over an absorbed
//!    aggregate, the shape of [`crate::sqlgen::numeric_split_query`]) —
//!    evaluated *shard-locally*: each shard keeps its per-value
//!    aggregates, ships boundary keys and per-interval boundary prefix
//!    sums, and only the intervals that can still contain the global
//!    argmax (by convexity bounds on the criteria) ship their rows. The
//!    coordinator assembles a run-compressed table whose window/argmax
//!    evaluation is *identical* to the full merge — see `DESIGN.md`
//!    § "Distributed split evaluation" — cutting the shuffle volume from
//!    O(Σ feature cardinality) to O(shards · k) per split.
//! 4. **nested queries** (anything else with a `FROM`-subquery) — the
//!    innermost subquery is resolved recursively (usually by shape 1),
//!    materialized on the coordinator, and the outer layers run there.
//!
//! Queries joining *two* sharded relations are rejected: each shard would
//! only see same-shard pairs. JoinBoost never emits such a query — every
//! join closure contains at most one fact-derived table.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::RwLock;

use joinboost_engine::column::HKey;
use joinboost_engine::table::ColumnMeta;
use joinboost_engine::{Column, DataType, Database, Datum, EngineConfig, EngineError, Table};
use joinboost_sql::ast::{BinaryOp, Expr, Query, SelectItem, Statement, TableRef, UnaryOp, Value};
use joinboost_sql::parse_statement;

use crate::sqlgen::{split_pushdown_shape, SplitQueryShape};

use super::remote::{RemoteConnection, RemoteOptions};
use super::split::{
    interval_delta_map, reconstruct_summaries, Acc, IntervalSummary, LocalSplitState, MergeSpec,
    SplitHandle, SplitSpec,
};
use super::{BackendCapabilities, BackendResult, BackendStats, SqlBackend};

/// One shard's engine as the fan-out sees it: the pluggable transport
/// behind [`ShardedBackend`].
///
/// In-process shards are bare [`Database`]s; remote shards are
/// [`RemoteConnection`]s speaking the wire protocol to a separate engine
/// process. The fan-out, `⊕`-merge and split-pushdown machinery only ever
/// talks to this trait, so multi-*process* sharding runs the exact same
/// protocol as in-process sharding — which is what lets
/// `backend_equivalence` assert bit-identical models across both.
pub trait ShardTransport: Send + Sync {
    /// Execute one statement on this shard. Remote transports print it to
    /// SQL text and ship that (sound by the `print ∘ parse ∘ print`
    /// fixed point the SQL-text backend proves).
    fn execute(&self, stmt: &Statement) -> BackendResult;

    /// Bulk-load a table on this shard (remote: framed columnar block).
    fn create_table(&self, name: &str, table: Table) -> BackendResult<()>;

    /// Materialize a full scan of a shard-local table.
    fn snapshot(&self, name: &str) -> BackendResult<Table>;

    /// Ship only the rows at the given snapshot-order positions, in that
    /// order — the messages-not-scans path of row sampling.
    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table>;

    /// Column names of a shard-local table.
    fn column_names(&self, table: &str) -> BackendResult<Vec<String>>;

    /// One column's data type.
    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType>;

    /// Does this shard hold the table?
    fn has_table(&self, name: &str) -> bool;

    /// Rows of the table on this shard.
    fn row_count(&self, name: &str) -> BackendResult<usize>;

    /// Drop a table, tolerating its absence (temp-table cleanup must
    /// succeed on replicas that never materialized it).
    fn drop_table(&self, name: &str) -> BackendResult<()>;

    /// Parse + execute SQL text (tests and diagnostics).
    fn query(&self, sql: &str) -> BackendResult {
        self.execute(&parse_statement(sql)?)
    }

    /// Open a split-protocol handle over the absorbed per-value query:
    /// the shard executes it and keeps the sorted, prefix-summed result
    /// *local*, answering the protocol through [`SplitHandle`] — so a
    /// remote transport ships boundary summaries and candidate rows, not
    /// per-value aggregates. `k > 0` asks for the first `k` equal-count
    /// boundary keys *in the open reply* (fused: over a remote transport
    /// this folds the opening `boundaries` round trip into the open
    /// frame). When this shard's data disqualifies the protocol (NULL
    /// components), the executed result comes back as
    /// [`SplitOpen::Dense`] so the caller's fallback pays no second
    /// execution.
    fn split_open(
        &self,
        stmt: &Statement,
        spec: &SplitSpec,
        k: usize,
    ) -> BackendResult<SplitOpen<'_>> {
        Ok(
            match LocalSplitState::build(self.execute(stmt)?, spec.clone()) {
                Ok(s) => {
                    let bounds = if k > 0 { s.boundaries(k)? } else { Vec::new() };
                    SplitOpen::Protocol {
                        handle: Box::new(s),
                        bounds,
                    }
                }
                Err(table) => SplitOpen::Dense(table),
            },
        )
    }

    /// Shard-partial scores for a batch of predict keys against
    /// shard-resident message tables (see [`crate::serve`]): `(found,
    /// partial)` per key, partials accumulated from `0.0` — the
    /// coordinator adds the model's initial score once per found key,
    /// which the dyadic leaf grid keeps bit-identical to single-node
    /// evaluation. The default loads the spec's tables through
    /// [`ShardTransport::snapshot`]; remote transports override it so the
    /// shard evaluates server-side and ships only scores, never tables.
    fn predict_partials(
        &self,
        spec: &crate::serve::ScorerSpec,
        keys: &[i64],
    ) -> BackendResult<Vec<(bool, f64)>> {
        let idx = crate::serve::MessageIndex::load(spec, &mut |n| self.snapshot(n))?;
        idx.eval_batch(keys, 0.0)
    }

    /// `(bytes_sent, bytes_received)` on this transport's socket; zero
    /// for in-process transports.
    fn wire_bytes(&self) -> (u64, u64) {
        (0, 0)
    }

    /// `(bytes_sent, bytes_received)` attributable to split-protocol
    /// frames only (a subset of [`ShardTransport::wire_bytes`]); zero
    /// for in-process transports. This is what lets the coordinator
    /// report *per-round* split wire volume rather than lifetime socket
    /// totals.
    fn split_wire_bytes(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// What [`ShardTransport::split_open`] produced: the shard either serves
/// the summary protocol, or hands back the absorbed result for the dense
/// merge (its data disqualified the protocol).
pub enum SplitOpen<'a> {
    /// The shard serves the summary protocol through this handle.
    Protocol {
        /// Answers boundaries/summaries/refine/fetch for this shard.
        handle: Box<dyn SplitHandle + 'a>,
        /// First-round boundary keys prefetched in the open reply (empty
        /// when the open asked for none) — the fused frame that saves
        /// the opening round trip per (shard, split query).
        bounds: Vec<Datum>,
    },
    /// Protocol inapplicable on this shard's data: the full absorbed
    /// result, for the dense fallback.
    Dense(Table),
}

impl SplitOpen<'_> {
    /// The full absorbed result, whichever side this is (consumes the
    /// handle; in-process a move, remote one fetch).
    fn into_all_rows(self) -> BackendResult<Table> {
        match self {
            SplitOpen::Protocol { handle, .. } => handle.into_all_rows(),
            SplitOpen::Dense(t) => Ok(t),
        }
    }
}

impl ShardTransport for Database {
    fn execute(&self, stmt: &Statement) -> BackendResult {
        Database::execute_statement(self, stmt)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        Database::create_table(self, name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        Database::snapshot(self, name)
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        let snap = Database::snapshot(self, name)?;
        let n = snap.num_rows();
        if let Some(&bad) = rows.iter().find(|&&r| r as usize >= n) {
            return Err(EngineError::Other(format!(
                "gather_rows: row {bad} out of range for {name} ({n} rows)"
            )));
        }
        Ok(snap.take(rows))
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        Database::column_names(self, table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        Database::column_dtype(self, table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        Database::has_table(self, name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        Database::row_count(self, name)
    }

    fn drop_table(&self, name: &str) -> BackendResult<()> {
        match Database::drop_table(self, name) {
            Err(EngineError::UnknownTable(_)) => Ok(()),
            r => r,
        }
    }
}

/// Tuning knobs of the shard-local split evaluation (shape 3 of the
/// module docs). The defaults favor high-cardinality features; tests
/// lower `min_rows` to exercise the pushdown on small data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushdownConfig {
    /// Boundary candidates each shard publishes (the `k` of the
    /// O(shards · k) shuffle bound). At least 2.
    pub boundaries_per_shard: usize,
    /// Below this many per-value rows (summed over shards) the summary
    /// protocol would ship *more* than the rows themselves, so the split
    /// falls back to a dense merge.
    pub min_rows: usize,
    /// Delta-encode refinement summaries (default on): after round 0
    /// only freshly subdivided intervals cross the wire; intervals whose
    /// bounds survived refinement are reconstructed from the
    /// coordinator's cache, bit-identically (a summary is a pure
    /// function of its interval's absolute row range). Off re-ships the
    /// full summary table every round — the dense baseline the bench
    /// compares against.
    pub delta: bool,
}

impl Default for PushdownConfig {
    fn default() -> Self {
        PushdownConfig {
            boundaries_per_shard: 16,
            min_rows: 256,
            delta: true,
        }
    }
}

/// N engine instances over a hash-partitioned fact relation, plus a
/// coordinator engine holding every replicated table and running the
/// non-distributable query layers.
///
/// See the [`crate::backend`] module docs for the routing rules and
/// `DESIGN.md` § Backends for the merge-exactness argument.
pub struct ShardedBackend {
    coordinator: Database,
    shards: Vec<Box<dyn ShardTransport>>,
    label: String,
    /// Lowercase name of the relation to partition on load.
    fact: String,
    /// Column of the fact relation whose hash picks the shard.
    shard_key: String,
    /// Lowercase names of fact-derived (shard-local) tables.
    sharded: RwLock<HashSet<String>>,
    column_swap: bool,
    tmp_counter: AtomicUsize,
    /// `None` disables the shard-local split evaluation (every split query
    /// then takes the dense nested-merge path).
    pushdown: RwLock<Option<PushdownConfig>>,
    fanout_selects: AtomicU64,
    broadcast_statements: AtomicU64,
    replicated_statements: AtomicU64,
    coordinator_selects: AtomicU64,
    pushdown_splits: AtomicU64,
    /// Summary rounds executed across all pushdown splits (the
    /// denominator of per-round wire volume). Dense split execution
    /// (pushdown off) counts each split query as one ship-everything
    /// round, so dense and delta per-round volumes compare directly.
    split_rounds: AtomicU64,
    /// Wire bytes of *dense* split execution (pushdown off): the nested
    /// fan-out-merge traffic of split-shaped queries, metered by
    /// before/after snapshots of the shard sockets. Exact when split
    /// queries run serially (the trainer's default); under inter-query
    /// parallelism concurrent traffic may be co-attributed.
    dense_split_sent: AtomicU64,
    /// See `dense_split_sent`.
    dense_split_received: AtomicU64,
    rows_shuffled: AtomicU64,
    skew_warnings: AtomicU64,
}

impl ShardedBackend {
    /// Create `num_shards` engine instances (plus a coordinator) with the
    /// given configuration. `fact_table` will be hash-partitioned on
    /// `shard_key` when it is bulk-loaded; every other table replicates.
    pub fn new(
        num_shards: usize,
        config: EngineConfig,
        fact_table: &str,
        shard_key: &str,
    ) -> ShardedBackend {
        assert!(num_shards >= 1, "at least one shard");
        let transports: Vec<Box<dyn ShardTransport>> = (0..num_shards)
            .map(|_| Box::new(Database::new(config.clone())) as Box<dyn ShardTransport>)
            .collect();
        ShardedBackend::from_transports(
            transports,
            config,
            format!("sharded x{num_shards}"),
            fact_table,
            shard_key,
        )
    }

    /// Multi-*process* sharding: one remote shard server per address (the
    /// `shard_server` binary or [`super::WireServer`]), a local
    /// coordinator engine with the given configuration. The fan-out,
    /// merge and split-pushdown protocol is the one the in-process
    /// backend runs — only the transport differs.
    pub fn remote<A>(
        addrs: &[A],
        config: EngineConfig,
        fact_table: &str,
        shard_key: &str,
        opts: RemoteOptions,
    ) -> BackendResult<ShardedBackend>
    where
        A: std::net::ToSocketAddrs + std::fmt::Display,
    {
        assert!(!addrs.is_empty(), "at least one shard server");
        let mut transports: Vec<Box<dyn ShardTransport>> = Vec::with_capacity(addrs.len());
        let mut column_swap = config.allow_swap;
        for addr in addrs {
            let conn = RemoteConnection::builder(addr)
                .connect_timeout(opts.connect_timeout)
                .io_timeout(opts.io_timeout)
                .retry(opts.retry)
                .connect()?;
            column_swap = column_swap && conn.server_column_swap();
            transports.push(Box::new(conn));
        }
        let mut backend = ShardedBackend::from_transports(
            transports,
            config,
            format!("remote x{}", addrs.len()),
            fact_table,
            shard_key,
        );
        backend.column_swap = column_swap;
        Ok(backend)
    }

    /// Assemble a backend over caller-provided shard transports (the
    /// extension point: mix in-process engines with remote connections,
    /// or plug in a custom transport). The coordinator is always a local
    /// engine — it runs the window/argmax layers and holds replicas.
    pub fn from_transports(
        transports: Vec<Box<dyn ShardTransport>>,
        config: EngineConfig,
        label: String,
        fact_table: &str,
        shard_key: &str,
    ) -> ShardedBackend {
        assert!(!transports.is_empty(), "at least one shard");
        ShardedBackend {
            coordinator: Database::new(config.clone()),
            shards: transports,
            label,
            fact: fact_table.to_ascii_lowercase(),
            shard_key: shard_key.to_string(),
            sharded: RwLock::new(HashSet::new()),
            column_swap: config.allow_swap,
            tmp_counter: AtomicUsize::new(0),
            pushdown: RwLock::new(Some(PushdownConfig::default())),
            fanout_selects: AtomicU64::new(0),
            broadcast_statements: AtomicU64::new(0),
            replicated_statements: AtomicU64::new(0),
            coordinator_selects: AtomicU64::new(0),
            pushdown_splits: AtomicU64::new(0),
            split_rounds: AtomicU64::new(0),
            dense_split_sent: AtomicU64::new(0),
            dense_split_received: AtomicU64::new(0),
            rows_shuffled: AtomicU64::new(0),
            skew_warnings: AtomicU64::new(0),
        }
    }

    /// Number of fact partitions.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's transport (inspection/tests).
    pub fn shard(&self, i: usize) -> &dyn ShardTransport {
        self.shards[i].as_ref()
    }

    /// The coordinator engine (inspection/tests).
    pub fn coordinator(&self) -> &Database {
        &self.coordinator
    }

    /// Is this table hash-partitioned (fact-derived) rather than
    /// replicated?
    pub fn is_sharded(&self, name: &str) -> bool {
        self.sharded.read().contains(&name.to_ascii_lowercase())
    }

    /// Enable or disable the shard-local split evaluation (keeps the
    /// current [`PushdownConfig`] when toggled back on).
    pub fn set_pushdown(&self, enabled: bool) {
        let mut pd = self.pushdown.write();
        if enabled {
            if pd.is_none() {
                *pd = Some(PushdownConfig::default());
            }
        } else {
            *pd = None;
        }
    }

    /// Replace the pushdown tuning knobs (also re-enables the pushdown).
    pub fn set_pushdown_config(&self, cfg: PushdownConfig) {
        *self.pushdown.write() = Some(cfg);
    }

    /// Toggle delta-encoded refinement summaries (see
    /// [`PushdownConfig::delta`]; default on). Off restores the
    /// serial-dense wire behavior — every round re-ships full summary
    /// tables — which is the baseline the bench compares against. Either
    /// way the merged result is bit-identical.
    pub fn set_split_delta(&self, enabled: bool) {
        if let Some(cfg) = self.pushdown.write().as_mut() {
            cfg.delta = enabled;
        }
    }

    /// Rows of the fact relation held by each shard, in shard order —
    /// the telemetry behind the skew warning (a hot shard key can
    /// overload one partition; see [`ShardedBackend::skew_warnings`]).
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|db| db.row_count(&self.fact).unwrap_or(0))
            .collect()
    }

    /// How many fact loads produced a skewed partition (max shard more
    /// than 4× the mean). Each one also logs a warning to stderr.
    pub fn skew_warnings(&self) -> u64 {
        self.skew_warnings.load(Ordering::Relaxed)
    }

    // ---- routing ----------------------------------------------------------

    /// The subset of `names` that are currently sharded (normalized,
    /// deduplicated).
    fn filter_sharded(&self, names: &[String]) -> Vec<String> {
        let sharded = self.sharded.read();
        let mut out: Vec<String> = names
            .iter()
            .map(|n| n.to_ascii_lowercase())
            .filter(|n| sharded.contains(n))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Reject statements that reference a sharded table from *expression*
    /// position (an `IN (SELECT ..)` predicate, for instance): each shard
    /// would evaluate the subquery against only its own partition, and a
    /// replicated outer table would be scanned once per shard — silently
    /// wrong either way, so this shape errors instead.
    fn reject_sharded_expr_refs(&self, expr_refs: &[String], what: &str) -> BackendResult<()> {
        let bad = self.filter_sharded(expr_refs);
        if bad.is_empty() {
            return Ok(());
        }
        Err(EngineError::Other(format!(
            "sharded relation {} is referenced from an expression subquery in {what}; \
             each shard would see only its own partition — rewrite with the sharded \
             relation in the FROM clause",
            bad.join(", ")
        )))
    }

    /// Run a closure on every shard in parallel, collecting results in
    /// shard order.
    fn on_all_shards<T, F>(&self, f: F) -> Vec<BackendResult<T>>
    where
        T: Send,
        F: Fn(usize, &dyn ShardTransport) -> BackendResult<T> + Sync,
    {
        if self.shards.len() == 1 {
            return vec![f(0, self.shards[0].as_ref())];
        }
        let fr = &f;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(i, db)| scope.spawn(move |_| fr(i, db.as_ref())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        })
        .expect("shard scope")
    }

    /// Broadcast a statement to every shard; marks `creates` sharded.
    fn broadcast(&self, stmt: &Statement, creates: Option<&str>) -> BackendResult {
        self.broadcast_statements.fetch_add(1, Ordering::Relaxed);
        for r in self.on_all_shards(|_, db| db.execute(stmt)) {
            r?;
        }
        if let Some(name) = creates {
            self.sharded.write().insert(name.to_ascii_lowercase());
        }
        Ok(Table::new())
    }

    /// Execute a statement on the coordinator and every shard (replicated
    /// tables must stay in sync everywhere).
    fn replicate(&self, stmt: &Statement) -> BackendResult {
        self.replicated_statements.fetch_add(1, Ordering::Relaxed);
        let result = self.coordinator.execute_statement(stmt)?;
        for r in self.on_all_shards(|_, db| db.execute(stmt)) {
            r?;
        }
        Ok(result)
    }

    // ---- SELECT routing ---------------------------------------------------

    fn exec_select(&self, q: &Query) -> BackendResult {
        let stmt = Statement::Select(q.clone());
        let mut from_refs = Vec::new();
        collect_from_tables(q, &mut from_refs);
        let mut expr_refs = Vec::new();
        collect_expr_position_tables(q, &mut expr_refs);
        let from_sharded = self.filter_sharded(&from_refs);
        if from_sharded.is_empty() && self.filter_sharded(&expr_refs).is_empty() {
            self.coordinator_selects.fetch_add(1, Ordering::Relaxed);
            return self.coordinator.execute_statement(&stmt);
        }
        self.reject_sharded_expr_refs(&expr_refs, "a SELECT")?;
        if from_sharded.len() > 1 {
            return Err(EngineError::Other(format!(
                "sharded backend cannot join two sharded relations ({}): \
                 each shard would only see same-shard pairs; in: {q}",
                from_sharded.join(", ")
            )));
        }
        if let Some(plan) = distributable_merge_plan(q) {
            return self.fan_out_merge(&plan);
        }
        if is_plain_scan(q) {
            return self.gather(q);
        }
        // Split queries evaluate shard-locally: ship summaries and top-k
        // candidate rows, not the full per-value aggregates.
        let pushdown = *self.pushdown.read();
        if let Some((shape, inner)) = split_pushdown_shape(q) {
            if let Some(cfg) = pushdown {
                if let Some(plan) = distributable_merge_plan(inner) {
                    return self.pushdown_split(q, &shape, plan, cfg);
                }
            }
            // Dense split execution (pushdown off): the nested route
            // below ships every shard's full absorbed table. Metered as
            // one ship-everything round so dense and delta split wire
            // volume compare per round.
            let (s0, r0) = self.shard_wire_totals();
            let result = self.exec_nested(q);
            let (s1, r1) = self.shard_wire_totals();
            self.split_rounds.fetch_add(1, Ordering::Relaxed);
            self.dense_split_sent
                .fetch_add(s1.saturating_sub(s0), Ordering::Relaxed);
            self.dense_split_received
                .fetch_add(r1.saturating_sub(r0), Ordering::Relaxed);
            return result;
        }
        self.exec_nested(q)
    }

    /// Total `(sent, received)` socket bytes across the shard transports.
    fn shard_wire_totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(s, r), t| {
            let (ts, tr) = t.wire_bytes();
            (s + ts, r + tr)
        })
    }

    /// Nested query: resolve the FROM-subquery recursively, materialize
    /// the merged result on the coordinator, run the outer layers there.
    fn exec_nested(&self, q: &Query) -> BackendResult {
        if let Some(TableRef::Subquery { query, alias }) = &q.from {
            let inner = self.exec_select(query)?;
            let tmp = format!(
                "jb_shard_merge_{}",
                self.tmp_counter.fetch_add(1, Ordering::Relaxed)
            );
            self.coordinator.create_table(&tmp, inner)?;
            let mut outer = q.clone();
            outer.from = Some(TableRef::Named {
                name: tmp.clone(),
                alias: alias.clone(),
            });
            let mut outer_refs = Vec::new();
            collect_query_tables(&outer, &mut outer_refs);
            let result = if self.filter_sharded(&outer_refs).is_empty() {
                self.coordinator_selects.fetch_add(1, Ordering::Relaxed);
                self.coordinator
                    .execute_statement(&Statement::Select(outer))
            } else {
                Err(EngineError::Other(format!(
                    "outer query layers may not reference sharded tables: {q}"
                )))
            };
            let _ = self.coordinator.drop_table(&tmp);
            return result;
        }
        Err(EngineError::Other(format!(
            "query shape not supported over sharded data \
             (not a mergeable SPJA aggregate, plain scan, or nested query): {q}"
        )))
    }

    /// Shape 1: run on every shard, `⊕`-merge the partial aggregates,
    /// project away any planner-injected key columns.
    fn fan_out_merge(&self, plan: &MergePlan) -> BackendResult {
        self.fanout_selects.fetch_add(1, Ordering::Relaxed);
        let stmt = Statement::Select(plan.query.clone());
        let mut partials = Vec::with_capacity(self.shards.len());
        for r in self.on_all_shards(|_, db| db.execute(&stmt)) {
            partials.push(r?);
        }
        let shuffled: usize = partials.iter().map(Table::num_rows).sum();
        self.rows_shuffled
            .fetch_add(shuffled as u64, Ordering::Relaxed);
        merge_partials(partials, &plan.specs).map(|t| drop_last_columns(t, plan.injected))
    }

    /// Shape 2: concatenate shard results in shard order.
    fn gather(&self, q: &Query) -> BackendResult {
        self.fanout_selects.fetch_add(1, Ordering::Relaxed);
        let stmt = Statement::Select(q.clone());
        let mut partials = Vec::with_capacity(self.shards.len());
        for r in self.on_all_shards(|_, db| db.execute(&stmt)) {
            partials.push(r?);
        }
        let shuffled: usize = partials.iter().map(Table::num_rows).sum();
        self.rows_shuffled
            .fetch_add(shuffled as u64, Ordering::Relaxed);
        concat_tables(partials)
    }

    /// Dense split-query resolution: every shard ships its full absorbed
    /// result and the coordinator ⊕-merges — the path the pushdown
    /// exists to avoid, kept for shapes and data the summary protocol
    /// cannot serve.
    fn dense_split_merge(&self, stmt: &Statement, plan: &MergePlan) -> BackendResult {
        let mut locals = Vec::with_capacity(self.shards.len());
        for r in self.on_all_shards(|_, db| db.execute(stmt)) {
            locals.push(r?);
        }
        let total: usize = locals.iter().map(Table::num_rows).sum();
        self.rows_shuffled
            .fetch_add(total as u64, Ordering::Relaxed);
        merge_partials(locals, &plan.specs)
    }

    /// Execute the absorbed query and open the split protocol on every
    /// shard, in parallel. Shards whose data disqualifies the protocol
    /// come back as [`SplitOpen::Dense`] with their executed result.
    fn open_splits<'a>(
        &'a self,
        stmt: &Statement,
        spec: &SplitSpec,
        k: usize,
    ) -> BackendResult<Vec<SplitOpen<'a>>> {
        let results: Vec<BackendResult<SplitOpen<'a>>> = if self.shards.len() == 1 {
            vec![self.shards[0].split_open(stmt, spec, k)]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|db| scope.spawn(move |_| db.split_open(stmt, spec, k)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            })
            .expect("shard scope")
        };
        results.into_iter().collect()
    }

    /// Shape 3: shard-local split evaluation. The absorbed inner query
    /// runs on every shard and *stays there* (behind a [`SplitHandle`]);
    /// only boundary keys, per-interval boundary prefix sums and the
    /// candidate intervals' rows ship to the coordinator — over a remote
    /// transport these are the only bytes on the wire. The coordinator
    /// assembles a run-compressed per-value table and runs the original
    /// window/argmax layers on it. The compressed evaluation is identical
    /// to the dense merge (see `DESIGN.md` § "Distributed split
    /// evaluation"), so results — and, under the dyadic recipe, bits —
    /// match the single-engine path.
    fn pushdown_split(
        &self,
        q: &Query,
        shape: &SplitQueryShape,
        plan: MergePlan,
        cfg: PushdownConfig,
    ) -> BackendResult {
        self.fanout_selects.fetch_add(1, Ordering::Relaxed);
        let stmt = Statement::Select(plan.query.clone());
        let merged = 'merged: {
            // Plan-level roles: without them (multiple keys, components
            // not ⊕-sums, a val the key cannot order) the summary
            // protocol does not apply and no handles are opened.
            let Some(spec) = split_spec_for(&plan, shape) else {
                break 'merged self.dense_split_merge(&stmt, &plan)?;
            };
            // The open is fused with the first boundaries round: each
            // shard's opening reply already carries its k equal-count
            // boundary keys, one less round trip per (shard, split
            // query) over a remote transport.
            let opens = self.open_splits(&stmt, &spec, cfg.boundaries_per_shard.max(2))?;
            let any_dense = opens.iter().any(|o| matches!(o, SplitOpen::Dense(_)));
            let total: usize = opens
                .iter()
                .map(|o| match o {
                    SplitOpen::Protocol { handle, .. } => handle.num_rows(),
                    SplitOpen::Dense(t) => t.num_rows(),
                })
                .sum();
            if any_dense || total == 0 || total < cfg.min_rows {
                // A shard disqualified the protocol (NULL components), or
                // the result sits below the protocol's break-even point
                // (the summaries would outweigh the rows). Dense merge,
                // reusing every shard's already-executed result.
                self.rows_shuffled
                    .fetch_add(total as u64, Ordering::Relaxed);
                let mut locals = Vec::with_capacity(opens.len());
                for o in opens {
                    locals.push(o.into_all_rows()?);
                }
                break 'merged merge_partials(locals, &plan.specs)?;
            }
            let mut handles: Vec<Box<dyn SplitHandle + '_>> = Vec::with_capacity(opens.len());
            let mut prefetched: Vec<Vec<Datum>> = Vec::with_capacity(opens.len());
            for o in opens {
                match o {
                    SplitOpen::Protocol { handle, bounds } => {
                        handles.push(handle);
                        prefetched.push(bounds);
                    }
                    SplitOpen::Dense(_) => unreachable!("any_dense checked above"),
                }
            }
            let (table, shipped, rounds) =
                shard_split_protocol(&handles, prefetched, &plan, shape, cfg)?;
            self.pushdown_splits.fetch_add(1, Ordering::Relaxed);
            self.split_rounds
                .fetch_add(rounds as u64, Ordering::Relaxed);
            self.rows_shuffled
                .fetch_add(shipped as u64, Ordering::Relaxed);
            table
        };
        // Window + argmax layers run on the coordinator over the merged
        // (possibly run-compressed) per-value table.
        let tmp = format!(
            "jb_shard_push_{}",
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        );
        self.coordinator.create_table(&tmp, merged)?;
        let mut outer = q.clone();
        if let Some(TableRef::Subquery { query: middle, .. }) = &mut outer.from {
            if let Some(TableRef::Subquery { alias, .. }) = &middle.from {
                middle.from = Some(TableRef::Named {
                    name: tmp.clone(),
                    alias: alias.clone(),
                });
            }
        }
        self.coordinator_selects.fetch_add(1, Ordering::Relaxed);
        let result = self
            .coordinator
            .execute_statement(&Statement::Select(outer));
        let _ = self.coordinator.drop_table(&tmp);
        result
    }

    /// Hash of the shard-key datum: FNV-1a over a type-tagged byte
    /// encoding plus an avalanche finalizer (FNV's low bit is a plain XOR
    /// of input low bits, so without the mix all-even surrogate ids would
    /// collapse onto one shard under `% 2`). Deterministic across runs.
    fn shard_of(&self, key: &Datum) -> usize {
        const OFFSET: u64 = 1469598103934665603;
        const PRIME: u64 = 1099511628211;
        let fnv = |tag: u8, bytes: &[u8]| -> u64 {
            let mut acc = (OFFSET ^ tag as u64).wrapping_mul(PRIME);
            for &b in bytes {
                acc = (acc ^ b as u64).wrapping_mul(PRIME);
            }
            // splitmix64-style finalizer: mix high bits into the low bits
            // the modulo below actually looks at.
            acc ^= acc >> 33;
            acc = acc.wrapping_mul(0xff51afd7ed558ccd);
            acc ^= acc >> 33;
            acc = acc.wrapping_mul(0xc4ceb9fe1a85ec53);
            acc ^ (acc >> 33)
        };
        let h = match key {
            Datum::Int(v) => fnv(0, &v.to_le_bytes()),
            Datum::Float(v) => fnv(1, &v.to_bits().to_le_bytes()),
            Datum::Str(s) => fnv(2, s.as_bytes()),
            Datum::Null => fnv(3, &[]),
        };
        (h % self.shards.len() as u64) as usize
    }
}

impl SqlBackend for ShardedBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            window_functions: true, // the coordinator runs window layers
            ast_statements: true,
            column_swap: self.column_swap,
            external_interop: false, // no single array store to swap into
            shards: self.shards.len(),
        }
    }

    fn execute(&self, sql: &str) -> BackendResult {
        let stmt = parse_statement(sql)?;
        self.execute_ast(&stmt)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        match stmt {
            Statement::Select(q) => self.exec_select(q),
            Statement::CreateTableAs { name, query, .. } => {
                let mut expr_refs = Vec::new();
                collect_expr_position_tables(query, &mut expr_refs);
                self.reject_sharded_expr_refs(&expr_refs, "a CREATE TABLE AS")?;
                let mut from_refs = Vec::new();
                collect_from_tables(query, &mut from_refs);
                if self.filter_sharded(&from_refs).is_empty() {
                    self.replicate(stmt)
                } else {
                    self.broadcast(stmt, Some(name))
                }
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => {
                let mut expr_refs = Vec::new();
                for (_, e) in assignments {
                    collect_expr_tables(e, &mut expr_refs);
                }
                if let Some(w) = where_clause {
                    collect_expr_tables(w, &mut expr_refs);
                }
                self.reject_sharded_expr_refs(&expr_refs, "an UPDATE")?;
                // Route by the *written* table: a sharded target updates
                // shard-locally; a replicated target must update every
                // replica (coordinator included) to stay consistent.
                if self.is_sharded(table) {
                    self.broadcast(stmt, None)
                } else {
                    self.replicate(stmt)
                }
            }
            Statement::SwapColumn {
                table_a, table_b, ..
            } => match (self.is_sharded(table_a), self.is_sharded(table_b)) {
                (true, true) => self.broadcast(stmt, None),
                (false, false) => self.replicate(stmt),
                _ => Err(EngineError::Other(format!(
                    "cannot SWAP COLUMN between sharded and replicated tables \
                     ({table_a}, {table_b})"
                ))),
            },
            Statement::DropTable { name, if_exists } => {
                if !if_exists && !self.has_table(name) {
                    return Err(EngineError::UnknownTable(name.clone()));
                }
                // Drop wherever the table lives; replicas may be partial
                // after errors, so tolerate misses everywhere.
                let _ = self.coordinator.drop_table(name);
                for db in &self.shards {
                    let _ = db.drop_table(name);
                }
                self.sharded.write().remove(&name.to_ascii_lowercase());
                Ok(Table::new())
            }
        }
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        if name.eq_ignore_ascii_case(&self.fact) {
            // Hash-partition the fact relation on the shard key.
            let kidx = table.resolve(None, &self.shard_key)?;
            let n = self.shards.len();
            let mut masks: Vec<Vec<bool>> = vec![vec![false; table.num_rows()]; n];
            #[allow(clippy::needless_range_loop)] // i indexes the key column and masks
            for i in 0..table.num_rows() {
                let s = self.shard_of(&table.columns[kidx].get(i));
                masks[s][i] = true;
            }
            for (db, mask) in self.shards.iter().zip(&masks) {
                db.create_table(name, table.filter(mask))?;
            }
            self.sharded.write().insert(self.fact.clone());
            // Partition-skew telemetry: a hot shard key funnels the fact
            // into few partitions and serializes every fan-out on them.
            let sizes: Vec<usize> = masks
                .iter()
                .map(|m| m.iter().filter(|&&b| b).count())
                .collect();
            let max = sizes.iter().copied().max().unwrap_or(0);
            if n > 1 && max * n > 4 * table.num_rows() {
                self.skew_warnings.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "warning: skewed shard-key distribution on {name}: partition sizes \
                     {sizes:?} (max {max} > 4x mean {}); consider a different shard key \
                     or composite partitioning",
                    table.num_rows() / n
                );
            }
            Ok(())
        } else {
            self.coordinator.create_table(name, table.clone())?;
            for db in &self.shards {
                db.create_table(name, table.clone())?;
            }
            Ok(())
        }
    }

    fn create_partitioned_table(&self, name: &str, table: Table, key: &str) -> BackendResult<()> {
        // Same hash partitioning as the fact relation, but on the named
        // key: a message table partitioned on the predict key lands each
        // entry on the shard that answers for that key.
        let kidx = table.resolve(None, key)?;
        let n = self.shards.len();
        let mut masks: Vec<Vec<bool>> = vec![vec![false; table.num_rows()]; n];
        #[allow(clippy::needless_range_loop)] // i indexes the key column and masks
        for i in 0..table.num_rows() {
            let s = self.shard_of(&table.columns[kidx].get(i));
            masks[s][i] = true;
        }
        for (db, mask) in self.shards.iter().zip(&masks) {
            db.create_table(name, table.filter(mask))?;
        }
        self.sharded.write().insert(name.to_ascii_lowercase());
        Ok(())
    }

    fn predict_batch(
        &self,
        spec: &crate::serve::ScorerSpec,
        keys: &[i64],
    ) -> BackendResult<Vec<(bool, f64)>> {
        // Fan the batch out; each shard scores the keys whose fact
        // partition it owns and answers (found, partial). Exactly one
        // shard finds any given key, so the merge is init + partial.
        self.fanout_selects.fetch_add(1, Ordering::Relaxed);
        let mut out = vec![(false, 0.0f64); keys.len()];
        for shard in self.on_all_shards(|_, db| db.predict_partials(spec, keys)) {
            let shard = shard?;
            if shard.len() != keys.len() {
                return Err(EngineError::Other(format!(
                    "predict_partials answered {} scores for {} keys",
                    shard.len(),
                    keys.len()
                )));
            }
            for (i, (found, p)) in shard.into_iter().enumerate() {
                if found {
                    if out[i].0 {
                        return Err(EngineError::Other(format!(
                            "predict key {} found on multiple shards; message \
                             tables are inconsistent with the partitioning",
                            keys[i]
                        )));
                    }
                    out[i] = (true, spec.init_score + p);
                }
            }
        }
        Ok(out)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        if self.is_sharded(name) {
            let mut parts = Vec::with_capacity(self.shards.len());
            for r in self.on_all_shards(|_, db| db.snapshot(name)) {
                parts.push(r?);
            }
            let shuffled: usize = parts.iter().map(Table::num_rows).sum();
            self.rows_shuffled
                .fetch_add(shuffled as u64, Ordering::Relaxed);
            concat_tables(parts)
        } else {
            self.coordinator.snapshot(name)
        }
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        if self.is_sharded(table) {
            self.shards[0].column_names(table)
        } else {
            self.coordinator.column_names(table)
        }
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        if self.is_sharded(table) {
            self.shards[0].column_dtype(table, column)
        } else {
            self.coordinator.column_dtype(table, column)
        }
    }

    fn has_table(&self, name: &str) -> bool {
        self.coordinator.has_table(name) || self.shards.iter().any(|db| db.has_table(name))
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        if self.is_sharded(name) {
            let mut total = 0;
            for db in &self.shards {
                total += db.row_count(name)?;
            }
            Ok(total)
        } else {
            self.coordinator.row_count(name)
        }
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        if !self.is_sharded(name) {
            return Ok(self.coordinator.snapshot(name)?.take(rows));
        }
        // Route each requested snapshot-order position to the shard that
        // owns it; every shard ships only its selected rows, and the
        // coordinator reassembles them in the requested order. Both
        // phases fan out in parallel — over remote transports the round
        // trips would otherwise serialize per shard.
        let mut counts = Vec::with_capacity(self.shards.len());
        let mut total = 0usize;
        for r in self.on_all_shards(|_, db| db.row_count(name)) {
            let c = r?;
            counts.push(c);
            total += c;
        }
        let mut per_shard: Vec<Vec<(usize, u32)>> = vec![Vec::new(); self.shards.len()];
        for (pos, &g) in rows.iter().enumerate() {
            let mut g = g as usize;
            if g >= total {
                return Err(EngineError::Other(format!(
                    "gather_rows: row {g} out of range for {name} ({total} rows)"
                )));
            }
            let mut shard = 0;
            while g >= counts[shard] {
                g -= counts[shard];
                shard += 1;
            }
            per_shard[shard].push((pos, g as u32));
        }
        // Only shards that own requested rows ship anything — and they
        // ship exactly their selected rows (via the transport's
        // `gather_rows`, a single framed message on remote shards), never
        // whole partitions. The schema comes from whichever shard answers
        // first, or a name-only lookup when the request is empty.
        let gathered = self.on_all_shards(|i, db| {
            let wanted = &per_shard[i];
            if wanted.is_empty() {
                return Ok(None);
            }
            let locals: Vec<u32> = wanted.iter().map(|&(_, local)| local).collect();
            db.gather_rows(name, &locals).map(Some)
        });
        let mut columns: Option<Vec<(ColumnMeta, Vec<Datum>)>> = None;
        for (wanted, r) in per_shard.iter().zip(gathered) {
            let Some(t) = r? else { continue };
            let cols = columns.get_or_insert_with(|| {
                t.meta
                    .iter()
                    .map(|m| (m.clone(), vec![Datum::Null; rows.len()]))
                    .collect()
            });
            for (j, &(pos, _)) in wanted.iter().enumerate() {
                for (ci, (_, vals)) in cols.iter_mut().enumerate() {
                    vals[pos] = t.columns[ci].get(j);
                }
            }
        }
        let columns = match columns {
            Some(c) => c,
            None => self.shards[0]
                .column_names(name)?
                .into_iter()
                .map(|n| (ColumnMeta::new(n), Vec::new()))
                .collect(),
        };
        self.rows_shuffled
            .fetch_add(rows.len() as u64, Ordering::Relaxed);
        let mut out = Table::new();
        for (meta, vals) in columns {
            out.push_column(meta, Column::from_datums(&vals));
        }
        Ok(out)
    }

    fn map_partitions(
        &self,
        name: &str,
        f: &mut dyn FnMut(usize, &Table) -> BackendResult<Table>,
    ) -> BackendResult<Vec<Table>> {
        if !self.is_sharded(name) {
            return Ok(vec![f(0, &self.coordinator.snapshot(name)?)?]);
        }
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, db) in self.shards.iter().enumerate() {
            // The closure runs against the shard's local rows; only what
            // it returns crosses to the coordinator.
            let result = f(i, &db.snapshot(name)?)?;
            self.rows_shuffled
                .fetch_add(result.num_rows() as u64, Ordering::Relaxed);
            out.push(result);
        }
        Ok(out)
    }

    fn stats(&self) -> BackendStats {
        let fanout_selects = self.fanout_selects.load(Ordering::Relaxed);
        let broadcast_statements = self.broadcast_statements.load(Ordering::Relaxed);
        let replicated_statements = self.replicated_statements.load(Ordering::Relaxed);
        let coordinator_selects = self.coordinator_selects.load(Ordering::Relaxed);
        let (mut bytes_sent, mut bytes_received) = (0u64, 0u64);
        let (mut split_bytes_sent, mut split_bytes_received) = (0u64, 0u64);
        for t in &self.shards {
            let (s, r) = t.wire_bytes();
            bytes_sent += s;
            bytes_received += r;
            let (ss, sr) = t.split_wire_bytes();
            split_bytes_sent += ss;
            split_bytes_received += sr;
        }
        // Dense split execution meters its fan-out traffic separately
        // (the transports attribute only protocol frames to split_*).
        split_bytes_sent += self.dense_split_sent.load(Ordering::Relaxed);
        split_bytes_received += self.dense_split_received.load(Ordering::Relaxed);
        BackendStats {
            statements: fanout_selects
                + broadcast_statements
                + replicated_statements
                + coordinator_selects,
            selects: fanout_selects + coordinator_selects,
            fanout_selects,
            broadcast_statements,
            replicated_statements,
            coordinator_selects,
            pushdown_splits: self.pushdown_splits.load(Ordering::Relaxed),
            split_rounds: self.split_rounds.load(Ordering::Relaxed),
            rows_shipped: self.rows_shuffled.load(Ordering::Relaxed),
            text_round_trips: 0,
            bytes_sent,
            bytes_received,
            split_bytes_sent,
            split_bytes_received,
        }
    }
}

// ---------------------------------------------------------------------------
// Merge planning
// ---------------------------------------------------------------------------

/// How a distributable SPJA aggregate fans out: the query every shard
/// runs (possibly with group keys injected into the output), how each
/// output column merges, and how many injected columns to drop again.
struct MergePlan {
    /// The per-shard query (`q` itself, or `q` with the missing group-by
    /// expressions appended as `jb_shard_key<i>` output columns).
    query: Query,
    /// Per-output-column merge behavior (covers injected columns).
    specs: Vec<MergeSpec>,
    /// Trailing columns the planner appended (projected away post-merge).
    injected: usize,
}

/// Decide whether `q` fans out with an exact merge, and how each select
/// item merges. Group-by expressions missing from the output (histogram
/// binned absorbs: `GROUP BY FLOOR(..)` with `MAX(f)` selected) are
/// injected as extra output columns so groups can be matched across
/// shards, then dropped after the merge. `None` if the query is not a
/// distributable SPJA aggregate.
fn distributable_merge_plan(q: &Query) -> Option<MergePlan> {
    // Fan-out replays the whole query per shard, so the source must be
    // named tables and the result must not be ordered or truncated.
    if !matches!(q.from, Some(TableRef::Named { .. })) {
        return None;
    }
    if q.joins
        .iter()
        .any(|j| !matches!(j.table, TableRef::Named { .. }))
    {
        return None;
    }
    if !q.order_by.is_empty() || q.limit.is_some() {
        return None;
    }
    let mut specs = Vec::with_capacity(q.items.len());
    let mut covered = vec![false; q.group_by.len()];
    for item in &q.items {
        if let Some(pos) = q.group_by.iter().position(|g| *g == item.expr) {
            specs.push(MergeSpec::Key);
            covered[pos] = true;
            continue;
        }
        match &item.expr {
            Expr::Func { name, .. } => match name.as_str() {
                "SUM" | "COUNT" => specs.push(MergeSpec::Sum),
                "MIN" => specs.push(MergeSpec::Min),
                "MAX" => specs.push(MergeSpec::Max),
                // AVG partials do not ⊕-merge; anything else is not an
                // aggregate output.
                _ => return None,
            },
            _ => return None,
        }
    }
    if q.group_by.is_empty() && specs.is_empty() {
        return None;
    }
    let mut query = q.clone();
    let mut injected = 0usize;
    for (pos, g) in q.group_by.iter().enumerate() {
        if !covered[pos] {
            query
                .items
                .push(SelectItem::aliased(g.clone(), format!("jb_shard_key{pos}")));
            specs.push(MergeSpec::Key);
            injected += 1;
        }
    }
    Some(MergePlan {
        query,
        specs,
        injected,
    })
}

/// Drop the trailing `n` (planner-injected) columns of a merged table.
fn drop_last_columns(t: Table, n: usize) -> Table {
    if n == 0 {
        return t;
    }
    let keep = t.num_columns().saturating_sub(n);
    let mut out = Table::new();
    for (meta, col) in t.meta.iter().zip(&t.columns).take(keep) {
        out.push_column(meta.clone(), col.clone());
    }
    out
}

/// A query with no aggregation, windows, grouping, ordering or limit:
/// shard results concatenate.
fn is_plain_scan(q: &Query) -> bool {
    q.group_by.is_empty()
        && q.order_by.is_empty()
        && q.limit.is_none()
        && q.items
            .iter()
            .all(|it| !contains_aggregate_or_window(&it.expr))
}

fn contains_aggregate_or_window(e: &Expr) -> bool {
    match e {
        Expr::WindowSum { .. } => true,
        Expr::Func { name, args } => {
            matches!(name.as_str(), "SUM" | "COUNT" | "AVG" | "MIN" | "MAX")
                || args.iter().any(contains_aggregate_or_window)
        }
        Expr::Binary { left, right, .. } => {
            contains_aggregate_or_window(left) || contains_aggregate_or_window(right)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => contains_aggregate_or_window(expr),
        Expr::Case { whens, else_expr } => {
            whens
                .iter()
                .any(|(c, t)| contains_aggregate_or_window(c) || contains_aggregate_or_window(t))
                || else_expr
                    .as_deref()
                    .is_some_and(contains_aggregate_or_window)
        }
        Expr::InList { expr, list, .. } => {
            contains_aggregate_or_window(expr) || list.iter().any(contains_aggregate_or_window)
        }
        Expr::InSubquery { expr, .. } => contains_aggregate_or_window(expr),
        Expr::Column { .. } | Expr::Literal(_) | Expr::Wildcard => false,
    }
}

// ---------------------------------------------------------------------------
// Merge execution
// ---------------------------------------------------------------------------

/// `⊕`-merge per-shard partial aggregates. Groups are matched on the key
/// columns; output rows are sorted by the keys so the merged table has a
/// deterministic, backend-independent order.
fn merge_partials(partials: Vec<Table>, specs: &[MergeSpec]) -> BackendResult {
    let first = partials
        .first()
        .ok_or_else(|| EngineError::Other("no shard partials".into()))?;
    if first.num_columns() != specs.len() {
        return Err(EngineError::Other(format!(
            "merge plan arity mismatch: {} columns, {} specs",
            first.num_columns(),
            specs.len()
        )));
    }
    let meta: Vec<ColumnMeta> = first.meta.clone();
    let key_cols: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == MergeSpec::Key)
        .map(|(i, _)| i)
        .collect();
    let mut slots: HashMap<Vec<HKey>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Datum>> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    for t in &partials {
        if t.num_columns() != specs.len() {
            return Err(EngineError::Other("shard partial arity mismatch".into()));
        }
        for row in 0..t.num_rows() {
            let hk: Vec<HKey> = key_cols.iter().map(|&c| t.columns[c].hkey(row)).collect();
            let slot = *slots.entry(hk).or_insert_with(|| {
                keys.push(key_cols.iter().map(|&c| t.columns[c].get(row)).collect());
                accs.push(specs.iter().map(|_| Acc::Empty).collect());
                keys.len() - 1
            });
            for (c, spec) in specs.iter().enumerate() {
                let v = t.columns[c].get(row);
                match spec {
                    MergeSpec::Key => {}
                    MergeSpec::Sum => accs[slot][c].add(&v),
                    MergeSpec::Min => accs[slot][c].best(&v, false),
                    MergeSpec::Max => accs[slot][c].best(&v, true),
                }
            }
        }
    }
    // Deterministic output order: sort groups by their key values.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| {
        for (ka, kb) in keys[a].iter().zip(&keys[b]) {
            let ord = ka.sql_cmp(kb);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Table::new();
    for (c, (m, spec)) in meta.iter().zip(specs).enumerate() {
        let vals: Vec<Datum> = order
            .iter()
            .map(|&slot| match spec {
                MergeSpec::Key => {
                    let ki = key_cols.iter().position(|&k| k == c).expect("key column");
                    keys[slot][ki].clone()
                }
                _ => accs[slot][c].clone().into_datum(),
            })
            .collect();
        out.push_column(ColumnMeta::new(m.name.clone()), Column::from_datums(&vals));
    }
    Ok(out)
}

/// Vertically concatenate shard results (layouts must match). Int and
/// float columns without NULLs concatenate slice-to-slice; only string or
/// nullable columns take the per-value fallback.
fn concat_tables(parts: Vec<Table>) -> BackendResult {
    let first = parts
        .first()
        .ok_or_else(|| EngineError::Other("no shard partials".into()))?;
    let meta: Vec<ColumnMeta> = first.meta.clone();
    let ncols = first.num_columns();
    if parts.iter().any(|t| t.num_columns() != ncols) {
        return Err(EngineError::Other("shard gather layout mismatch".into()));
    }
    let mut out = Table::new();
    for (ci, m) in meta.iter().enumerate() {
        let cols: Vec<&Column> = parts.iter().map(|t| &t.columns[ci]).collect();
        out.push_column(ColumnMeta::new(m.name.clone()), concat_columns(&cols));
    }
    Ok(out)
}

fn concat_columns(cols: &[&Column]) -> Column {
    let total: usize = cols.iter().map(|c| c.len()).sum();
    if cols.iter().all(|c| c.validity.is_none()) {
        if cols.iter().all(|c| c.as_i64_slice().is_some()) {
            let mut v = Vec::with_capacity(total);
            for c in cols {
                v.extend_from_slice(c.as_i64_slice().expect("checked"));
            }
            return Column::int(v);
        }
        if cols.iter().all(|c| c.as_f64_slice().is_some()) {
            let mut v = Vec::with_capacity(total);
            for c in cols {
                v.extend_from_slice(c.as_f64_slice().expect("checked"));
            }
            return Column::float(v);
        }
    }
    let mut vals = Vec::with_capacity(total);
    for c in cols {
        for i in 0..c.len() {
            vals.push(c.get(i));
        }
    }
    Column::from_datums(&vals)
}

// ---------------------------------------------------------------------------
// Shard-local split evaluation
// ---------------------------------------------------------------------------

/// Numerical slack added to pruning bounds so floating-point rounding in
/// either the bound or the engine's criteria arithmetic can never prune
/// the true argmax (the bound is exact over the reals by convexity; a
/// relative 1e-9 dwarfs the few-ulp discrepancy of either side).
fn slack(v: f64) -> f64 {
    1e-9 * v.abs().max(1.0)
}

/// Evaluate an expression over exactly two column variables (the split
/// components). Returns `None` for any expression the split-criteria
/// grammar does not produce — callers then skip pruning, never results.
fn eval_two_col(e: &Expr, n0: &str, n1: &str, c: f64, s: f64) -> Option<f64> {
    match e {
        Expr::Column { table: None, name } => {
            if name.eq_ignore_ascii_case(n0) {
                Some(c)
            } else if name.eq_ignore_ascii_case(n1) {
                Some(s)
            } else {
                None
            }
        }
        Expr::Literal(Value::Int(v)) => Some(*v as f64),
        Expr::Literal(Value::Float(v)) => Some(*v),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => Some(-eval_two_col(expr, n0, n1, c, s)?),
        Expr::Binary { op, left, right } => {
            let l = eval_two_col(left, n0, n1, c, s)?;
            let r = eval_two_col(right, n0, n1, c, s)?;
            let b = |x: bool| if x { 1.0 } else { 0.0 };
            Some(match op {
                BinaryOp::Add => l + r,
                BinaryOp::Sub => l - r,
                BinaryOp::Mul => l * r,
                BinaryOp::Div => l / r,
                BinaryOp::Eq => b(l == r),
                BinaryOp::Neq => b(l != r),
                BinaryOp::Lt => b(l < r),
                BinaryOp::LtEq => b(l <= r),
                BinaryOp::Gt => b(l > r),
                BinaryOp::GtEq => b(l >= r),
                BinaryOp::And => b(l > 0.5 && r > 0.5),
                BinaryOp::Or => b(l > 0.5 || r > 0.5),
            })
        }
        _ => None,
    }
}

/// Symbolic derivative of a criteria expression with respect to the
/// column `wrt` (the second split component). Only the arithmetic grammar
/// the criteria emitters produce is supported; anything else returns
/// `None` and the caller falls back to the coarser box bound.
fn d_wrt(e: &Expr, wrt: &str, other: &str) -> Option<Expr> {
    match e {
        Expr::Column { table: None, name } => {
            if name.eq_ignore_ascii_case(wrt) {
                Some(Expr::float(1.0))
            } else if name.eq_ignore_ascii_case(other) {
                Some(Expr::float(0.0))
            } else {
                None
            }
        }
        Expr::Literal(_) => Some(Expr::float(0.0)),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => Some(Expr::neg(d_wrt(expr, wrt, other)?)),
        Expr::Binary { op, left, right } => {
            let dl = d_wrt(left, wrt, other)?;
            let dr = d_wrt(right, wrt, other)?;
            match op {
                BinaryOp::Add => Some(Expr::add(dl, dr)),
                BinaryOp::Sub => Some(Expr::sub(dl, dr)),
                BinaryOp::Mul => Some(Expr::add(
                    Expr::mul(dl, (**right).clone()),
                    Expr::mul((**left).clone(), dr),
                )),
                BinaryOp::Div => Some(Expr::div(
                    Expr::sub(
                        Expr::mul(dl, (**right).clone()),
                        Expr::mul((**left).clone(), dr),
                    ),
                    Expr::mul((**right).clone(), (**right).clone()),
                )),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Interval-arithmetic evaluation of an expression over boxed column
/// ranges. Division by an interval containing zero returns `None`
/// (unbounded). The arithmetic is outward-correct up to f64 rounding —
/// callers add [`slack`] on top, which dwarfs the ulp error.
fn eval_interval(e: &Expr, n0: &str, n1: &str, c: (f64, f64), s: (f64, f64)) -> Option<(f64, f64)> {
    let fin = |r: (f64, f64)| (r.0.is_finite() && r.1.is_finite()).then_some(r);
    match e {
        Expr::Column { table: None, name } => {
            if name.eq_ignore_ascii_case(n0) {
                Some(c)
            } else if name.eq_ignore_ascii_case(n1) {
                Some(s)
            } else {
                None
            }
        }
        Expr::Literal(Value::Int(v)) => Some((*v as f64, *v as f64)),
        Expr::Literal(Value::Float(v)) => Some((*v, *v)),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => {
            let (lo, hi) = eval_interval(expr, n0, n1, c, s)?;
            Some((-hi, -lo))
        }
        Expr::Binary { op, left, right } => {
            let (l0, l1) = eval_interval(left, n0, n1, c, s)?;
            let (r0, r1) = eval_interval(right, n0, n1, c, s)?;
            match op {
                BinaryOp::Add => fin((l0 + r0, l1 + r1)),
                BinaryOp::Sub => fin((l0 - r1, l1 - r0)),
                BinaryOp::Mul => {
                    let p = [l0 * r0, l0 * r1, l1 * r0, l1 * r1];
                    fin((
                        p.iter().copied().fold(f64::INFINITY, f64::min),
                        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    ))
                }
                BinaryOp::Div => {
                    if r0 <= 0.0 && r1 >= 0.0 {
                        return None;
                    }
                    let p = [l0 / r0, l0 / r1, l1 / r0, l1 / r1];
                    fin((
                        p.iter().copied().fold(f64::INFINITY, f64::min),
                        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    ))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Extract the prefix-count range `[min_leaf, total − min_leaf]` from the
/// guard [`crate::sqlgen`] emits (`n0 >= a AND total − n0 >= b`). Used to
/// clip pruning boxes away from the `c = 0` / `c = total` poles where the
/// criteria stops being convex. `None` leaves boxes unclipped (bounds
/// stay sound — corners at the poles blow up and force retention).
fn guard_c_range(guard: &Expr, n0: &str) -> Option<(f64, f64)> {
    let lit = |e: &Expr| -> Option<f64> {
        match e {
            Expr::Literal(Value::Float(v)) => Some(*v),
            Expr::Literal(Value::Int(v)) => Some(*v as f64),
            _ => None,
        }
    };
    let is_n0 =
        |e: &Expr| matches!(e, Expr::Column { table: None, name } if name.eq_ignore_ascii_case(n0));
    let Expr::Binary {
        op: BinaryOp::And,
        left,
        right,
    } = guard
    else {
        return None;
    };
    // left: n0 >= min_leaf
    let Expr::Binary {
        op: BinaryOp::GtEq,
        left: ll,
        right: lr,
    } = left.as_ref()
    else {
        return None;
    };
    if !is_n0(ll) {
        return None;
    }
    let lo = lit(lr)?;
    // right: total − n0 >= min_leaf
    let Expr::Binary {
        op: BinaryOp::GtEq,
        left: rl,
        right: rr,
    } = right.as_ref()
    else {
        return None;
    };
    let Expr::Binary {
        op: BinaryOp::Sub,
        left: tl,
        right: tr,
    } = rl.as_ref()
    else {
        return None;
    };
    if !is_n0(tr) {
        return None;
    }
    Some((lo, lit(tl)? - lit(rr)?))
}

/// Is the merged `val` guaranteed to be ordered like the group key? True
/// trivially when `val` *is* the key, and for the histogram shape
/// `GROUP BY FLOOR((f − lo) / w)` with `MAX(f)` selected and `w > 0`:
/// bins partition the value axis into disjoint, ordered ranges, so their
/// maxima are ordered like the bin ids — on every shard and after any
/// cross-shard `MAX` merge.
fn binned_val_monotone(group: &Expr, val: &Expr) -> bool {
    let Expr::Func {
        name: gname,
        args: gargs,
    } = group
    else {
        return false;
    };
    if !gname.eq_ignore_ascii_case("FLOOR") || gargs.len() != 1 {
        return false;
    }
    let Expr::Binary {
        op: BinaryOp::Div,
        left: num,
        right: den,
    } = &gargs[0]
    else {
        return false;
    };
    let positive = |e: &Expr| -> bool {
        matches!(e, Expr::Literal(Value::Float(v)) if *v > 0.0)
            || matches!(e, Expr::Literal(Value::Int(v)) if *v > 0)
    };
    if !positive(den) {
        return false;
    }
    // The binned feature expression: `f − lo` or bare `f`.
    let feature = match num.as_ref() {
        Expr::Binary {
            op: BinaryOp::Sub,
            left: f,
            right: lo,
        } if matches!(lo.as_ref(), Expr::Literal(_)) => f.as_ref(),
        other => other,
    };
    let Expr::Func {
        name: vname,
        args: vargs,
    } = val
    else {
        return false;
    };
    vname.eq_ignore_ascii_case("MAX") && vargs.len() == 1 && vargs[0] == *feature
}

/// Plan-level column roles of the split protocol: the single group key,
/// the two ⊕-summed split components, and how every output column
/// merges. `None` when the summary protocol cannot order the result
/// (multiple group keys, components that are not sums, or a `val` whose
/// order the key does not determine) — the caller then takes the dense
/// path without opening handles.
fn split_spec_for(plan: &MergePlan, shape: &SplitQueryShape) -> Option<SplitSpec> {
    let key_cols: Vec<usize> = plan
        .specs
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == MergeSpec::Key)
        .map(|(i, _)| i)
        .collect();
    let [key_col] = key_cols.as_slice() else {
        return None;
    };
    let key_col = *key_col;
    let out_name = |item: &SelectItem| -> Option<String> {
        item.alias.clone().or(match &item.expr {
            Expr::Column { name, .. } => Some(name.clone()),
            _ => None,
        })
    };
    let col_of = |name: &str| -> Option<usize> {
        plan.query
            .items
            .iter()
            .position(|it| out_name(it).is_some_and(|n| n.eq_ignore_ascii_case(name)))
    };
    let val_col = col_of(&shape.val)?;
    let c0_col = col_of(&shape.components[0])?;
    let c1_col = col_of(&shape.components[1])?;
    if plan.specs[c0_col] != MergeSpec::Sum || plan.specs[c1_col] != MergeSpec::Sum {
        return None;
    }
    // When val is not itself the key, the key must still order like val
    // (the histogram-bin shape); otherwise prefix runs would be built in
    // the wrong order.
    if val_col != key_col
        && !(plan.query.group_by.len() == 1
            && binned_val_monotone(&plan.query.group_by[0], &plan.query.items[val_col].expr))
    {
        return None;
    }
    Some(SplitSpec {
        key_col,
        c0_col,
        c1_col,
        specs: plan.specs.clone(),
    })
}

/// Ask every shard handle the same protocol question, in parallel.
/// Results come back in shard order; the first shard error wins.
fn on_all_handles<'h, T, F>(handles: &[Box<dyn SplitHandle + 'h>], f: F) -> BackendResult<Vec<T>>
where
    T: Send,
    F: Fn(&dyn SplitHandle) -> BackendResult<T> + Sync,
{
    if handles.len() == 1 {
        return Ok(vec![f(handles[0].as_ref())?]);
    }
    let fr = &f;
    let results: Vec<BackendResult<T>> = crossbeam::thread::scope(|scope| {
        let spawned: Vec<_> = handles
            .iter()
            .map(|h| scope.spawn(move |_| fr(h.as_ref())))
            .collect();
        spawned
            .into_iter()
            .map(|h| h.join().expect("split worker panicked"))
            .collect()
    })
    .expect("split scope");
    results.into_iter().collect()
}

/// The coordinator half of the shard-local split protocol: boundary
/// keys → global interval grid → per-interval boundary prefix-sum
/// summaries → convexity bounds → candidate fetch → run-compressed
/// merged table. Every shard interaction goes through [`SplitHandle`],
/// so over a remote transport only these messages cross the wire.
///
/// Exactness: replacing a contiguous run of per-value rows `(v_a, v_b]`
/// by one row `(val(v_b), Σc, Σs)` leaves every *prefix sum* at `v_b` and
/// beyond unchanged, so the engine's window/argmax evaluation over the
/// compressed table computes exactly what it computes at the retained
/// rows of the dense table. The bounds only decide which interior rows
/// are retained; every boundary row is always present, and any interval
/// that could still hold the argmax (criteria upper bound ≥ best
/// boundary candidate, by convexity of both split criteria in the two
/// prefix components) ships its rows in full. See `DESIGN.md`
/// § "Distributed split evaluation" for the full argument.
fn shard_split_protocol(
    handles: &[Box<dyn SplitHandle + '_>],
    prefetched: Vec<Vec<Datum>>,
    plan: &MergePlan,
    shape: &SplitQueryShape,
    cfg: PushdownConfig,
) -> BackendResult<(Table, usize, usize)> {
    let total: usize = handles.iter().map(|h| h.num_rows()).sum();
    let mut shipped = 0usize;
    // Initial grid: each shard published k equal-count boundary keys in
    // its (fused) open reply — its last key always included, so the grid
    // covers every row.
    let k = cfg.boundaries_per_shard.max(2);
    let sort_dedup = |grid: &mut Vec<Datum>| {
        grid.sort_by(|a, b| a.sql_cmp(b));
        grid.dedup_by(|a, b| a.sql_cmp(b) == std::cmp::Ordering::Equal);
    };
    let mut grid: Vec<Datum> = Vec::new();
    for keys in prefetched {
        shipped += keys.len();
        grid.extend(keys);
    }
    sort_dedup(&mut grid);
    // The shards' equal-count boundaries cluster around the same global
    // quantiles, which would alternate tiny and huge intervals and pay
    // shards·|grid| summaries for no extra precision; the coordinator
    // coarsens the union back to ~k points (keeping the global maximum,
    // which covers every row) and lets refinement re-split only where the
    // criteria bounds demand it.
    if grid.len() > k {
        let stride = grid.len().div_ceil(k);
        let last = grid.last().cloned();
        let mut coarse: Vec<Datum> = grid
            .iter()
            .skip(stride - 1)
            .step_by(stride)
            .cloned()
            .collect();
        if let Some(last) = last {
            if coarse
                .last()
                .is_none_or(|d| d.sql_cmp(&last) != std::cmp::Ordering::Equal)
            {
                coarse.push(last);
            }
        }
        grid = coarse;
    }

    let [n0, n1] = &shape.components;
    let clip = shape.guard.as_ref().and_then(|g| guard_c_range(g, n0));
    let d_expr = d_wrt(&shape.criteria, n1, n0);

    // Refinement loop: summarize the grid intervals, bound the criteria
    // over each, and subdivide the survivors — candidate volume shrinks
    // geometrically, so a handful of summary rounds replaces shipping
    // whole buckets around a flat criteria peak.
    let mut retain: Vec<bool> = Vec::new();
    let debug = std::env::var("JB_PUSHDOWN_DEBUG").is_ok();
    let mut rounds = 0usize;
    // Delta cache: the previous round's grid and per-shard summaries.
    // Valid because a summary is a pure function of its interval's
    // absolute row range — an interval whose (lower, upper) bounds both
    // survived refinement covers the same rows and summarizes
    // bit-identically, so only subdivided intervals need the wire.
    let mut prev_grid: Vec<Datum> = Vec::new();
    let mut prev: Vec<Vec<IntervalSummary>> = Vec::new();
    for round in 0usize..5 {
        let m = grid.len();
        // One summary row per (shard, interval): exact interval ⊕-sums
        // (f64 view), the range each shard's local prefix covers inside
        // the interval, and the shard's chord-deviation bound (how far
        // its prefix staircase strays from the straight line between its
        // interval endpoints — the term that makes the tight bound
        // O(width²) on smooth data). Later rounds only re-ship the
        // freshly subdivided intervals (charged at refinement time).
        let deltas: Vec<Vec<IntervalSummary>> = if cfg.delta && !prev.is_empty() {
            let map = interval_delta_map(&prev_grid, &grid);
            let changed: Vec<usize> = map
                .iter()
                .enumerate()
                .filter_map(|(j, o)| o.is_none().then_some(j))
                .collect();
            let fresh = on_all_handles(handles, |h| h.summaries_delta(&grid, &changed))?;
            let mut full = Vec::with_capacity(fresh.len());
            for (old, new) in prev.iter().zip(fresh) {
                full.push(reconstruct_summaries(old, &map, &new).ok_or_else(|| {
                    EngineError::Other("split delta summaries do not match the grid".into())
                })?);
            }
            full
        } else {
            on_all_handles(handles, |h| h.summaries(&grid))?
        };
        rounds += 1;
        for row in &deltas {
            if row.len() != m {
                return Err(EngineError::Other(
                    "split summaries do not match the grid".into(),
                ));
            }
        }
        if cfg.delta {
            prev_grid.clone_from(&grid);
            prev.clone_from(&deltas);
        }
        let mut cum0 = vec![0.0f64; m];
        let mut cum1 = vec![0.0f64; m];
        let mut lo0 = vec![0.0f64; m];
        let mut hi0 = vec![0.0f64; m];
        let mut lo1 = vec![0.0f64; m];
        let mut hi1 = vec![0.0f64; m];
        for row in &deltas {
            for (j, d) in row.iter().enumerate() {
                cum0[j] += d.dc;
                cum1[j] += d.ds;
                lo0[j] += d.min0;
                hi0[j] += d.max0;
                lo1[j] += d.min1;
                hi1[j] += d.max1;
            }
        }
        if round == 0 {
            shipped += handles.len() * m;
        }
        // Exact global prefix sums at every grid boundary (cumulative).
        for j in 1..m {
            cum0[j] += cum0[j - 1];
            cum1[j] += cum1[j - 1];
        }

        // Best boundary candidate (lower bound for pruning): boundary
        // rows are always retained in the output, so the bound only has
        // to beat *interior* rows of pruned intervals.
        let mut best_lb = f64::NEG_INFINITY;
        for j in 0..m {
            let (c, s) = (cum0[j], cum1[j]);
            if let Some(g) = &shape.guard {
                match eval_two_col(g, n0, n1, c, s) {
                    Some(v) if v > 0.5 => {}
                    _ => continue,
                }
            }
            if let Some(v) = eval_two_col(&shape.criteria, n0, n1, c, s) {
                if v.is_finite() {
                    best_lb = best_lb.max(v - slack(v));
                }
            }
        }

        // Retention: an interval survives if the criteria's upper bound
        // over its reachable prefix set can still reach the best boundary
        // candidate. Two sound bounds are combined:
        //
        // * **box bound** — max over the corners of the prefix box (valid
        //   by convexity of both split criteria in the prefix
        //   components); overshoot is linear in the interval width;
        // * **chord bound** — exact criteria at the interval's chord
        //   endpoints plus `L_s · deviation`: any reachable point sits at
        //   vertical distance ≤ Σᵢ(maxdevᵢ + |ρᵢ−ρ|·max|Δcᵢ|) from the
        //   chord (triangle inequality over the per-shard staircases),
        //   and the criteria's s-slope over the box is bounded by
        //   interval arithmetic on its symbolic derivative. On smooth
        //   data the deviation is O(width²), which is what lets the
        //   pushdown prune aggressively near flat peaks.
        retain = (0..m)
            .map(|j| {
                let (mut clo, mut chi) = (lo0[j], hi0[j]);
                if let Some((glo, ghi)) = clip {
                    // Rows with a prefix count outside the guard range
                    // cannot win; clipping also steps off the convexity
                    // poles.
                    clo = clo.max(glo);
                    chi = chi.min(ghi);
                    if clo > chi {
                        return false;
                    }
                }
                let mut ub = f64::INFINITY;
                let mut box_ub = f64::NEG_INFINITY;
                let mut box_ok = true;
                for &c in &[clo, chi] {
                    for &s in &[lo1[j], hi1[j]] {
                        match eval_two_col(&shape.criteria, n0, n1, c, s) {
                            Some(v) if !v.is_nan() => box_ub = box_ub.max(v),
                            _ => box_ok = false,
                        }
                    }
                }
                if box_ok {
                    ub = box_ub;
                }
                let (c_start, s_start) = if j == 0 {
                    (0.0, 0.0)
                } else {
                    (cum0[j - 1], cum1[j - 1])
                };
                let dcg = cum0[j] - c_start;
                if let Some(dx) = &d_expr {
                    if dcg != 0.0 {
                        let rho = (cum1[j] - s_start) / dcg;
                        let mut dev = 0.0f64;
                        for row in &deltas {
                            let d = &row[j];
                            let rho_i = if d.dc != 0.0 { d.ds / d.dc } else { 0.0 };
                            dev += d.maxdev + (rho_i - rho).abs() * d.maxabsdc;
                        }
                        // Chord restricted to the (clipped) reachable
                        // c-range; max over a segment of a convex
                        // function is at the endpoints.
                        let chord = |c: f64| {
                            eval_two_col(&shape.criteria, n0, n1, c, s_start + rho * (c - c_start))
                        };
                        let s_ext = (
                            lo1[j]
                                .min(s_start + rho * (clo - c_start))
                                .min(s_start + rho * (chi - c_start)),
                            hi1[j]
                                .max(s_start + rho * (clo - c_start))
                                .max(s_start + rho * (chi - c_start)),
                        );
                        if let (Some(e1), Some(e2), Some((dlo, dhi))) = (
                            chord(clo),
                            chord(chi),
                            eval_interval(dx, n0, n1, (clo, chi), s_ext),
                        ) {
                            let tight = e1.max(e2) + dlo.abs().max(dhi.abs()) * dev;
                            if !tight.is_nan() {
                                ub = ub.min(tight);
                            }
                        }
                    }
                }
                if ub == f64::INFINITY {
                    return true; // no usable bound: keep the rows
                }
                ub + slack(ub) >= best_lb
            })
            .collect();

        let interval_rows =
            |j: usize| -> usize { deltas.iter().map(|row| row[j].rows as usize).sum::<usize>() };
        let retained_rows: usize = (0..m).filter(|&j| retain[j]).map(interval_rows).sum();
        let retained_count = retain.iter().filter(|&&r| r).count();
        if debug {
            eprintln!(
                "pushdown round {round}: {m} intervals, {retained_count} retained \
                 ({retained_rows} rows), shipped so far {shipped}"
            );
        }
        // Stop refining once the candidate set is small, the round budget
        // is spent, or another summary round could no longer undercut
        // what shipping the remaining candidates outright costs.
        if round == 4
            || retained_rows <= (2 * k * handles.len()).max(64)
            || shipped + retained_rows >= total
        {
            break;
        }
        // Subdivide the survivors: spend a ~2k-key budget proportionally
        // to each surviving interval's row mass (each shard publishes
        // equal-count sub-boundaries inside its slice of the interval).
        let budget = 2 * k;
        let mut targets: Vec<(usize, usize)> = Vec::new();
        for (j, &keep) in retain.iter().enumerate() {
            if !keep || retained_rows == 0 {
                continue;
            }
            let quota = (budget * interval_rows(j)).div_ceil(retained_rows).max(1);
            targets.push((j, quota.div_ceil(handles.len()).max(1)));
        }
        let mut added: Vec<Datum> = Vec::new();
        for keys in on_all_handles(handles, |h| h.refine(&grid, &targets))? {
            added.extend(keys);
        }
        sort_dedup(&mut added);
        if added.is_empty() {
            break;
        }
        // New boundary keys plus re-summaries of the subdivided ranges.
        shipped += added.len() + handles.len() * (retained_count + added.len());
        grid.extend(added);
        sort_dedup(&mut grid);
    }

    // Assemble: every shard ships its retained intervals' rows in full
    // plus one compressed partial per non-empty pruned interval; the
    // ⊕-merge matches partials on the (unique) keys, so the merged table
    // is exactly the run-compressed table of the in-process protocol.
    let fetches = on_all_handles(handles, |h| h.fetch(&grid, &retain))?;
    shipped += fetches.iter().map(Table::num_rows).sum::<usize>();
    let merged = merge_partials(fetches, &plan.specs)?;
    Ok((merged, shipped, rounds))
}

// ---------------------------------------------------------------------------
// Table-reference collection
// ---------------------------------------------------------------------------

/// Tables in the FROM/JOIN closure, through nested `FROM`-subqueries —
/// the positions where a sharded relation may legitimately appear.
fn collect_from_tables(q: &Query, out: &mut Vec<String>) {
    fn tref(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Named { name, .. } => out.push(name.clone()),
            TableRef::Subquery { query, .. } => collect_from_tables(query, out),
        }
    }
    if let Some(from) = &q.from {
        tref(from, out);
    }
    for j in &q.joins {
        tref(&j.table, out);
    }
}

/// Tables referenced from *expression* position — select items, `WHERE`,
/// `GROUP BY`, `ORDER BY`, join `ON` (each including any `IN (SELECT ..)`
/// subquery in full) — through nested `FROM`-subqueries. Sharded
/// relations here cannot be fanned out correctly and are rejected.
fn collect_expr_position_tables(q: &Query, out: &mut Vec<String>) {
    for item in &q.items {
        collect_expr_tables(&item.expr, out);
    }
    if let Some(w) = &q.where_clause {
        collect_expr_tables(w, out);
    }
    for g in &q.group_by {
        collect_expr_tables(g, out);
    }
    for o in &q.order_by {
        collect_expr_tables(&o.expr, out);
    }
    for j in &q.joins {
        if let Some(on) = &j.on {
            collect_expr_tables(on, out);
        }
        if let TableRef::Subquery { query, .. } = &j.table {
            collect_expr_position_tables(query, out);
        }
    }
    if let Some(TableRef::Subquery { query, .. }) = &q.from {
        collect_expr_position_tables(query, out);
    }
}

/// Every table a query references, in any position.
fn collect_query_tables(q: &Query, out: &mut Vec<String>) {
    if let Some(from) = &q.from {
        collect_tref_tables(from, out);
    }
    for j in &q.joins {
        collect_tref_tables(&j.table, out);
        if let Some(on) = &j.on {
            collect_expr_tables(on, out);
        }
    }
    for item in &q.items {
        collect_expr_tables(&item.expr, out);
    }
    if let Some(w) = &q.where_clause {
        collect_expr_tables(w, out);
    }
    for g in &q.group_by {
        collect_expr_tables(g, out);
    }
    for o in &q.order_by {
        collect_expr_tables(&o.expr, out);
    }
}

fn collect_tref_tables(t: &TableRef, out: &mut Vec<String>) {
    match t {
        TableRef::Named { name, .. } => out.push(name.clone()),
        TableRef::Subquery { query, .. } => collect_query_tables(query, out),
    }
}

fn collect_expr_tables(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Binary { left, right, .. } => {
            collect_expr_tables(left, out);
            collect_expr_tables(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_expr_tables(expr, out),
        Expr::Func { args, .. } => {
            for a in args {
                collect_expr_tables(a, out);
            }
        }
        Expr::WindowSum { arg, order_by } => {
            collect_expr_tables(arg, out);
            collect_expr_tables(order_by, out);
        }
        Expr::Case { whens, else_expr } => {
            for (c, t) in whens {
                collect_expr_tables(c, out);
                collect_expr_tables(t, out);
            }
            if let Some(el) = else_expr {
                collect_expr_tables(el, out);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            collect_expr_tables(expr, out);
            collect_query_tables(query, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_expr_tables(expr, out);
            for i in list {
                collect_expr_tables(i, out);
            }
        }
        Expr::Column { .. } | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n_shards: usize) -> ShardedBackend {
        let b = ShardedBackend::new(n_shards, EngineConfig::duckdb_mem(), "fact", "k");
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int((0..100).map(|i| i % 10).collect())),
                ("y", Column::float((0..100).map(|i| i as f64).collect())),
            ]),
        )
        .unwrap();
        b.create_table(
            "dim",
            Table::from_columns(vec![
                ("k", Column::int((0..10).collect())),
                ("grp", Column::int((0..10).map(|i| i % 2).collect())),
            ]),
        )
        .unwrap();
        b
    }

    #[test]
    fn partitions_fact_and_replicates_dims() {
        let b = star(4);
        assert!(b.is_sharded("fact"));
        assert!(!b.is_sharded("dim"));
        assert_eq!(b.row_count("fact").unwrap(), 100);
        let per_shard: Vec<usize> = (0..4)
            .map(|i| b.shard(i).row_count("fact").unwrap())
            .collect();
        assert!(per_shard.iter().all(|&n| n > 0), "{per_shard:?}");
        assert_eq!(b.coordinator().row_count("dim").unwrap(), 10);
        assert!(!b.coordinator().has_table("fact"));
    }

    #[test]
    fn grouped_aggregate_merges_exactly_across_shard_counts() {
        let single = star(1);
        let q = "SELECT grp, SUM(y) AS s, COUNT(*) AS c \
                 FROM fact JOIN dim USING (k) GROUP BY grp";
        let expected = single.query(q).unwrap();
        for n in [2, 3, 4] {
            let b = star(n);
            let got = b.query(q).unwrap();
            assert_eq!(got, expected, "{n} shards diverged");
            assert!(b.stats().fanout_selects > 0);
            assert!(b.stats().rows_shipped > 0);
        }
    }

    // Property test: ⊕-merged partials equal the single-engine result on
    // random integer data (exact arithmetic) over random shard counts,
    // key skew and group counts.
    proptest::proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(24))]
        #[test]
        fn random_grouped_aggregates_match_unsharded_engine(
            rows in 1usize..200,
            groups in 1u64..12,
            shards in 1usize..5,
            seed in 0u64..1000,
        ) {
            let mut h = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut next = move || {
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51afd7ed558ccd);
                h ^= h >> 29;
                h
            };
            let k: Vec<i64> = (0..rows).map(|_| (next() % 50) as i64).collect();
            let g: Vec<i64> = (0..rows).map(|_| (next() % groups) as i64).collect();
            let v: Vec<i64> = (0..rows).map(|_| (next() % 1000) as i64 - 500).collect();
            let table = Table::from_columns(vec![
                ("k", Column::int(k)),
                ("g", Column::int(g)),
                ("v", Column::int(v)),
            ]);
            let engine = Database::in_memory();
            engine.create_table("fact", table.clone()).unwrap();
            let b = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "fact", "k");
            b.create_table("fact", table).unwrap();
            // The ORDER BY layer runs on the coordinator over the merged
            // aggregate, giving both backends the same row order.
            let q = "SELECT * FROM (SELECT g, COUNT(*) AS c, SUM(v) AS s, \
                     MIN(v) AS mn, MAX(v) AS mx FROM fact GROUP BY g) AS a ORDER BY g";
            assert_eq!(b.query(q).unwrap(), engine.query(q).unwrap());
        }
    }

    #[test]
    fn sharded_create_table_as_stays_shard_local() {
        let b = star(3);
        b.execute("CREATE TABLE msg AS SELECT k, SUM(y) AS s FROM fact GROUP BY k")
            .unwrap();
        assert!(b.is_sharded("msg"));
        assert!(!b.coordinator().has_table("msg"));
        // Joining the replicated dim against the shard-local message still
        // merges to the global answer.
        let t = b
            .query("SELECT grp, SUM(s) AS s FROM dim JOIN msg USING (k) GROUP BY grp")
            .unwrap();
        let expected = star(1)
            .query("SELECT grp, SUM(y) AS s FROM fact JOIN dim USING (k) GROUP BY grp")
            .unwrap();
        assert_eq!(
            t.column(None, "s").unwrap(),
            expected.column(None, "s").unwrap()
        );
        b.execute("DROP TABLE msg").unwrap();
        assert!(!b.has_table("msg"));
    }

    #[test]
    fn nested_split_query_runs_outer_layers_on_coordinator() {
        // The Example-2 shape: window prefix sums + argmax over an
        // absorbed aggregate of sharded data.
        let q = "SELECT val, c, s FROM (SELECT val, SUM(c) OVER (ORDER BY val) AS c, \
                 SUM(s) OVER (ORDER BY val) AS s FROM (SELECT grp AS val, COUNT(*) AS c, \
                 SUM(y) AS s FROM fact JOIN dim USING (k) GROUP BY grp) AS g) AS w \
                 ORDER BY s DESC LIMIT 1";
        let expected = star(1).query(q).unwrap();
        for n in [2, 4] {
            let got = star(n).query(q).unwrap();
            assert_eq!(got, expected, "{n} shards diverged");
        }
    }

    #[test]
    fn updates_broadcast_to_shards() {
        let b = star(3);
        b.execute("UPDATE fact SET y = 0.0 WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
            .unwrap();
        let t = b.query("SELECT SUM(y) AS s FROM fact").unwrap();
        let expected = {
            let s1 = star(1);
            s1.execute("UPDATE fact SET y = 0.0 WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
                .unwrap();
            s1.query("SELECT SUM(y) AS s FROM fact").unwrap()
        };
        assert_eq!(t, expected);
    }

    #[test]
    fn plain_scan_gathers_all_rows() {
        let b = star(4);
        let t = b.query("SELECT y FROM fact WHERE k = 3").unwrap();
        assert_eq!(t.num_rows(), 10);
    }

    #[test]
    fn joining_two_sharded_relations_is_rejected() {
        let b = star(2);
        b.execute("CREATE TABLE m1 AS SELECT k, SUM(y) AS s FROM fact GROUP BY k")
            .unwrap();
        let err = b
            .query("SELECT SUM(fact.y) AS s FROM fact JOIN m1 USING (k)")
            .unwrap_err();
        assert!(err.to_string().contains("two sharded relations"), "{err}");
    }

    #[test]
    fn binned_absorb_without_key_in_output_merges_like_single_engine() {
        // GROUP BY FLOOR(..) with the bin id absent from the output: the
        // planner injects the key per shard, merges MAX/⊕ per bin, and
        // projects the key away — same answer as one engine (PR 3
        // *rejected* this shape; it is now a fast path).
        let q = "SELECT * FROM (SELECT MAX(y) AS val, COUNT(*) AS c, SUM(y) AS s \
                 FROM fact GROUP BY FLOOR(y / 10.0)) AS b ORDER BY val";
        let expected = star(1).query(q).unwrap();
        assert_eq!(expected.num_rows(), 10, "ten bins over y in 0..100");
        for n in [2, 3, 4] {
            let b = star(n);
            let got = b.query(q).unwrap();
            assert_eq!(got, expected, "{n} shards diverged");
            // The injected key never leaks into the output.
            let names =
                |t: &Table| -> Vec<String> { t.meta.iter().map(|m| m.name.clone()).collect() };
            assert_eq!(names(&got), names(&expected));
        }
    }

    #[test]
    fn split_query_pushdown_matches_dense_merge_and_ships_less() {
        // A high-cardinality numeric split query: the pushdown must give
        // the same (bit-level) winner while shipping far fewer rows.
        let rows = 20_000usize;
        let card = 2_500i64;
        let make = |shards: usize| {
            let b = ShardedBackend::new(shards, EngineConfig::duckdb_mem(), "fact", "k");
            b.create_table(
                "fact",
                Table::from_columns(vec![
                    ("k", Column::int((0..rows as i64).collect())),
                    (
                        "f",
                        Column::int((0..rows).map(|i| (i as i64 * 7919) % card).collect()),
                    ),
                    (
                        // The target follows the feature (dyadic 1/8 grid,
                        // so both merge orders are exact): the criterion
                        // then has a real peak and pruning can bite.
                        "y",
                        Column::float(
                            (0..rows)
                                .map(|i| (((i as i64 * 7919) % card) as f64) / 8.0)
                                .collect(),
                        ),
                    ),
                ]),
            )
            .unwrap();
            b
        };
        let absorbed = joinboost_sql::parse_query(
            "SELECT f AS val, COUNT(*) AS c, SUM(y) AS s FROM fact WHERE f IS NOT NULL GROUP BY f",
        )
        .unwrap();
        let totals = {
            let b = make(1);
            let t = b
                .query("SELECT COUNT(*) AS c, SUM(y) AS s FROM fact")
                .unwrap();
            crate::sqlgen::NodeTotals {
                c0: t.scalar_f64("c").unwrap(),
                c1: t.scalar_f64("s").unwrap(),
            }
        };
        let q = crate::sqlgen::numeric_split_query(
            absorbed,
            crate::sqlgen::RingKind::Variance,
            totals,
            0.0,
            1.0,
        )
        .to_string();
        let dense = make(4);
        dense.set_pushdown(false);
        let expected = dense.query(&q).unwrap();
        let dense_rows = dense.stats().rows_shipped;
        let pushed = make(4);
        let got = pushed.query(&q).unwrap();
        let pushed_rows = pushed.stats().rows_shipped;
        assert_eq!(got, expected, "pushdown changed the split result");
        assert_eq!(pushed.stats().pushdown_splits, 1);
        assert!(
            pushed_rows * 5 <= dense_rows,
            "pushdown must ship >= 5x fewer rows ({pushed_rows} vs {dense_rows})"
        );
    }

    #[test]
    fn skewed_partitioning_is_detected() {
        // Every fact row carries the same shard key: one partition takes
        // everything, and the load-time telemetry must say so.
        let b = ShardedBackend::new(5, EngineConfig::duckdb_mem(), "fact", "k");
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int(vec![7; 50])),
                ("y", Column::float(vec![1.0; 50])),
            ]),
        )
        .unwrap();
        assert_eq!(b.skew_warnings(), 1, "max/mean = 5 > 4 must warn");
        let sizes = b.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 50);
        assert_eq!(*sizes.iter().max().unwrap(), 50);
        // A healthy distribution stays quiet.
        let ok = star(4);
        assert_eq!(ok.skew_warnings(), 0);
        assert_eq!(ok.partition_sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn gather_rows_ships_only_the_sample() {
        let b = star(3);
        let before = b.stats().rows_shipped;
        // Positions across the snapshot order, deliberately shuffled.
        let want: Vec<u32> = vec![99, 0, 57, 13, 13, 42];
        let got = b.gather_rows("fact", &want).unwrap();
        let full = b.snapshot("fact").unwrap();
        assert_eq!(got.num_rows(), want.len());
        for (i, &g) in want.iter().enumerate() {
            for c in 0..full.num_columns() {
                assert_eq!(got.columns[c].get(i), full.columns[c].get(g as usize));
            }
        }
        // Only the sample (plus the verifying snapshot above) crossed over.
        let shipped = b.stats().rows_shipped - before;
        assert_eq!(shipped as usize, want.len() + full.num_rows());
        assert!(b.gather_rows("fact", &[100]).is_err(), "out of range");
        // Replicated tables answer from the coordinator.
        let dim = b.gather_rows("dim", &[3, 1]).unwrap();
        assert_eq!(dim.num_rows(), 2);
    }

    #[test]
    fn sharded_ref_inside_expression_subquery_is_rejected_not_multiplied() {
        // A replicated outer table filtered by an IN-subquery over the
        // sharded fact: fanning out would scan the dim replica once per
        // shard and ADD partials — silently shard-count-multiplied. Must
        // error instead.
        let b = star(4);
        for q in [
            "SELECT SUM(grp) AS s FROM dim WHERE k IN (SELECT k FROM fact WHERE y > 50.0)",
            "SELECT grp FROM dim WHERE k IN (SELECT k FROM fact WHERE y > 50.0)",
        ] {
            let err = b.query(q).unwrap_err();
            assert!(err.to_string().contains("expression subquery"), "{err}");
        }
        // Same shape with a replicated subquery target is fine.
        let t = b
            .query("SELECT SUM(y) AS s FROM fact WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
            .unwrap();
        assert_eq!(
            t,
            star(1)
                .query("SELECT SUM(y) AS s FROM fact WHERE k IN (SELECT k FROM dim WHERE grp = 0)")
                .unwrap()
        );
    }

    #[test]
    fn update_of_replicated_table_with_sharded_predicate_is_rejected() {
        // Broadcasting would leave the coordinator stale and make shard
        // replicas diverge (each evaluates the subquery on its partition).
        let b = star(2);
        let err = b
            .execute("UPDATE dim SET grp = 9 WHERE k IN (SELECT k FROM fact WHERE y > 0.0)")
            .unwrap_err();
        assert!(err.to_string().contains("expression subquery"), "{err}");
        // Replicated-only updates still apply everywhere.
        b.execute("UPDATE dim SET grp = 9 WHERE k = 0").unwrap();
        let coord: &dyn ShardTransport = b.coordinator();
        for db in [coord, b.shard(0), b.shard(1)] {
            let t = db.query("SELECT grp FROM dim WHERE k = 0").unwrap();
            assert_eq!(t.column(None, "grp").unwrap().get(0), Datum::Int(9));
        }
    }

    #[test]
    fn swap_between_sharded_and_replicated_is_rejected() {
        let b = ShardedBackend::new(
            2,
            EngineConfig {
                allow_swap: true,
                ..EngineConfig::duckdb_mem()
            },
            "fact",
            "k",
        );
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int(vec![1, 2])),
                ("y", Column::float(vec![1.0, 2.0])),
            ]),
        )
        .unwrap();
        b.create_table(
            "dim",
            Table::from_columns(vec![
                ("k", Column::int(vec![1, 2])),
                ("y", Column::float(vec![9.0, 9.0])),
            ]),
        )
        .unwrap();
        let err = b.execute("SWAP COLUMN fact.y WITH dim.y").unwrap_err();
        assert!(err.to_string().contains("SWAP COLUMN"), "{err}");
    }

    #[test]
    fn strided_integer_keys_still_spread_across_shards() {
        // All-even surrogate ids: `v % shards` would land everything on
        // shard 0; the FNV hash must spread them.
        let b = ShardedBackend::new(2, EngineConfig::duckdb_mem(), "fact", "k");
        b.create_table(
            "fact",
            Table::from_columns(vec![
                ("k", Column::int((0..100).map(|i| i * 2).collect())),
                ("y", Column::float(vec![1.0; 100])),
            ]),
        )
        .unwrap();
        let (a, c) = (
            b.shard(0).row_count("fact").unwrap(),
            b.shard(1).row_count("fact").unwrap(),
        );
        assert_eq!(a + c, 100);
        assert!(a > 10 && c > 10, "skewed partition: {a}/{c}");
    }

    #[test]
    fn snapshot_gathers_partitions() {
        let b = star(3);
        let t = b.snapshot("fact").unwrap();
        assert_eq!(t.num_rows(), 100);
        let sum: f64 = (0..t.num_rows())
            .map(|i| t.column(None, "y").unwrap().f64_at(i).unwrap())
            .sum();
        assert_eq!(sum, 4950.0);
    }
}
