//! Pluggable SQL backends (the portability claim of paper Section 5).
//!
//! JoinBoost compiles training into vendor-neutral SPJA SQL; everything the
//! trainer needs from a DBMS is captured by the [`SqlBackend`] trait:
//! statement execution, bulk load/snapshot, schema lookups, temp-table
//! lifecycle, and a set of [`BackendCapabilities`] flags that gate the
//! optional extensions (column swap, dataframe interop, window functions).
//!
//! Four implementations ship with this crate:
//!
//! * [`EngineBackend`] — wraps one in-memory [`Database`] and hands it
//!   pre-parsed statements directly (the *AST fast path*; bit-identical to
//!   talking to the engine without the trait),
//! * [`SqlTextBackend`] — forces every statement through a
//!   `print ∘ parse ∘ print` round-trip before execution, proving end to
//!   end that the emitted SQL subset survives serialization to text (what
//!   a wire-protocol backend would send to a real DBMS),
//! * [`RemoteBackend`] — an engine hosted in *another process*, spoken to
//!   over the length-prefixed [`wire`] protocol (SQL as text, tables as
//!   framed columnar blocks); [`WireServer`] and the `shard_server`
//!   binary provide the server side,
//! * [`ShardedBackend`] — hash-partitions the fact relation across N
//!   engine instances, fans the per-node SPJA aggregates out to every
//!   shard and `⊕`-merges the partial semi-ring aggregates (exact by
//!   Definition 1 of the paper; see `DESIGN.md` § Backends for the
//!   floating-point side of that argument). Its shards sit behind the
//!   pluggable [`ShardTransport`] seam: in-process engines by default,
//!   [`RemoteConnection`]s for multi-*process* sharding over sockets —
//!   the fan-out, merge and split-pushdown logic is identical either way.
//!
//! [`Database`] itself also implements the trait, so existing code that
//! holds a `Database` keeps working unchanged: `&Database` coerces to
//! `&dyn SqlBackend` at every [`crate::Dataset::new`] call site.
//!
//! # Example
//!
//! ```
//! use joinboost::backend::{EngineBackend, SqlBackend, SqlTextBackend};
//!
//! let backend = EngineBackend::in_memory();
//! backend.execute("CREATE TABLE t AS SELECT 1 AS x").unwrap();
//! let sum = backend.query("SELECT SUM(x) AS s FROM t").unwrap();
//! assert_eq!(sum.scalar_f64("s").unwrap(), 1.0);
//! assert!(backend.capabilities().ast_statements);
//!
//! // The text backend answers identically but round-trips the SQL text.
//! let text = SqlTextBackend::in_memory();
//! text.execute("CREATE TABLE t AS SELECT 1 AS x").unwrap();
//! assert_eq!(text.query("SELECT SUM(x) AS s FROM t").unwrap(),
//!            backend.query("SELECT SUM(x) AS s FROM t").unwrap());
//! assert!(text.round_trips() >= 2);
//! ```

mod remote;
mod sharded;
pub mod split;
pub mod wire;

pub use remote::{
    JobStatus, RemoteBackend, RemoteBackendBuilder, RemoteConnection, RemoteConnectionBuilder,
    RemoteOptions, RetryPolicy, ServeClient, ServeError, ServeOptions, WireServer,
    WireServerBuilder,
};
pub use sharded::{PushdownConfig, ShardTransport, ShardedBackend, SplitOpen};
pub use wire::JobSpec;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use joinboost_engine::interop::ExternalTable;
use joinboost_engine::{DataType, Database, EngineConfig, EngineError, Table};
use joinboost_sql::ast::Statement;
use joinboost_sql::parse_statement;

/// Result type of every backend operation.
///
/// Backend failures surface as [`EngineError`]s (a remote backend would map
/// its wire errors into [`EngineError::Other`]); the trainer wraps them
/// into [`crate::TrainError::Engine`] with query context attached.
pub type BackendResult<T = Table> = std::result::Result<T, EngineError>;

/// What a backend can do beyond plain SPJA SQL.
///
/// The trainer consults these flags instead of probing with trial
/// statements: unsupported [`crate::UpdateMethod`]s are rejected up front
/// with a clear error, and numeric splits (which need window prefix sums)
/// refuse backends without window-function support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCapabilities {
    /// `SUM(..) OVER (ORDER BY ..)` window prefix sums — required for
    /// numeric split evaluation (paper Example 2).
    pub window_functions: bool,
    /// Accepts pre-parsed [`Statement`]s without a text round-trip
    /// ([`SqlBackend::execute_ast`] is a true fast path, not a reprint).
    pub ast_statements: bool,
    /// The `SWAP COLUMN a.x WITH b.y` extension (`D-Swap`, Section 5.4).
    pub column_swap: bool,
    /// External dataframe storage with O(1) column replacement
    /// (the `DP` backend, Section 5.4).
    pub external_interop: bool,
    /// Number of data partitions; 1 for single-node backends.
    pub shards: usize,
}

impl BackendCapabilities {
    /// Capabilities of a single-node engine with the given configuration.
    pub fn of_engine(config: &EngineConfig) -> BackendCapabilities {
        BackendCapabilities {
            window_functions: true,
            ast_statements: true,
            column_swap: config.allow_swap,
            external_interop: true,
            shards: 1,
        }
    }
}

/// Observable work done by a backend, in one vocabulary for every
/// implementation (the unified successor of the engine's `DbStats`, the
/// sharded backend's fan-out counters and the text backend's
/// `round_trips()`): experiments and examples report any backend's work
/// through [`SqlBackend::stats`] without downcasting.
///
/// Single-node backends leave the distribution counters at zero; the
/// text backend is the only one that bumps `text_round_trips`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Statements executed (every kind, `SELECT`s included). For the
    /// sharded backend this counts *logical* statements — one per
    /// routing decision, window/argmax layers included — not the
    /// internal temp-table bookkeeping of its merge paths.
    pub statements: u64,
    /// `SELECT`/`CREATE TABLE AS` queries executed.
    pub selects: u64,
    /// `SELECT`s fanned out to every shard and `⊕`-merged.
    pub fanout_selects: u64,
    /// Statements broadcast to every shard (DDL, updates on sharded data).
    pub broadcast_statements: u64,
    /// Statements executed on replicated tables (coordinator + shards).
    pub replicated_statements: u64,
    /// Queries answered by the coordinator alone.
    pub coordinator_selects: u64,
    /// Split queries evaluated shard-locally (boundary summaries + top-k
    /// candidates shipped instead of full per-value aggregates).
    pub pushdown_splits: u64,
    /// Summary rounds executed across all pushdown splits — the
    /// denominator that turns split wire volume into *per-round* volume.
    pub split_rounds: u64,
    /// Rows moved shard → coordinator by gathers, merges, summaries and
    /// samples — the shuffle volume of the paper's multi-node experiments.
    pub rows_shipped: u64,
    /// Statements that survived a `print ∘ parse ∘ print` round-trip.
    pub text_round_trips: u64,
    /// Bytes written to remote sockets (framing included). Zero for
    /// in-process backends — together with `bytes_received` this turns
    /// `rows_shipped` into *measured* wire volume on remote transports.
    pub bytes_sent: u64,
    /// Bytes read back from remote sockets (framing included).
    pub bytes_received: u64,
    /// The subset of `bytes_sent` carrying split-protocol frames
    /// (open/boundaries/summaries/refine/fetch) — divided by
    /// `split_rounds` this is the per-round request volume of
    /// distributed split evaluation.
    pub split_bytes_sent: u64,
    /// The subset of `bytes_received` carrying split-protocol replies —
    /// divided by `split_rounds`, the per-round wire volume the
    /// delta encoding exists to shrink.
    pub split_bytes_received: u64,
}

/// A DBMS seen through JoinBoost's eyes.
///
/// The trainer only ever talks to this trait ([`crate::Dataset`] stores a
/// `&dyn SqlBackend`), so porting JoinBoost to a new DBMS means
/// implementing these methods — the SQL it must execute is the
/// vendor-neutral subset of `joinboost-sql`.
///
/// Implementations must be [`Send`] + [`Sync`]: the scheduler runs split
/// queries from worker threads (Section 5.5.3) and random forests train
/// trees in parallel.
///
/// # Example
///
/// ```
/// use joinboost::backend::{ShardedBackend, SqlBackend};
/// use joinboost_engine::{Column, EngineConfig, Table};
///
/// // Two engine "machines"; `fact` is hash-partitioned on `k`.
/// let backend = ShardedBackend::new(2, EngineConfig::duckdb_mem(), "fact", "k");
/// backend
///     .create_table(
///         "fact",
///         Table::from_columns(vec![
///             ("k", Column::int(vec![1, 2, 3, 4])),
///             ("y", Column::float(vec![1.0, 2.0, 3.0, 4.0])),
///         ]),
///     )
///     .unwrap();
/// // The grouped aggregate fans out to both shards; the partial sums are
/// // ⊕-merged — same answer as a single-node engine.
/// let t = backend.query("SELECT k, SUM(y) AS s FROM fact GROUP BY k").unwrap();
/// assert_eq!(t.num_rows(), 4);
/// assert_eq!(backend.capabilities().shards, 2);
/// ```
pub trait SqlBackend: Send + Sync {
    /// Short human-readable backend name (used in stats and reports).
    fn name(&self) -> &str;

    /// What this backend supports beyond plain SPJA SQL.
    fn capabilities(&self) -> BackendCapabilities;

    /// Execute one SQL statement given as text; `SELECT` returns its
    /// result, other statements return an empty table.
    fn execute(&self, sql: &str) -> BackendResult;

    /// Execute a pre-parsed statement. The default prints the AST back to
    /// SQL text; backends with [`BackendCapabilities::ast_statements`]
    /// override this to skip the round-trip.
    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        self.execute(&stmt.to_string())
    }

    /// Convenience alias of [`SqlBackend::execute`] for `SELECT`s.
    fn query(&self, sql: &str) -> BackendResult {
        self.execute(sql)
    }

    /// Bulk-load a table built in Rust under the given name.
    fn create_table(&self, name: &str, table: Table) -> BackendResult<()>;

    /// Materialize a full scan of a table (a sharded backend gathers and
    /// concatenates its partitions in shard order).
    fn snapshot(&self, name: &str) -> BackendResult<Table>;

    /// Column names of a table (schema lookup, no data copied).
    fn column_names(&self, table: &str) -> BackendResult<Vec<String>>;

    /// Data type of one column (schema lookup).
    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType>;

    /// Does a table with this name exist?
    fn has_table(&self, name: &str) -> bool;

    /// Number of rows in a table (summed over shards when partitioned).
    fn row_count(&self, name: &str) -> BackendResult<usize>;

    /// Bulk-load a table that should be hash-partitioned on `key`
    /// wherever the backend is partitioned (deployed message tables of
    /// [`crate::serve`] use this so the fact dictionary lives with the
    /// fact partitions). Single-node backends ignore the key.
    fn create_partitioned_table(&self, name: &str, table: Table, key: &str) -> BackendResult<()> {
        let _ = key;
        self.create_table(name, table)
    }

    /// Score a batch of predict keys against deployed message tables
    /// (see [`crate::serve`]): `(found, score)` per key, scores starting
    /// from the model's initial score. The default loads the spec's
    /// tables through [`SqlBackend::snapshot`] into a
    /// [`crate::serve::MessageIndex`]; partitioned backends override it
    /// to evaluate shard partials where the fact partitions live and
    /// `⊕`-merge, which the dyadic leaf grid keeps bit-identical.
    fn predict_batch(
        &self,
        spec: &crate::serve::ScorerSpec,
        keys: &[i64],
    ) -> BackendResult<Vec<(bool, f64)>> {
        let idx = crate::serve::MessageIndex::load(spec, &mut |n| self.snapshot(n))?;
        idx.eval_batch(keys, spec.init_score)
    }

    /// Gather the rows at the given positions of the table's
    /// [`snapshot`](SqlBackend::snapshot) order, in the given index order
    /// (random-forest row sampling). A partitioned backend overrides this
    /// to take each row from the shard that owns it and ship only the
    /// sample — not whole partitions.
    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        Ok(self.snapshot(name)?.take(rows))
    }

    /// Run `f` against every partition of `name`, *where the partition
    /// lives*: `f` receives the partition index and the partition's rows
    /// and returns the (small) table to ship back; results come back in
    /// partition order. Single-node backends present one partition — the
    /// whole table. Partitioned backends count only the returned rows as
    /// shipped, which is what makes per-shard ancestral sampling a
    /// ship-messages-not-scans operation.
    fn map_partitions(
        &self,
        name: &str,
        f: &mut dyn FnMut(usize, &Table) -> BackendResult<Table>,
    ) -> BackendResult<Vec<Table>> {
        Ok(vec![f(0, &self.snapshot(name)?)?])
    }

    /// Snapshot of the backend's work counters. The default reports a
    /// backend that counts nothing; all bundled implementations override
    /// it (see [`BackendStats`]).
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }

    /// Temp-table lifecycle: drop a (possibly already dropped) table.
    /// [`crate::Dataset`] calls this for every registered temp table.
    fn drop_table_if_exists(&self, name: &str) -> BackendResult<()> {
        self.execute(&format!("DROP TABLE IF EXISTS {name}"))
            .map(|_| ())
    }

    /// Register (or replace) a table held in external dataframe storage
    /// (the `DP` update path). Backends without
    /// [`BackendCapabilities::external_interop`] keep the default, which
    /// reports the capability gap.
    fn register_external(&self, name: &str, table: &Table) -> BackendResult<()> {
        let _ = (name, table);
        Err(unsupported(self.name(), "external dataframe storage"))
    }

    /// Handle to an external table for O(1) column replacement.
    fn external(&self, name: &str) -> BackendResult<Arc<ExternalTable>> {
        let _ = name;
        Err(unsupported(self.name(), "external dataframe storage"))
    }
}

fn unsupported(backend: &str, what: &str) -> EngineError {
    EngineError::Other(format!("backend {backend} does not support {what}"))
}

/// [`BackendStats`] view of a single engine's `DbStats`.
fn engine_stats(db: &Database) -> BackendStats {
    let s = db.stats();
    BackendStats {
        statements: s.statements,
        selects: s.queries,
        ..BackendStats::default()
    }
}

// ---------------------------------------------------------------------------
// Database: every engine instance is itself a backend (AST fast path).
// ---------------------------------------------------------------------------

impl SqlBackend for Database {
    fn name(&self) -> &str {
        "engine"
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities::of_engine(self.config())
    }

    fn execute(&self, sql: &str) -> BackendResult {
        Database::execute(self, sql)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        // AST fast path: hand the statement to the executor directly, no
        // print + re-parse.
        Database::execute_statement(self, stmt)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        Database::create_table(self, name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        Database::snapshot(self, name)
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        Database::column_names(self, table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        Database::column_dtype(self, table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        Database::has_table(self, name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        Database::row_count(self, name)
    }

    fn stats(&self) -> BackendStats {
        engine_stats(self)
    }

    fn register_external(&self, name: &str, table: &Table) -> BackendResult<()> {
        Database::register_external(self, name, table);
        Ok(())
    }

    fn external(&self, name: &str) -> BackendResult<Arc<ExternalTable>> {
        Database::external(self, name)
    }
}

// ---------------------------------------------------------------------------
// EngineBackend: an owning wrapper around one engine instance.
// ---------------------------------------------------------------------------

/// The reference backend: one in-memory engine, statements executed from
/// their AST without ever being printed to text.
///
/// Functionally identical to handing a bare [`Database`] to
/// [`crate::Dataset::new`]; the wrapper exists so backend line-ups
/// (examples, experiments) can own their engine and label it.
pub struct EngineBackend {
    db: Database,
    label: String,
}

impl EngineBackend {
    /// Open an engine with the given configuration.
    pub fn new(config: EngineConfig) -> EngineBackend {
        EngineBackend {
            db: Database::new(config),
            label: "engine".to_string(),
        }
    }

    /// In-memory columnar engine with default (DuckDB-like) settings.
    pub fn in_memory() -> EngineBackend {
        EngineBackend::new(EngineConfig::duckdb_mem())
    }

    /// Same backend under a custom display name.
    pub fn labeled(config: EngineConfig, label: impl Into<String>) -> EngineBackend {
        EngineBackend {
            db: Database::new(config),
            label: label.into(),
        }
    }

    /// The wrapped engine (stats, catalog inspection).
    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl SqlBackend for EngineBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities::of_engine(self.db.config())
    }

    fn execute(&self, sql: &str) -> BackendResult {
        self.db.execute(sql)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        self.db.execute_statement(stmt)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        self.db.create_table(name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        self.db.snapshot(name)
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        self.db.column_names(table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        self.db.column_dtype(table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        self.db.has_table(name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        self.db.row_count(name)
    }

    fn stats(&self) -> BackendStats {
        engine_stats(&self.db)
    }

    fn register_external(&self, name: &str, table: &Table) -> BackendResult<()> {
        self.db.register_external(name, table);
        Ok(())
    }

    fn external(&self, name: &str) -> BackendResult<Arc<ExternalTable>> {
        self.db.external(name)
    }
}

// ---------------------------------------------------------------------------
// SqlTextBackend: everything goes through SQL text.
// ---------------------------------------------------------------------------

/// A backend that forces every statement through SQL *text*.
///
/// Statements arriving as text are parsed, printed back, and re-parsed;
/// statements arriving as ASTs are printed and parsed. If the second print
/// ever differs from the first, execution fails — so a green training run
/// on this backend proves the whole emitted SQL subset round-trips
/// (`print ∘ parse ∘ print = print`), which is exactly what a remote
/// backend speaking a wire protocol to a real DBMS relies on.
pub struct SqlTextBackend {
    db: Database,
    label: String,
    round_trips: AtomicU64,
}

impl SqlTextBackend {
    /// Open a text-path backend over an engine with the given config.
    pub fn new(config: EngineConfig) -> SqlTextBackend {
        SqlTextBackend {
            db: Database::new(config),
            label: "sql-text".to_string(),
            round_trips: AtomicU64::new(0),
        }
    }

    /// In-memory engine behind the text path.
    pub fn in_memory() -> SqlTextBackend {
        SqlTextBackend::new(EngineConfig::duckdb_mem())
    }

    /// The wrapped engine (stats, catalog inspection).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// How many statements survived the print/parse round-trip so far.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Print → parse → print; verify the fixed point; execute.
    fn round_trip_and_run(&self, stmt: &Statement) -> BackendResult {
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .map_err(|e| EngineError::Other(format!("emitted SQL failed to re-parse: {e}")))?;
        let reprinted = reparsed.to_string();
        if reprinted != printed {
            return Err(EngineError::Other(format!(
                "SQL text round-trip diverged:\n  first:  {printed}\n  second: {reprinted}"
            )));
        }
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.db.execute_statement(&reparsed)
    }
}

impl SqlBackend for SqlTextBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            ast_statements: false,
            ..BackendCapabilities::of_engine(self.db.config())
        }
    }

    fn execute(&self, sql: &str) -> BackendResult {
        let stmt = parse_statement(sql)?;
        self.round_trip_and_run(&stmt)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        self.round_trip_and_run(stmt)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        self.db.create_table(name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        self.db.snapshot(name)
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        self.db.column_names(table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        self.db.column_dtype(table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        self.db.has_table(name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        self.db.row_count(name)
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            text_round_trips: self.round_trips(),
            ..engine_stats(&self.db)
        }
    }

    fn register_external(&self, name: &str, table: &Table) -> BackendResult<()> {
        self.db.register_external(name, table);
        Ok(())
    }

    fn external(&self, name: &str) -> BackendResult<Arc<ExternalTable>> {
        self.db.external(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::Column;

    fn seed(backend: &dyn SqlBackend) {
        backend
            .create_table(
                "r",
                Table::from_columns(vec![
                    ("a", Column::int(vec![1, 1, 2])),
                    ("y", Column::float(vec![1.0, 2.0, 4.0])),
                ]),
            )
            .unwrap();
    }

    #[test]
    fn engine_and_text_backends_agree() {
        let engine = EngineBackend::in_memory();
        let text = SqlTextBackend::in_memory();
        for b in [&engine as &dyn SqlBackend, &text as &dyn SqlBackend] {
            seed(b);
            b.execute("CREATE TABLE g AS SELECT a, SUM(y) AS s FROM r GROUP BY a")
                .unwrap();
        }
        let q = "SELECT a, s FROM g ORDER BY a";
        assert_eq!(engine.query(q).unwrap(), text.query(q).unwrap());
        assert!(text.round_trips() >= 2);
        assert!(engine.capabilities().ast_statements);
        assert!(!text.capabilities().ast_statements);
    }

    #[test]
    fn default_methods_cover_lifecycle_and_interop_gaps() {
        let b = EngineBackend::in_memory();
        seed(&b);
        assert!(b.has_table("r"));
        assert_eq!(b.row_count("r").unwrap(), 3);
        assert_eq!(b.column_names("r").unwrap(), vec!["a", "y"]);
        assert_eq!(b.column_dtype("r", "y").unwrap(), DataType::Float);
        b.drop_table_if_exists("r").unwrap();
        b.drop_table_if_exists("r").unwrap();
        assert!(!b.has_table("r"));
    }

    #[test]
    fn text_backend_runs_ast_statements_via_text() {
        let b = SqlTextBackend::in_memory();
        seed(&b);
        let stmt = parse_statement("SELECT SUM(y) AS s FROM r").unwrap();
        let t = b.execute_ast(&stmt).unwrap();
        assert_eq!(t.scalar_f64("s").unwrap(), 7.0);
        assert_eq!(b.round_trips(), 1);
    }
}
