//! The remote backend: a JoinBoost engine hosted in *another process*,
//! spoken to over the wire protocol of [`crate::backend::wire`].
//!
//! Two halves:
//!
//! * **Server** — [`serve`] runs an accept loop over a [`TcpListener`],
//!   hosting one shared [`Database`]: every connection gets an OS thread,
//!   every request maps onto the same engine entry points the in-process
//!   backends use. [`WireServer::spawn`] runs the same loop on a
//!   background thread (examples, experiments, tests); the
//!   `shard_server` binary wraps [`serve`] for true multi-process
//!   deployments. [`ServeOptions`] carries the fault-injection knobs the
//!   test suite uses to kill or stall a server mid-round.
//! * **Client** — [`RemoteConnection`] is one framed, timeout-guarded
//!   socket (the pluggable shard transport of
//!   [`crate::backend::ShardedBackend`]); [`RemoteBackend`] wraps a
//!   connection into a full [`SqlBackend`], so a training run can target a
//!   single remote engine exactly like a local one.
//!
//! SQL travels as text — the soundness of that rests on the
//! `print ∘ parse ∘ print` fixed point proved by
//! [`crate::backend::SqlTextBackend`] (see `DESIGN.md` § "Wire
//! protocol"). Failure handling is deliberately *fail-fast*: connect and
//! I/O timeouts bound every wait, and the first transport error poisons
//! the connection so later calls (temp-table cleanup included) return
//! immediately instead of re-waiting on a dead peer.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use joinboost_engine::{DataType, Database, EngineError, Table};
use joinboost_sql::ast::Statement;

use super::sharded::SplitOpen;
use super::split::{
    keys_from_table, keys_to_table, summaries_from_table, summaries_to_table, IntervalSummary,
    LocalSplitState, MergeSpec, SplitHandle, SplitSpec,
};
use super::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, Response, MAGIC, MAX_FRAME, VERSION,
};
use super::{BackendCapabilities, BackendResult, BackendStats, ShardTransport, SqlBackend};
use joinboost_engine::Datum;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side knobs. The fault-injection fields exist for the test rig:
/// a real deployment leaves them at `Default`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// After this many requests have been *received* (across all
    /// connections), the server stops serving: with [`ServeOptions::stall`]
    /// unset it drops every connection (a killed process — clients see
    /// EOF/reset immediately); with it set the sockets stay open but no
    /// reply ever comes (a hung process — clients run into their read
    /// timeout). `None` serves forever.
    pub fail_after: Option<u64>,
    /// Fault mode: stall (hold sockets silently) instead of dropping them.
    pub stall: bool,
}

struct ServeState {
    db: Database,
    opts: ServeOptions,
    requests: AtomicU64,
    shutdown: AtomicBool,
    /// Clones of the live sockets (keyed by connection id), so `kill`
    /// can yank connections out from under their threads. Entries leave
    /// when their connection ends — a long-running server does not
    /// accumulate dead fds.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
}

impl ServeState {
    fn new(db: Database, opts: ServeOptions) -> ServeState {
        ServeState {
            db,
            opts,
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        }
    }

    /// Has the fault-injection threshold been crossed (or `kill` called)?
    fn failed(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
            || self
                .opts
                .fail_after
                .is_some_and(|n| self.requests.load(Ordering::Relaxed) >= n)
    }
}

/// Per-connection state: open split-protocol handles. Handles live and
/// die with their connection — a vanished client cannot leak state past
/// its socket.
#[derive(Default)]
struct Session {
    splits: std::collections::HashMap<u64, LocalSplitState>,
    next_split: u64,
}

/// Handle one `Split*` request against the connection's session.
fn handle_split_request(db: &Database, session: &mut Session, req: Request) -> Response {
    match req {
        Request::SplitOpen {
            sql,
            key_col,
            c0_col,
            c1_col,
            specs,
        } => {
            let specs: Option<Vec<MergeSpec>> =
                specs.iter().map(|&t| MergeSpec::from_tag(t)).collect();
            let Some(specs) = specs else {
                return Response::Err(EngineError::Other("bad merge-spec tag".into()));
            };
            let table = match db.execute(&sql) {
                Ok(t) => t,
                Err(e) => return Response::Err(e),
            };
            if [key_col, c0_col, c1_col]
                .iter()
                .any(|&c| c as usize >= table.num_columns())
                || specs.len() != table.num_columns()
            {
                return Response::Err(EngineError::Other(
                    "split spec does not match the absorbed result".into(),
                ));
            }
            let spec = SplitSpec {
                key_col: key_col as usize,
                c0_col: c0_col as usize,
                c1_col: c1_col as usize,
                specs,
            };
            match LocalSplitState::build(table, spec) {
                // Protocol inapplicable here: hand the absorbed result
                // back so the client's dense fallback needs no second
                // execution.
                Err(table) => Response::Table(table),
                Ok(state) => {
                    let rows = state.num_rows() as u64;
                    let id = session.next_split;
                    session.next_split += 1;
                    session.splits.insert(id, state);
                    Response::SplitOpened(id, rows)
                }
            }
        }
        Request::SplitClose { id } => {
            session.splits.remove(&id);
            Response::Unit
        }
        Request::SplitBoundaries { id, .. }
        | Request::SplitSummaries { id, .. }
        | Request::SplitRefine { id, .. }
        | Request::SplitFetch { id, .. } => {
            let Some(state) = session.splits.get(&id) else {
                return Response::Err(EngineError::Other(format!("unknown split handle {id}")));
            };
            let result = match req {
                Request::SplitBoundaries { k, .. } => state
                    .boundaries(k as usize)
                    .map(|keys| Response::Table(keys_to_table(&keys))),
                Request::SplitSummaries { grid, .. } => state
                    .summaries(&keys_from_table(&grid))
                    .map(|s| Response::Table(summaries_to_table(&s))),
                Request::SplitRefine { grid, targets, .. } => {
                    let targets: Vec<(usize, usize)> = targets
                        .iter()
                        .map(|&(j, per)| (j as usize, per as usize))
                        .collect();
                    let grid = keys_from_table(&grid);
                    if targets.iter().any(|&(j, _)| j >= grid.len()) {
                        return Response::Err(EngineError::Other(
                            "refine interval out of grid range".into(),
                        ));
                    }
                    state
                        .refine(&grid, &targets)
                        .map(|keys| Response::Table(keys_to_table(&keys)))
                }
                Request::SplitFetch { grid, retain, .. } => {
                    let grid = keys_from_table(&grid);
                    if retain.len() != grid.len() {
                        return Response::Err(EngineError::Other(
                            "retain mask does not match the grid".into(),
                        ));
                    }
                    state.fetch(&grid, &retain).map(Response::Table)
                }
                _ => unreachable!("outer match covers the split requests"),
            };
            result.unwrap_or_else(Response::Err)
        }
        _ => unreachable!("caller routes only split requests here"),
    }
}

/// Execute one decoded request against the hosted engine.
fn handle_request(db: &Database, req: Request) -> Response {
    let table = |r: Result<Table, EngineError>| match r {
        Ok(t) => Response::Table(t),
        Err(e) => Response::Err(e),
    };
    match req {
        Request::Hello { magic, version } => {
            if magic != MAGIC {
                Response::Err(EngineError::Other("bad protocol magic".into()))
            } else if version != VERSION {
                Response::Err(EngineError::Other(format!(
                    "protocol version mismatch: client {version}, server {VERSION}"
                )))
            } else {
                Response::Caps {
                    column_swap: db.config().allow_swap,
                }
            }
        }
        Request::Execute { sql } => table(db.execute(&sql)),
        Request::CreateTable { name, table: t } => match db.create_table(&name, t) {
            Ok(()) => Response::Unit,
            Err(e) => Response::Err(e),
        },
        Request::Snapshot { name } => table(db.snapshot(&name)),
        Request::ColumnNames { name } => match db.column_names(&name) {
            Ok(names) => Response::Names(names),
            Err(e) => Response::Err(e),
        },
        Request::ColumnDtype { table, column } => match db.column_dtype(&table, &column) {
            Ok(d) => Response::Dtype(d),
            Err(e) => Response::Err(e),
        },
        Request::HasTable { name } => Response::Bool(db.has_table(&name)),
        Request::RowCount { name } => match db.row_count(&name) {
            Ok(n) => Response::Count(n as u64),
            Err(e) => Response::Err(e),
        },
        // Tolerant drop and bounds-checked gather share the in-process
        // transport's implementation — one copy of the semantics for
        // local and remote shards.
        Request::DropTableIfExists { name } => match ShardTransport::drop_table(db, &name) {
            Ok(()) => Response::Unit,
            Err(e) => Response::Err(e),
        },
        Request::GatherRows { name, rows } => table(ShardTransport::gather_rows(db, &name, &rows)),
        Request::TableNames => Response::Names(db.table_names()),
        Request::SplitOpen { .. }
        | Request::SplitBoundaries { .. }
        | Request::SplitSummaries { .. }
        | Request::SplitRefine { .. }
        | Request::SplitFetch { .. }
        | Request::SplitClose { .. } => {
            // The connection loop routes these to the session-aware
            // handler first; reaching here is a protocol bug.
            Response::Err(EngineError::Other("split request outside a session".into()))
        }
    }
}

/// One connection's request loop. Ends on EOF, I/O error, or fault
/// injection.
fn serve_connection(state: &ServeState, mut stream: TcpStream) {
    let mut session = Session::default();
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(_) => return, // client went away (or kill() shut us down)
        };
        // Fault injection is checked *after* a request arrives — the
        // failure lands mid-round, between statements of a training run.
        state.requests.fetch_add(1, Ordering::Relaxed);
        if state.failed() {
            if state.opts.stall {
                // Hung process: never answer, hold the socket until the
                // client's read timeout fires (or kill() closes us).
                loop {
                    std::thread::sleep(Duration::from_millis(50));
                    if state.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
            }
            // Killed process: drop the connection, client sees EOF.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let resp = match decode_request(&payload) {
            Ok(
                req @ (Request::SplitOpen { .. }
                | Request::SplitBoundaries { .. }
                | Request::SplitSummaries { .. }
                | Request::SplitRefine { .. }
                | Request::SplitFetch { .. }
                | Request::SplitClose { .. }),
            ) => handle_split_request(&state.db, &mut session, req),
            Ok(req) => handle_request(&state.db, req),
            Err(e) => Response::Err(e),
        };
        // A result too large for one frame becomes a *typed* error on a
        // live connection, not a silent hangup the client would read as
        // a crashed server.
        let mut out = encode_response(&resp);
        if out.len() > MAX_FRAME as usize {
            out = encode_response(&Response::Err(EngineError::Other(format!(
                "result frame of {} bytes exceeds the {MAX_FRAME}-byte wire limit; \
                 transfer large tables in parts",
                out.len()
            ))));
        }
        if write_frame(&mut stream, &out).is_err() {
            return;
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => return,
        };
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if state.failed() && !state.opts.stall {
            // Refuse service once failed: drop fresh connections too.
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().push((id, clone));
        }
        let st = Arc::clone(&state);
        std::thread::spawn(move || {
            serve_connection(&st, stream);
            st.conns.lock().retain(|(i, _)| *i != id);
        });
    }
}

/// Serve `db` on `listener` until the process exits. This is the
/// single-threaded entry point the `shard_server` binary uses; each
/// accepted connection still gets its own thread.
pub fn serve(listener: TcpListener, db: Database, opts: ServeOptions) {
    let state = Arc::new(ServeState::new(db, opts));
    accept_loop(listener, state);
}

/// An in-process wire server: the full remote protocol over a real
/// loopback TCP socket, hosted on a background thread. What the examples,
/// experiments and most tests use; the `shard_server` binary provides the
/// same loop as a standalone process.
pub struct WireServer {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Bind an ephemeral loopback port and serve `db` on a background
    /// thread.
    pub fn spawn(db: Database, opts: ServeOptions) -> io::Result<WireServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServeState::new(db, opts));
        let st = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(listener, st));
        Ok(WireServer {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// The server's socket address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted engine — tests use it to assert on server-side state
    /// (temp-table cleanup, concurrent clients' tables).
    pub fn database(&self) -> &Database {
        &self.state.db
    }

    /// Requests received so far (across all connections).
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Kill the server: stop accepting and sever every live connection.
    /// Clients observe the same thing a crashed process produces.
    pub fn kill(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        for (_, c) in self.state.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.kill();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side transport knobs.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Bound on every request/response exchange (read + write timeouts on
    /// the socket): a dead or hung server surfaces as an error after at
    /// most this long, never as a hang.
    pub io_timeout: Duration,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// One framed connection to a wire server: the remote flavor of
/// [`ShardTransport`], and the engine half of [`RemoteBackend`].
///
/// A connection serializes its requests behind a mutex (the protocol is
/// strictly request/response); the sharded fan-out gets its parallelism
/// from holding one connection per shard. The first transport failure
/// *poisons* the connection: every later call fails immediately with the
/// original error, so cleanup paths touching a dead shard cost nothing —
/// they do not re-wait on timeouts.
pub struct RemoteConnection {
    stream: Mutex<TcpStream>,
    addr: String,
    column_swap: bool,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    requests: AtomicU64,
    poisoned: Mutex<Option<String>>,
}

impl RemoteConnection {
    /// Connect, handshake, and learn the server's capabilities.
    pub fn connect(
        addr: impl ToSocketAddrs + std::fmt::Display,
    ) -> BackendResult<RemoteConnection> {
        RemoteConnection::connect_with(addr, RemoteOptions::default())
    }

    /// [`RemoteConnection::connect`] with explicit timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        opts: RemoteOptions,
    ) -> BackendResult<RemoteConnection> {
        let label = addr.to_string();
        let ctx = |e: io::Error| {
            EngineError::Other(format!("shard server at {label}: connect failed: {e}"))
        };
        let sock_addr =
            addr.to_socket_addrs().map_err(ctx)?.next().ok_or_else(|| {
                EngineError::Other(format!("shard server at {label}: no address"))
            })?;
        let stream = TcpStream::connect_timeout(&sock_addr, opts.connect_timeout).map_err(ctx)?;
        stream
            .set_read_timeout(Some(opts.io_timeout))
            .map_err(ctx)?;
        stream
            .set_write_timeout(Some(opts.io_timeout))
            .map_err(ctx)?;
        let _ = stream.set_nodelay(true);
        let conn = RemoteConnection {
            stream: Mutex::new(stream),
            addr: label,
            column_swap: false,
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            poisoned: Mutex::new(None),
        };
        let column_swap = match conn.call(&Request::Hello {
            magic: MAGIC,
            version: VERSION,
        })? {
            Response::Caps { column_swap } => column_swap,
            other => {
                return Err(EngineError::Other(format!(
                    "shard server at {}: bad handshake reply: {other:?}",
                    conn.addr
                )))
            }
        };
        Ok(RemoteConnection {
            column_swap,
            ..conn
        })
    }

    /// The address this connection talks to (diagnostics).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the server's engine accepts `SWAP COLUMN`.
    pub fn server_column_swap(&self) -> bool {
        self.column_swap
    }

    /// `(bytes_sent, bytes_received)` on this connection, framing
    /// included — the real shuffle volume of a distributed run.
    pub fn wire_byte_counts(&self) -> (u64, u64) {
        (
            self.bytes_sent.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
        )
    }

    /// Requests completed on this connection.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// One request/response exchange. Transport failures poison the
    /// connection and carry the shard address; server-side engine errors
    /// come back as the exact [`EngineError`] variant the engine raised.
    fn request(&self, req: &Request) -> BackendResult<Response> {
        if let Some(why) = self.poisoned.lock().as_ref() {
            return Err(EngineError::Other(format!(
                "shard server at {}: connection previously failed: {why}",
                self.addr
            )));
        }
        let payload = encode_request(req);
        if payload.len() > MAX_FRAME as usize {
            // A purely client-side limit: nothing touched the socket, so
            // the connection stays healthy — no poison, typed error.
            return Err(EngineError::Other(format!(
                "request frame of {} bytes exceeds the {MAX_FRAME}-byte wire limit; \
                 transfer large tables in parts",
                payload.len()
            )));
        }
        let result = self.exchange(&payload);
        if let Err(e) = &result {
            let mut p = self.poisoned.lock();
            if p.is_none() {
                *p = Some(e.to_string());
            }
        }
        result.map_err(|e| EngineError::Other(format!("shard server at {}: {e}", self.addr)))
    }

    fn exchange(&self, payload: &[u8]) -> Result<Response, io::Error> {
        let mut stream = self.stream.lock();
        let sent = write_frame(&mut *stream, payload)?;
        self.bytes_sent.fetch_add(sent as u64, Ordering::Relaxed);
        let frame = read_frame(&mut *stream)?;
        self.bytes_received
            .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        decode_response(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Request + unwrap a server-side error into the engine error it was.
    fn call(&self, req: &Request) -> BackendResult<Response> {
        match self.request(req)? {
            Response::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }

    fn unexpected(&self, what: &str, got: &Response) -> EngineError {
        EngineError::Other(format!(
            "shard server at {}: unexpected reply to {what}: {got:?}",
            self.addr
        ))
    }

    /// Execute one SQL statement given as text.
    pub fn execute_text(&self, sql: &str) -> BackendResult {
        match self.call(&Request::Execute { sql: sql.into() })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("Execute", &other)),
        }
    }

    /// Names of every table the server holds (diagnostics / tests).
    pub fn table_names(&self) -> BackendResult<Vec<String>> {
        match self.call(&Request::TableNames)? {
            Response::Names(n) => Ok(n),
            other => Err(self.unexpected("TableNames", &other)),
        }
    }
}

impl ShardTransport for RemoteConnection {
    fn execute(&self, stmt: &Statement) -> BackendResult {
        // SQL ships as text; the server re-parses the identical statement
        // (the round-trip fixed point of the SQL-text backend).
        self.execute_text(&stmt.to_string())
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        match self.call(&Request::CreateTable {
            name: name.into(),
            table,
        })? {
            Response::Unit => Ok(()),
            other => Err(self.unexpected("CreateTable", &other)),
        }
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        match self.call(&Request::Snapshot { name: name.into() })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("Snapshot", &other)),
        }
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        match self.call(&Request::GatherRows {
            name: name.into(),
            rows: rows.to_vec(),
        })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("GatherRows", &other)),
        }
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        match self.call(&Request::ColumnNames { name: table.into() })? {
            Response::Names(n) => Ok(n),
            other => Err(self.unexpected("ColumnNames", &other)),
        }
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        match self.call(&Request::ColumnDtype {
            table: table.into(),
            column: column.into(),
        })? {
            Response::Dtype(d) => Ok(d),
            other => Err(self.unexpected("ColumnDtype", &other)),
        }
    }

    fn has_table(&self, name: &str) -> bool {
        matches!(
            self.call(&Request::HasTable { name: name.into() }),
            Ok(Response::Bool(true))
        )
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        match self.call(&Request::RowCount { name: name.into() })? {
            Response::Count(n) => Ok(n as usize),
            other => Err(self.unexpected("RowCount", &other)),
        }
    }

    fn drop_table(&self, name: &str) -> BackendResult<()> {
        match self.call(&Request::DropTableIfExists { name: name.into() })? {
            Response::Unit => Ok(()),
            other => Err(self.unexpected("DropTableIfExists", &other)),
        }
    }

    fn split_open(&self, stmt: &Statement, spec: &SplitSpec) -> BackendResult<SplitOpen<'_>> {
        // The absorbed result stays on the server; only the protocol's
        // messages (boundaries, summaries, candidate rows) will cross.
        let req = Request::SplitOpen {
            sql: stmt.to_string(),
            key_col: spec.key_col as u32,
            c0_col: spec.c0_col as u32,
            c1_col: spec.c1_col as u32,
            specs: spec.specs.iter().map(|s| s.to_tag()).collect(),
        };
        match self.call(&req)? {
            Response::SplitOpened(id, rows) => {
                Ok(SplitOpen::Protocol(Box::new(RemoteSplitHandle {
                    conn: self,
                    id,
                    rows: rows as usize,
                })))
            }
            // Protocol inapplicable on the server's data: the absorbed
            // result came back instead, ready for the dense merge.
            Response::Table(t) => Ok(SplitOpen::Dense(t)),
            other => Err(self.unexpected("SplitOpen", &other)),
        }
    }

    fn wire_bytes(&self) -> (u64, u64) {
        self.wire_byte_counts()
    }
}

/// Client proxy of a server-side split handle: every method is one
/// request/response on the shard's connection.
struct RemoteSplitHandle<'a> {
    conn: &'a RemoteConnection,
    id: u64,
    rows: usize,
}

impl RemoteSplitHandle<'_> {
    fn table_reply(&self, what: &str, req: &Request) -> BackendResult<Table> {
        match self.conn.call(req)? {
            Response::Table(t) => Ok(t),
            other => Err(self.conn.unexpected(what, &other)),
        }
    }
}

impl SplitHandle for RemoteSplitHandle<'_> {
    fn num_rows(&self) -> usize {
        self.rows
    }

    fn boundaries(&self, k: usize) -> BackendResult<Vec<Datum>> {
        let t = self.table_reply(
            "SplitBoundaries",
            &Request::SplitBoundaries {
                id: self.id,
                k: k as u32,
            },
        )?;
        Ok(keys_from_table(&t))
    }

    fn summaries(&self, grid: &[Datum]) -> BackendResult<Vec<IntervalSummary>> {
        let t = self.table_reply(
            "SplitSummaries",
            &Request::SplitSummaries {
                id: self.id,
                grid: keys_to_table(grid),
            },
        )?;
        summaries_from_table(&t).ok_or_else(|| {
            EngineError::Other(format!(
                "shard server at {}: malformed split summaries",
                self.conn.addr
            ))
        })
    }

    fn refine(&self, grid: &[Datum], targets: &[(usize, usize)]) -> BackendResult<Vec<Datum>> {
        let t = self.table_reply(
            "SplitRefine",
            &Request::SplitRefine {
                id: self.id,
                grid: keys_to_table(grid),
                targets: targets
                    .iter()
                    .map(|&(j, per)| (j as u32, per as u32))
                    .collect(),
            },
        )?;
        Ok(keys_from_table(&t))
    }

    fn fetch(&self, grid: &[Datum], retain: &[bool]) -> BackendResult<Table> {
        self.table_reply(
            "SplitFetch",
            &Request::SplitFetch {
                id: self.id,
                grid: keys_to_table(grid),
                retain: retain.to_vec(),
            },
        )
    }

    fn into_all_rows(self: Box<Self>) -> BackendResult<Table> {
        // The dense fallback: one interval covering every key ships the
        // whole absorbed result — exactly the cost the protocol avoids
        // when it does apply. (Drop then releases the server-side state.)
        let bounds = self.boundaries(2)?;
        match bounds.last() {
            None => self.fetch(&[], &[]),
            Some(max) => {
                let max = max.clone();
                self.fetch(&[max], &[true])
            }
        }
    }
}

impl Drop for RemoteSplitHandle<'_> {
    fn drop(&mut self) {
        // Best-effort release of the server-side state; a dead
        // connection already dropped it with the session.
        let _ = self.conn.call(&Request::SplitClose { id: self.id });
    }
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

/// A full [`SqlBackend`] over one remote engine process.
///
/// Every statement ships as SQL text; tables move as framed columnar
/// blocks. Capabilities are learned from the server's handshake;
/// [`BackendCapabilities::external_interop`] is always off (an
/// `Arc`-shared dataframe cannot cross a process boundary), so the
/// trainer's capability checks reject the `DP` update path up front.
pub struct RemoteBackend {
    conn: RemoteConnection,
    label: String,
    statements: AtomicU64,
    selects: AtomicU64,
}

impl RemoteBackend {
    /// Connect to a wire server with default timeouts.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> BackendResult<RemoteBackend> {
        RemoteBackend::connect_with(addr, RemoteOptions::default())
    }

    /// Connect with explicit timeouts.
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        opts: RemoteOptions,
    ) -> BackendResult<RemoteBackend> {
        let conn = RemoteConnection::connect_with(addr, opts)?;
        Ok(RemoteBackend {
            label: "remote".to_string(),
            conn,
            statements: AtomicU64::new(0),
            selects: AtomicU64::new(0),
        })
    }

    /// The underlying connection (byte counters, diagnostics).
    pub fn connection(&self) -> &RemoteConnection {
        &self.conn
    }

    fn count(&self, sql: &str) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        let head = sql.trim_start();
        // get(..6) rather than [..6]: byte 6 of arbitrary text may not be
        // a char boundary.
        if head
            .get(..6)
            .is_some_and(|h| h.eq_ignore_ascii_case("SELECT"))
        {
            self.selects.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SqlBackend for RemoteBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            window_functions: true,
            ast_statements: false,
            column_swap: self.conn.server_column_swap(),
            external_interop: false,
            shards: 1,
        }
    }

    fn execute(&self, sql: &str) -> BackendResult {
        self.count(sql);
        self.conn.execute_text(sql)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        let sql = stmt.to_string();
        self.count(&sql);
        self.conn.execute_text(&sql)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        ShardTransport::create_table(&self.conn, name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        ShardTransport::snapshot(&self.conn, name)
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        ShardTransport::column_names(&self.conn, table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        ShardTransport::column_dtype(&self.conn, table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        ShardTransport::has_table(&self.conn, name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        ShardTransport::row_count(&self.conn, name)
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        // Ship only the sample, not the snapshot it came from.
        ShardTransport::gather_rows(&self.conn, name, rows)
    }

    fn drop_table_if_exists(&self, name: &str) -> BackendResult<()> {
        ShardTransport::drop_table(&self.conn, name)
    }

    fn stats(&self) -> BackendStats {
        let (bytes_sent, bytes_received) = self.conn.wire_byte_counts();
        BackendStats {
            statements: self.statements.load(Ordering::Relaxed),
            selects: self.selects.load(Ordering::Relaxed),
            bytes_sent,
            bytes_received,
            ..BackendStats::default()
        }
    }
}
