//! The remote backend: a JoinBoost engine hosted in *another process*,
//! spoken to over the wire protocol of [`crate::backend::wire`].
//!
//! Two halves:
//!
//! * **Server** — [`WireServerBuilder::serve`] runs an accept loop over a
//!   [`TcpListener`], hosting one shared [`Database`]: every connection
//!   gets an OS thread, every request maps onto the same engine entry
//!   points the in-process backends use. [`WireServerBuilder::spawn`]
//!   runs the same loop on a background thread (examples, experiments,
//!   tests); the `shard_server` binary wraps the blocking loop for true
//!   multi-process deployments. [`ServeOptions`] carries the
//!   fault-injection knobs the test suite uses to kill, stall, or —
//!   recoverably — drop connections mid-round.
//! * **Client** — [`RemoteConnection`] is one framed, timeout-guarded
//!   socket (the pluggable shard transport of
//!   [`crate::backend::ShardedBackend`]); [`RemoteBackend`] wraps a
//!   connection into a full [`SqlBackend`], so a training run can target a
//!   single remote engine exactly like a local one.
//!
//! SQL travels as text — the soundness of that rests on the
//! `print ∘ parse ∘ print` fixed point proved by
//! [`crate::backend::SqlTextBackend`] (see `DESIGN.md` § "Wire
//! protocol").
//!
//! **Failure handling** is retry-then-fail: connect and I/O timeouts
//! bound every wait; on a transport error the client reconnects with
//! exponential backoff under its [`RetryPolicy`], re-presents its session
//! resume token, and re-issues every in-flight request. The server keeps
//! a session alive across connection drops for a grace period — split
//! handles, temp tables and the replay window of applied-but-unacked
//! `(seq, response)` pairs survive, so a replayed request that was
//! already applied returns the cached response instead of re-executing
//! (safe replay of non-idempotent statements). Only when the retry
//! budget is exhausted
//! does the first error *poison* the connection: every later call fails
//! immediately with the original error, so cleanup paths touching a dead
//! shard cost nothing. [`RetryPolicy::none()`] restores the pre-v3
//! fail-fast behavior exactly.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use joinboost_engine::{DataType, Database, EngineError, Table};
use joinboost_graph::JoinGraph;
use joinboost_sql::ast::Statement;

use super::sharded::SplitOpen;
use super::split::{
    keys_from_table, keys_to_table, summaries_from_table, summaries_to_table, IntervalSummary,
    LocalSplitState, MergeSpec, SplitHandle, SplitSpec,
};
use super::wire::{
    decode_request, decode_response, encode_request, encode_response, forest_bytes,
    forest_from_bytes, job_spec_bytes, job_spec_from_bytes, read_frame, scorer_spec_bytes,
    scorer_spec_from_bytes, write_frame, JobSpec, Request, Response, MAGIC, MAX_FRAME, MIN_VERSION,
    VERSION,
};
use super::{BackendCapabilities, BackendResult, BackendStats, ShardTransport, SqlBackend};
use crate::boosting::train_gbm_resume;
use crate::dataset::Dataset;
use crate::params::TrainParams;
use crate::serve::{compile_messages, MessageIndex, ScorerSpec};
use crate::tree::Tree;
use joinboost_engine::{Column, Datum};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side knobs. The fault-injection fields exist for the test rig:
/// a real deployment leaves them at `Default`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// After this many requests have been *received* (across all
    /// connections), the server stops serving: with [`ServeOptions::stall`]
    /// unset it drops every connection (a killed process — clients see
    /// EOF/reset immediately); with it set the sockets stay open but no
    /// reply ever comes (a hung process — clients run into their read
    /// timeout). `None` serves forever.
    pub fail_after: Option<u64>,
    /// Fault mode: stall (hold sockets silently) instead of dropping them.
    pub stall: bool,
    /// *Recovering* fault: every `n`-th received request (across all
    /// connections) is thrown away *before* execution and its connection
    /// dropped — then the server keeps serving. A retrying client must
    /// reconnect and re-issue; since the request was never applied, the
    /// replay executes fresh. Reconnect handshakes count as requests, so
    /// `n` must be ≥ 3 for a client to make progress between drops.
    pub drop_every: Option<u64>,
    /// *Recovering* fault, one-shot: request number `n` is executed but
    /// its connection drops *before the reply is written* — then the
    /// server serves normally forever after. The client's replay must be
    /// answered from the session's response cache, not re-executed (the
    /// exactly-once case for non-idempotent statements).
    pub flaky_after: Option<u64>,
    /// Crash-the-process fault: after this many boosting iterations have
    /// been trained (across all jobs, counted *after* the iteration's
    /// registry checkpoint was persisted), the server calls
    /// [`std::process::abort`] — no destructors, no WAL flush beyond what
    /// commit already did. Only meaningful for a real `shard_server`
    /// child process; the restart tests use it to kill training at an
    /// exact, reproducible point.
    pub crash_after_iters: Option<u64>,
    /// Deterministic reply jitter `(seed, max_micros)`: before writing
    /// each reply the server sleeps `splitmix64(seed ^ request_number) %
    /// max_micros` microseconds. With several shard servers on different
    /// seeds this randomizes *cross-shard completion order* — the
    /// pipelined coordinator's ordering-independence proptests drive it.
    pub reply_jitter: Option<(u64, u64)>,
}

/// A training job's life: `Queued → Running → Done | Failed | Cancelled`.
/// `Cancelled` can also be entered straight from `Queued`.
enum JobProgress {
    Queued,
    Running {
        iterations: u64,
    },
    Done {
        iterations: u64,
        /// Message tables compiled from the trained model when the job
        /// named a `key_column`; what `PredictBatch { job }` scores
        /// against.
        spec: Option<ScorerSpec>,
    },
    Failed(String),
    Cancelled,
}

impl JobProgress {
    fn is_active(&self) -> bool {
        matches!(self, JobProgress::Queued | JobProgress::Running { .. })
    }

    /// The wire view of this state (tags documented on
    /// [`Response::JobState`]).
    fn response(&self) -> Response {
        let (state, iterations, message) = match self {
            JobProgress::Queued => (0, 0, String::new()),
            JobProgress::Running { iterations } => (1, *iterations, String::new()),
            JobProgress::Done { iterations, .. } => (2, *iterations, String::new()),
            JobProgress::Failed(m) => (3, 0, m.clone()),
            JobProgress::Cancelled => (4, 0, String::new()),
        };
        Response::JobState {
            state,
            iterations,
            message,
        }
    }
}

/// One registered job: owned by the session that submitted it, driven
/// by a background worker thread, cancellable from any connection.
struct JobHandle {
    id: u64,
    /// Session token of the submitter. Jobs still active when their
    /// session *expires* (disconnected past the grace period) are
    /// cancelled — a briefly-dropped client that reconnects in time
    /// keeps its job. Jobs recovered from the durable registry at boot
    /// carry owner `0`, which no live session token can equal (tokens
    /// are odd), so the expiry sweeper never cancels them.
    owner: u64,
    /// Cooperative cancel flag, checked by the training callback after
    /// every boosting iteration.
    cancel: AtomicBool,
    progress: Mutex<JobProgress>,
    /// The submitted spec, kept so the registry can persist it and a
    /// restarted server can resume the job.
    spec: JobSpec,
    /// Latest persisted training checkpoint: the partial forest after
    /// the most recent completed iteration. Cleared when the job goes
    /// `Done` (the compiled scorer is the durable artifact from then on).
    forest: Mutex<Vec<Tree>>,
}

fn cancel_job(job: &JobHandle) {
    job.cancel.store(true, Ordering::Relaxed);
    let mut p = job.progress.lock();
    if matches!(*p, JobProgress::Queued) {
        // Not picked up by its worker yet: terminal immediately.
        *p = JobProgress::Cancelled;
    }
}

struct ServeState {
    db: Database,
    opts: ServeOptions,
    requests: AtomicU64,
    shutdown: AtomicBool,
    /// Clones of the live sockets (keyed by connection id), so `kill`
    /// can yank connections out from under their threads. Entries leave
    /// when their connection ends — a long-running server does not
    /// accumulate dead fds.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
    /// The job registry: id → handle. Terminal jobs stay registered so
    /// late polls answer their final state.
    jobs: Mutex<HashMap<u64, Arc<JobHandle>>>,
    next_job: AtomicU64,
    /// Admission control: at most this many jobs queued + running.
    max_jobs: usize,
    /// Admission control: per-session cap on bytes bulk-loaded via
    /// `CreateTable` (`None` = unlimited).
    session_budget: Option<u64>,
    /// How long a disconnected session's state survives before the
    /// sweeper reclaims it (cancels its jobs, drops its temp tables).
    grace: Duration,
    /// Resumable sessions, keyed by the client's resume token.
    sessions: Mutex<HashMap<u64, Arc<SessionState>>>,
    /// One-shot latch for [`ServeOptions::flaky_after`].
    flaky_fired: AtomicBool,
    /// Loaded message-table dictionaries, keyed by fact table name.
    /// A write invalidates only the entries whose relations it touches.
    scorer_cache: Mutex<HashMap<String, CachedScorer>>,
    /// Cache-miss loads performed (tests assert on invalidation
    /// granularity through this).
    scorer_loads: AtomicU64,
    /// Does the hosted engine persist tables across restarts? When true,
    /// the job registry is mirrored into the WAL-logged `jb_sys_jobs`
    /// table on every transition and training checkpoint.
    durable: bool,
    /// Persist a Running job's partial forest every this many iterations.
    job_checkpoint_iters: u64,
    /// Boosting iterations trained across all jobs (drives
    /// [`ServeOptions::crash_after_iters`]).
    train_iters: AtomicU64,
    /// Byte budget across all sessions' cached replay responses.
    replay_budget: u64,
    /// Current total bytes held in sessions' replay caches.
    replay_bytes: AtomicU64,
    /// Replay-cache entries evicted under the budget (tests assert the
    /// bound bites through this).
    replay_evictions: AtomicU64,
}

/// A cached scorer dictionary plus the relations it was built from (the
/// invalidation footprint).
struct CachedScorer {
    index: Arc<MessageIndex>,
    tables: Vec<String>,
}

impl ServeState {
    fn new(
        db: Database,
        opts: ServeOptions,
        max_jobs: usize,
        session_budget: Option<u64>,
        grace: Duration,
        job_checkpoint_iters: u64,
        replay_budget: u64,
    ) -> ServeState {
        let durable = db.config().storage_path.is_some();
        ServeState {
            db,
            opts,
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            max_jobs,
            session_budget,
            grace,
            sessions: Mutex::new(HashMap::new()),
            flaky_fired: AtomicBool::new(false),
            scorer_cache: Mutex::new(HashMap::new()),
            scorer_loads: AtomicU64::new(0),
            durable,
            job_checkpoint_iters: job_checkpoint_iters.max(1),
            train_iters: AtomicU64::new(0),
            replay_budget,
            replay_bytes: AtomicU64::new(0),
            replay_evictions: AtomicU64::new(0),
        }
    }

    /// Has the fault-injection threshold been crossed (or `kill` called)?
    fn failed(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
            || self
                .opts
                .fail_after
                .is_some_and(|n| self.requests.load(Ordering::Relaxed) >= n)
    }

    /// The message-table dictionary for `spec`, loaded once and cached.
    fn scorer_index(&self, spec: &ScorerSpec) -> BackendResult<Arc<MessageIndex>> {
        if let Some(c) = self.scorer_cache.lock().get(&spec.fact_table) {
            return Ok(Arc::clone(&c.index));
        }
        let idx = Arc::new(MessageIndex::load(spec, &mut |n| self.db.snapshot(n))?);
        self.scorer_loads.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.scorer_cache.lock();
        if cache.len() >= 8 {
            cache.clear();
        }
        cache.insert(
            spec.fact_table.clone(),
            CachedScorer {
                index: Arc::clone(&idx),
                tables: spec.tables().iter().map(|s| s.to_string()).collect(),
            },
        );
        Ok(idx)
    }

    /// Evict cached scorer dictionaries whose relations `write` touched —
    /// or everything, when the statement could not be classified.
    fn invalidate_scorers(&self, write: &SqlWrite) {
        let mut cache = self.scorer_cache.lock();
        match write {
            SqlWrite::ReadOnly => {}
            SqlWrite::Unknown => cache.clear(),
            SqlWrite::Create(t) | SqlWrite::Update(t) | SqlWrite::Drop(t) => {
                cache.retain(|_, c| !c.tables.iter().any(|x| x == t));
            }
            SqlWrite::Swap(a, b) => {
                cache.retain(|_, c| !c.tables.iter().any(|x| x == a || x == b));
            }
        }
    }

    /// Look up (or create) the session for `token` and bind it to the
    /// connection `conn_id`. A reconnecting client re-presents its token
    /// and gets its surviving state back; the generation guard makes a
    /// late detach from the *previous* connection's thread a no-op.
    fn attach_session(&self, token: u64, conn_id: u64) -> Arc<SessionState> {
        let sess = Arc::clone(
            self.sessions
                .lock()
                .entry(token)
                .or_insert_with(|| Arc::new(SessionState::new(token))),
        );
        let mut inner = sess.inner.lock();
        inner.conn_gen = Some(conn_id);
        inner.detached_at = None;
        drop(inner);
        sess
    }
}

/// A resumable session: split-protocol handles, the load budget, the
/// session's temp tables, and the idempotent-replay cache. Keyed by the
/// client's resume token, a session survives connection drops for the
/// server's grace period — only the expiry sweeper reclaims it.
struct SessionState {
    token: u64,
    inner: Mutex<SessionInner>,
}

struct SessionInner {
    splits: HashMap<u64, LocalSplitState>,
    next_split: u64,
    /// Bytes bulk-loaded via `CreateTable` in this session (frame
    /// sizes, the number the wire actually carried).
    bytes_loaded: u64,
    /// Highest sequence number applied so far (client seqs start at 1).
    /// Diagnostics only under multiplexing: a pipelined client's frames
    /// may arrive out of seq order, so replay decisions key off the
    /// window and the acked floor, never off this maximum.
    last_applied: u64,
    /// The replay window: per applied-but-unacknowledged seq, the
    /// encoded reply (`Some`), replayed verbatim when a reconnecting
    /// client re-issues a request whose reply was lost — or `None` when
    /// the cached bytes fell to the replay byte budget, in which case
    /// the replay gets a typed error instead of re-execution
    /// (exactly-once is preserved; at-least-once is not silently
    /// substituted). A v4 client acks its lowest in-flight seq on every
    /// request, releasing older entries; a v3 client keeps at most one
    /// entry (the pre-multiplexing single slot, pruned below each
    /// applied seq).
    responses: std::collections::BTreeMap<u64, Option<Vec<u8>>>,
    /// Every seq below this has been acknowledged (v4) or superseded
    /// (v3): it can never be legitimately replayed, so a request below
    /// the floor that misses the window is answered with a typed
    /// stale-sequence error. A fresh seq at or above the floor executes
    /// regardless of arrival order.
    acked_floor: u64,
    /// `jb_`-prefixed (non-`jb_job`) tables this session created over the
    /// wire and has not dropped: reclaimed when the session expires.
    temp_tables: HashSet<String>,
    /// Connection currently bound to this session (`None` = detached).
    conn_gen: Option<u64>,
    /// When the session detached; the sweeper reclaims it `grace` later.
    detached_at: Option<Instant>,
}

impl SessionState {
    fn new(token: u64) -> SessionState {
        SessionState {
            token,
            inner: Mutex::new(SessionInner {
                splits: HashMap::new(),
                next_split: 0,
                bytes_loaded: 0,
                last_applied: 0,
                responses: std::collections::BTreeMap::new(),
                acked_floor: 0,
                temp_tables: HashSet::new(),
                conn_gen: None,
                detached_at: None,
            }),
        }
    }
}

/// What a SQL statement writes, extracted from its head tokens. The
/// emitter's canonical prints (and reasonable hand-written SQL) all
/// classify; anything else is `Unknown` and treated as touching
/// everything.
enum SqlWrite {
    ReadOnly,
    Create(String),
    Update(String),
    Drop(String),
    Swap(String, String),
    Unknown,
}

/// Lower-cased identifier at the head of `tok` (trailing punctuation such
/// as `(` or `;` stripped).
fn ident_of(tok: &str) -> String {
    tok.trim_end_matches(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .to_ascii_lowercase()
}

fn classify_write(sql: &str) -> SqlWrite {
    let mut toks = sql.split_whitespace();
    let eq = |a: &str, b: &str| a.eq_ignore_ascii_case(b);
    let Some(head) = toks.next() else {
        return SqlWrite::Unknown;
    };
    if eq(head, "SELECT") {
        return SqlWrite::ReadOnly;
    }
    if eq(head, "UPDATE") {
        return toks
            .next()
            .map_or(SqlWrite::Unknown, |t| SqlWrite::Update(ident_of(t)));
    }
    if eq(head, "CREATE") {
        // CREATE [OR REPLACE] TABLE <name> AS …
        let mut next = toks.next();
        if next.is_some_and(|t| eq(t, "OR")) {
            toks.next(); // REPLACE
            next = toks.next();
        }
        if next.is_some_and(|t| eq(t, "TABLE")) {
            return toks
                .next()
                .map_or(SqlWrite::Unknown, |t| SqlWrite::Create(ident_of(t)));
        }
        return SqlWrite::Unknown;
    }
    if eq(head, "DROP") {
        // DROP TABLE [IF EXISTS] <name>
        if toks.next().is_some_and(|t| eq(t, "TABLE")) {
            let mut next = toks.next();
            if next.is_some_and(|t| eq(t, "IF")) {
                toks.next(); // EXISTS
                next = toks.next();
            }
            return next.map_or(SqlWrite::Unknown, |t| SqlWrite::Drop(ident_of(t)));
        }
        return SqlWrite::Unknown;
    }
    if eq(head, "SWAP") {
        // SWAP COLUMN a.x WITH b.y
        if toks.next().is_some_and(|t| eq(t, "COLUMN")) {
            let table_of = |t: Option<&str>| t.and_then(|t| t.split('.').next()).map(ident_of);
            let a = table_of(toks.next());
            toks.next(); // WITH
            let b = table_of(toks.next());
            if let (Some(a), Some(b)) = (a, b) {
                return SqlWrite::Swap(a, b);
            }
        }
        return SqlWrite::Unknown;
    }
    SqlWrite::Unknown
}

/// Session temp tables the expiry sweeper may reclaim: the `jb_` working
/// prefix, but never the `jb_job<id>_` message tables, which belong to
/// the job registry, not to any one session.
fn is_session_temp(name: &str) -> bool {
    name.starts_with("jb_") && !name.starts_with("jb_job")
}

impl SessionInner {
    /// Record the effect of a *successful* write on this session's
    /// temp-table set.
    fn note_write(&mut self, write: &SqlWrite) {
        match write {
            SqlWrite::Create(t) if is_session_temp(t) => {
                self.temp_tables.insert(t.clone());
            }
            SqlWrite::Drop(t) => {
                self.temp_tables.remove(t);
            }
            _ => {}
        }
    }
}

/// Execute the absorbed query and build the shard-side split state, or
/// the ready-made fallback/error response. `Err(Response::Table)` is the
/// dense fallback (NULL components); other `Err`s are typed errors.
fn open_split_state(
    db: &Database,
    sql: String,
    key_col: u32,
    c0_col: u32,
    c1_col: u32,
    specs: Vec<u8>,
) -> Result<LocalSplitState, Response> {
    let specs: Option<Vec<MergeSpec>> = specs.iter().map(|&t| MergeSpec::from_tag(t)).collect();
    let Some(specs) = specs else {
        return Err(Response::Err(EngineError::Other(
            "bad merge-spec tag".into(),
        )));
    };
    let table = match db.execute(&sql) {
        Ok(t) => t,
        Err(e) => return Err(Response::Err(e)),
    };
    if [key_col, c0_col, c1_col]
        .iter()
        .any(|&c| c as usize >= table.num_columns())
        || specs.len() != table.num_columns()
    {
        return Err(Response::Err(EngineError::Other(
            "split spec does not match the absorbed result".into(),
        )));
    }
    let spec = SplitSpec {
        key_col: key_col as usize,
        c0_col: c0_col as usize,
        c1_col: c1_col as usize,
        specs,
    };
    // Protocol inapplicable (NULL components): hand the absorbed result
    // back so the client's dense fallback needs no second execution.
    LocalSplitState::build(table, spec).map_err(Response::Table)
}

/// Handle one `Split*` request against the connection's session.
fn handle_split_request(db: &Database, session: &mut SessionInner, req: Request) -> Response {
    match req {
        Request::SplitOpen {
            sql,
            key_col,
            c0_col,
            c1_col,
            specs,
        } => match open_split_state(db, sql, key_col, c0_col, c1_col, specs) {
            Err(resp) => resp,
            Ok(state) => {
                let rows = state.num_rows() as u64;
                let id = session.next_split;
                session.next_split += 1;
                session.splits.insert(id, state);
                Response::SplitOpened(id, rows)
            }
        },
        Request::SplitOpenBounds {
            sql,
            key_col,
            c0_col,
            c1_col,
            specs,
            k,
        } => match open_split_state(db, sql, key_col, c0_col, c1_col, specs) {
            Err(resp) => resp,
            Ok(state) => {
                let rows = state.num_rows() as u64;
                let bounds = match state.boundaries(k as usize) {
                    Ok(keys) => keys_to_table(&keys),
                    Err(e) => return Response::Err(e),
                };
                let id = session.next_split;
                session.next_split += 1;
                session.splits.insert(id, state);
                Response::SplitOpenedBounds { id, rows, bounds }
            }
        },
        Request::SplitClose { id } => {
            session.splits.remove(&id);
            Response::Unit
        }
        Request::SplitBoundaries { id, .. }
        | Request::SplitSummaries { id, .. }
        | Request::SplitSummariesDelta { id, .. }
        | Request::SplitRefine { id, .. }
        | Request::SplitFetch { id, .. } => {
            let Some(state) = session.splits.get(&id) else {
                return Response::Err(EngineError::Other(format!("unknown split handle {id}")));
            };
            let result = match req {
                Request::SplitBoundaries { k, .. } => state
                    .boundaries(k as usize)
                    .map(|keys| Response::Table(keys_to_table(&keys))),
                Request::SplitSummaries { grid, .. } => state
                    .summaries(&keys_from_table(&grid))
                    .map(|s| Response::Table(summaries_to_table(&s))),
                Request::SplitSummariesDelta { grid, changed, .. } => {
                    let grid = keys_from_table(&grid);
                    if changed.iter().any(|&j| j as usize >= grid.len()) {
                        return Response::Err(EngineError::Other(
                            "delta interval out of grid range".into(),
                        ));
                    }
                    let changed: Vec<usize> = changed.iter().map(|&j| j as usize).collect();
                    state
                        .summaries_delta(&grid, &changed)
                        .map(|s| Response::Table(summaries_to_table(&s)))
                }
                Request::SplitRefine { grid, targets, .. } => {
                    let targets: Vec<(usize, usize)> = targets
                        .iter()
                        .map(|&(j, per)| (j as usize, per as usize))
                        .collect();
                    let grid = keys_from_table(&grid);
                    if targets.iter().any(|&(j, _)| j >= grid.len()) {
                        return Response::Err(EngineError::Other(
                            "refine interval out of grid range".into(),
                        ));
                    }
                    state
                        .refine(&grid, &targets)
                        .map(|keys| Response::Table(keys_to_table(&keys)))
                }
                Request::SplitFetch { grid, retain, .. } => {
                    let grid = keys_from_table(&grid);
                    if retain.len() != grid.len() {
                        return Response::Err(EngineError::Other(
                            "retain mask does not match the grid".into(),
                        ));
                    }
                    state.fetch(&grid, &retain).map(Response::Table)
                }
                _ => unreachable!("outer match covers the split requests"),
            };
            result.unwrap_or_else(Response::Err)
        }
        _ => unreachable!("caller routes only split requests here"),
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// The WAL-logged system table mirroring the job registry on durable
/// engines. Rewritten as one `create_or_replace_table` call — a single
/// WAL statement, so no crash window can lose the whole table — on every
/// job state transition and every training checkpoint. Column layout:
/// `id`/`state`/`iters` (Int), `message` (Str), and the `spec`/`scorer`/
/// `forest` blobs hex-encoded into Str columns (wire codecs, floats by
/// bit pattern).
const JOB_REGISTRY_TABLE: &str = "jb_sys_jobs";

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.as_bytes().chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

/// `jb_job<id>_…` message-table name → the owning job id.
fn job_table_id(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("jb_job")?;
    let (id, _) = rest.split_once('_')?;
    id.parse().ok()
}

/// Mirror the live job registry into [`JOB_REGISTRY_TABLE`]. A no-op on
/// non-durable engines. Write failures are swallowed: the previous
/// registry image stays in place, and recovery simply resumes from that
/// older checkpoint.
fn persist_jobs(state: &ServeState) {
    if !state.durable {
        return;
    }
    let handles: Vec<Arc<JobHandle>> = {
        let jobs = state.jobs.lock();
        let mut v: Vec<_> = jobs.values().cloned().collect();
        v.sort_by_key(|j| j.id);
        v
    };
    let n = handles.len();
    let (mut ids, mut states, mut iters) = (
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    );
    let (mut messages, mut specs, mut scorers, mut forests) = (
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
        Vec::with_capacity(n),
    );
    for job in handles {
        let (tag, it, msg, scorer) = {
            let p = job.progress.lock();
            match &*p {
                JobProgress::Queued => (0i64, 0i64, String::new(), String::new()),
                JobProgress::Running { iterations } => {
                    (1, *iterations as i64, String::new(), String::new())
                }
                JobProgress::Done { iterations, spec } => (
                    2,
                    *iterations as i64,
                    String::new(),
                    spec.as_ref()
                        .map_or_else(String::new, |s| to_hex(&scorer_spec_bytes(s))),
                ),
                JobProgress::Failed(m) => (3, 0, m.clone(), String::new()),
                JobProgress::Cancelled => (4, 0, String::new(), String::new()),
            }
        };
        ids.push(job.id as i64);
        states.push(tag);
        iters.push(it);
        messages.push(msg);
        specs.push(to_hex(&job_spec_bytes(&job.spec)));
        scorers.push(scorer);
        forests.push(to_hex(&forest_bytes(&job.forest.lock())));
    }
    let table = Table::from_columns(vec![
        ("id", Column::int(ids)),
        ("state", Column::int(states)),
        ("iters", Column::int(iters)),
        ("message", Column::str(messages)),
        ("spec", Column::str(specs)),
        ("scorer", Column::str(scorers)),
        ("forest", Column::str(forests)),
    ]);
    let _ = state.db.create_or_replace_table(JOB_REGISTRY_TABLE, table);
}

/// One registry row brought back to life at boot. `resume` marks jobs
/// that were `Queued`/`Running` when the previous process died: the
/// server re-queues them and a worker picks their training back up from
/// the persisted forest checkpoint.
struct RecoveredJob {
    handle: Arc<JobHandle>,
    resume: bool,
}

/// Decode [`JOB_REGISTRY_TABLE`] into live job handles. Terminal jobs
/// come back with their final state (a `Done` job's compiled scorer
/// included, so `PredictBatch { job }` keeps answering after a restart);
/// active jobs come back `Queued` with their partial forest. Rows that
/// fail to decode surface as `Failed` jobs rather than vanishing.
fn recover_jobs(db: &Database) -> Vec<RecoveredJob> {
    if !db.has_table(JOB_REGISTRY_TABLE) {
        return Vec::new();
    }
    let Ok(t) = db.snapshot(JOB_REGISTRY_TABLE) else {
        return Vec::new();
    };
    let int_col = |name: &str| {
        t.column(None, name)
            .ok()
            .and_then(|c| c.as_i64_slice())
            .map(<[i64]>::to_vec)
    };
    let str_at = |name: &str, row: usize| {
        t.column(None, name)
            .ok()
            .map_or_else(String::new, |c| match c.get(row) {
                Datum::Str(s) => s,
                _ => String::new(),
            })
    };
    let (Some(ids), Some(tags), Some(iter_counts)) =
        (int_col("id"), int_col("state"), int_col("iters"))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for row in 0..t.num_rows() {
        let iterations = iter_counts[row].max(0) as u64;
        let spec = from_hex(&str_at("spec", row)).and_then(|b| job_spec_from_bytes(&b).ok());
        let scorer = from_hex(&str_at("scorer", row)).and_then(|b| scorer_spec_from_bytes(&b).ok());
        let forest = from_hex(&str_at("forest", row))
            .and_then(|b| forest_from_bytes(&b).ok())
            .unwrap_or_default();
        let (progress, resume, spec) = match spec {
            None => (
                JobProgress::Failed("registry entry could not be decoded after restart".into()),
                false,
                JobSpec::default(),
            ),
            Some(spec) => {
                let p = match tags[row] {
                    0 | 1 => JobProgress::Queued,
                    2 => JobProgress::Done {
                        iterations,
                        spec: scorer,
                    },
                    3 => JobProgress::Failed(str_at("message", row)),
                    _ => JobProgress::Cancelled,
                };
                (p, matches!(tags[row], 0 | 1), spec)
            }
        };
        out.push(RecoveredJob {
            resume,
            handle: Arc::new(JobHandle {
                id: ids[row].max(0) as u64,
                owner: 0,
                cancel: AtomicBool::new(false),
                progress: Mutex::new(progress),
                spec,
                forest: Mutex::new(forest),
            }),
        });
    }
    out
}

/// Admit (or reject) a job submission, register it, and hand it to a
/// worker thread. `owner` is the submitting session's resume token.
fn submit_job(state: &Arc<ServeState>, owner: u64, spec: JobSpec) -> Response {
    {
        let jobs = state.jobs.lock();
        let active = jobs
            .values()
            .filter(|j| j.progress.lock().is_active())
            .count();
        if active >= state.max_jobs {
            // Typed backpressure on a healthy connection — the client
            // retries later instead of timing out against a hang.
            return Response::Busy(format!(
                "{active} training jobs already queued or running (limit {})",
                state.max_jobs
            ));
        }
    }
    let id = state.next_job.fetch_add(1, Ordering::Relaxed);
    let handle = Arc::new(JobHandle {
        id,
        owner,
        cancel: AtomicBool::new(false),
        progress: Mutex::new(JobProgress::Queued),
        spec,
        forest: Mutex::new(Vec::new()),
    });
    state.jobs.lock().insert(id, Arc::clone(&handle));
    // The submission is durable before any work happens: a crash from
    // here on resumes the job instead of forgetting it.
    persist_jobs(state);
    let st = Arc::clone(state);
    std::thread::spawn(move || run_job(&st, &handle));
    Response::JobSubmitted(id)
}

/// Worker-thread body: drive one job from `Queued` to a terminal state.
/// Also the resume path: a recovered job enters with a non-empty forest
/// checkpoint and training replays it before growing new trees.
fn run_job(state: &Arc<ServeState>, handle: &Arc<JobHandle>) {
    if handle.cancel.load(Ordering::Relaxed) {
        *handle.progress.lock() = JobProgress::Cancelled;
        persist_jobs(state);
        return;
    }
    *handle.progress.lock() = JobProgress::Running {
        iterations: handle.forest.lock().len() as u64,
    };
    persist_jobs(state);
    let outcome = train_job(state, handle);
    {
        let mut p = handle.progress.lock();
        *p = match outcome {
            Err(msg) => JobProgress::Failed(msg),
            Ok(compiled) => {
                let iterations = match *p {
                    JobProgress::Running { iterations } => iterations,
                    _ => 0,
                };
                if handle.cancel.load(Ordering::Relaxed) {
                    // The training loop broke early; the dataset guard has
                    // already dropped every `jb_` temp table it created.
                    JobProgress::Cancelled
                } else {
                    JobProgress::Done {
                        iterations,
                        spec: compiled,
                    }
                }
            }
        };
    }
    if matches!(&*handle.progress.lock(), JobProgress::Done { .. }) {
        // The compiled scorer is the durable artifact now; dropping the
        // forest checkpoint keeps the registry row small.
        handle.forest.lock().clear();
    }
    persist_jobs(state);
}

/// Train the job's model and, when a `key_column` was named, compile it
/// into `jb_job{id}_`-prefixed message tables that outlive training.
///
/// Training always goes through [`train_gbm_resume`] with the handle's
/// forest checkpoint as the prior: empty for a fresh submission (where
/// it is exactly `train_gbm_cb`), non-empty after a crash — the stored
/// trees are replayed statement-for-statement, so the finished model is
/// `to_bits()`-identical to an uncrashed run (see `DESIGN.md`
/// § "Durability & recovery").
fn train_job(
    state: &Arc<ServeState>,
    handle: &Arc<JobHandle>,
) -> Result<Option<ScorerSpec>, String> {
    let err = |e: EngineError| e.to_string();
    let spec = &handle.spec;
    let mut graph = JoinGraph::new();
    for (name, features) in &spec.relations {
        let refs: Vec<&str> = features.iter().map(String::as_str).collect();
        graph.add_relation(name, &refs).map_err(|e| e.to_string())?;
    }
    for (a, b, keys) in &spec.edges {
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        graph.add_edge(a, b, &refs).map_err(|e| e.to_string())?;
    }
    let set = Dataset::new(&state.db, graph, &spec.target_relation, &spec.target_column)
        .map_err(|e| e.to_string())?;
    let params = TrainParams {
        num_iterations: spec.num_iterations as usize,
        num_leaves: spec.num_leaves as usize,
        learning_rate: spec.learning_rate,
        leaf_quantization: spec.leaf_quantization,
        seed: spec.seed,
        ..TrainParams::default()
    };
    let mut prior = handle.forest.lock().clone();
    // A crash can land between the final iteration's checkpoint and the
    // Done transition; the replay prior is never longer than the target.
    prior.truncate(params.num_iterations);
    let checkpoint_every = state.job_checkpoint_iters;
    let model = train_gbm_resume(&set, &params, &prior, |iter, m| {
        let iterations = iter as u64 + 1;
        *handle.progress.lock() = JobProgress::Running { iterations };
        *handle.forest.lock() = m.trees.clone();
        if iterations % checkpoint_every == 0 {
            persist_jobs(state);
        }
        // Fault injection: die mid-training with no warning — after the
        // checkpoint above, so the restart test resumes from iteration n.
        let trained = state.train_iters.fetch_add(1, Ordering::Relaxed) + 1;
        if state.opts.crash_after_iters.is_some_and(|n| trained >= n) {
            std::process::abort();
        }
        !handle.cancel.load(Ordering::Relaxed)
    })
    .map_err(|e| e.to_string())?;
    if handle.cancel.load(Ordering::Relaxed) {
        return Ok(None);
    }
    match &spec.key_column {
        None => Ok(None),
        Some(key) => {
            // Not dataset temps: the `jb_job{id}_` tables must survive
            // the dataset guard so `PredictBatch { job }` can score.
            let mut n = 0u32;
            let prefix = format!("jb_job{}", handle.id);
            let compiled = compile_messages(&state.db, &set.graph, &model, key, &mut |hint| {
                let name = format!("{prefix}_{hint}_{n}");
                n += 1;
                name
            })
            .map_err(err)?;
            Ok(Some(compiled))
        }
    }
}

/// Serve one `PredictBatch` request: resolve the scorer spec (from a
/// finished job or inline), evaluate against the cached message-table
/// dictionary.
fn predict_batch_response(
    state: &ServeState,
    job: Option<u64>,
    spec: Option<Box<ScorerSpec>>,
    keys: &[i64],
    partial: bool,
) -> Response {
    let fail = |m: String| Response::Err(EngineError::Other(m));
    let spec: ScorerSpec = match (job, spec) {
        (Some(id), None) => {
            let handle = state.jobs.lock().get(&id).cloned();
            let Some(handle) = handle else {
                return fail(format!("unknown job id {id}"));
            };
            let p = handle.progress.lock();
            match &*p {
                JobProgress::Done { spec: Some(s), .. } => s.clone(),
                JobProgress::Done { spec: None, .. } => {
                    return fail(format!(
                        "job {id} trained without a key_column; no message tables to score"
                    ))
                }
                JobProgress::Queued => return fail(format!("job {id} is still queued")),
                JobProgress::Running { .. } => return fail(format!("job {id} is still running")),
                JobProgress::Failed(m) => return fail(format!("job {id} failed: {m}")),
                JobProgress::Cancelled => return fail(format!("job {id} was cancelled")),
            }
        }
        (None, Some(s)) => *s,
        _ => return fail("PredictBatch requires exactly one of job id or scorer spec".into()),
    };
    let idx = match state.scorer_index(&spec) {
        Ok(i) => i,
        Err(e) => return Response::Err(e),
    };
    // Partial mode: shard-resident scoring starts from 0 so the
    // coordinator adds `init_score` exactly once per key.
    let start = if partial { 0.0 } else { spec.init_score };
    match idx.eval_batch(keys, start) {
        Ok(rs) => Response::Scores {
            found: rs.iter().map(|r| r.0).collect(),
            scores: rs.iter().map(|r| r.1).collect(),
        },
        Err(e) => Response::Err(e),
    }
}

/// Execute one decoded request against the hosted engine. `token` is the
/// session's resume token (the owner of any job submitted here).
fn handle_request(
    state: &Arc<ServeState>,
    token: u64,
    session: &mut SessionInner,
    req: Request,
) -> Response {
    let db = &state.db;
    let table = |r: Result<Table, EngineError>| match r {
        Ok(t) => Response::Table(t),
        Err(e) => Response::Err(e),
    };
    match req {
        Request::Hello { .. } => {
            // The connection loop answers the handshake before a session
            // exists; a second Hello is a protocol violation.
            Response::Err(EngineError::Other("Hello after handshake".into()))
        }
        Request::Execute { sql } => {
            // A mutating statement may rewrite a message table: evict the
            // cached dictionaries whose relations it touches (everything,
            // when the statement defies classification).
            let write = classify_write(&sql);
            let r = db.execute(&sql);
            if r.is_ok() {
                state.invalidate_scorers(&write);
                session.note_write(&write);
            }
            table(r)
        }
        Request::CreateTable { name, table: t } => match db.create_table(&name, t) {
            Ok(()) => {
                let write = SqlWrite::Create(name.to_ascii_lowercase());
                state.invalidate_scorers(&write);
                session.note_write(&write);
                Response::Unit
            }
            Err(e) => Response::Err(e),
        },
        Request::Snapshot { name } => table(db.snapshot(&name)),
        Request::ColumnNames { name } => match db.column_names(&name) {
            Ok(names) => Response::Names(names),
            Err(e) => Response::Err(e),
        },
        Request::ColumnDtype { table, column } => match db.column_dtype(&table, &column) {
            Ok(d) => Response::Dtype(d),
            Err(e) => Response::Err(e),
        },
        Request::HasTable { name } => Response::Bool(db.has_table(&name)),
        Request::RowCount { name } => match db.row_count(&name) {
            Ok(n) => Response::Count(n as u64),
            Err(e) => Response::Err(e),
        },
        // Tolerant drop and bounds-checked gather share the in-process
        // transport's implementation — one copy of the semantics for
        // local and remote shards.
        Request::DropTableIfExists { name } => match ShardTransport::drop_table(db, &name) {
            Ok(()) => {
                let write = SqlWrite::Drop(name.to_ascii_lowercase());
                state.invalidate_scorers(&write);
                session.note_write(&write);
                Response::Unit
            }
            Err(e) => Response::Err(e),
        },
        Request::GatherRows { name, rows } => table(ShardTransport::gather_rows(db, &name, &rows)),
        Request::TableNames => Response::Names(db.table_names()),
        Request::SubmitJob { spec } => submit_job(state, token, *spec),
        Request::PollJob { id } => match state.jobs.lock().get(&id) {
            Some(job) => job.progress.lock().response(),
            None => Response::Err(EngineError::Other(format!("unknown job id {id}"))),
        },
        Request::CancelJob { id } => {
            let job = state.jobs.lock().get(&id).cloned();
            match job {
                Some(job) => {
                    // Idempotent: cancelling a terminal job just reports
                    // its (unchanged) final state.
                    cancel_job(&job);
                    let resp = job.progress.lock().response();
                    persist_jobs(state);
                    resp
                }
                None => Response::Err(EngineError::Other(format!("unknown job id {id}"))),
            }
        }
        Request::PredictBatch {
            job,
            spec,
            keys,
            partial,
        } => predict_batch_response(state, job, spec, &keys, partial),
        Request::SplitOpen { .. }
        | Request::SplitOpenBounds { .. }
        | Request::SplitBoundaries { .. }
        | Request::SplitSummaries { .. }
        | Request::SplitSummariesDelta { .. }
        | Request::SplitRefine { .. }
        | Request::SplitFetch { .. }
        | Request::SplitClose { .. } => {
            // The connection loop routes these to the session-aware
            // handler first; reaching here is a protocol bug.
            Response::Err(EngineError::Other("split request outside a session".into()))
        }
    }
}

/// One connection's request loop. Ends on EOF, I/O error, or fault
/// injection. On exit the session is *detached*, not destroyed: its
/// state (split handles, temp tables, jobs, replay cache) survives for
/// the server's grace period so a reconnecting client can resume; the
/// expiry sweeper reclaims sessions that stay gone.
fn serve_connection(state: &Arc<ServeState>, conn_id: u64, mut stream: TcpStream) {
    let mut session: Option<Arc<SessionState>> = None;
    serve_requests(state, conn_id, &mut session, &mut stream);
    if let Some(sess) = session {
        let mut inner = sess.inner.lock();
        // Generation guard: if the client already reconnected (a newer
        // connection holds the session), this late detach is a no-op.
        if inner.conn_gen == Some(conn_id) {
            inner.conn_gen = None;
            inner.detached_at = Some(Instant::now());
        }
    }
}

/// Answer one enveloped request frame (`[u64 seq][request]` for v3,
/// `[u64 seq][u64 ack][request]` for v4) against the session, consulting
/// the replay window first. Returns the encoded response frame — with
/// its own `[u64 seq]` envelope when the connection negotiated v4 — and
/// the caller writes it (or drops it, under fault injection).
fn enveloped_response(
    state: &Arc<ServeState>,
    sess: &Arc<SessionState>,
    seq: u64,
    ack: u64,
    v4: bool,
    body: &[u8],
) -> Vec<u8> {
    // Response envelope: a v4 client matches replies to in-flight
    // requests by seq; a v3 client gets bare responses as before.
    let envelope = |bytes: Vec<u8>| -> Vec<u8> {
        if !v4 {
            return bytes;
        }
        let mut out = Vec::with_capacity(bytes.len() + 8);
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&bytes);
        out
    };
    let mut inner = sess.inner.lock();
    if seq != 0 {
        match inner.responses.get(&seq) {
            Some(Some(cached)) => {
                // The request was applied but its reply was lost in a
                // drop: replay the cached (already enveloped) bytes
                // without re-executing. This is what makes retrying
                // non-idempotent statements safe.
                return cached.clone();
            }
            Some(None) => {
                // The request was applied but its cached reply fell to
                // the replay byte budget. Re-executing could
                // double-apply a non-idempotent statement, so the
                // client gets a typed error instead.
                return envelope(encode_response(&Response::Err(EngineError::Other(
                    format!(
                        "replay of sequence {seq} unavailable: cached response evicted \
                     under the server's replay byte budget"
                    ),
                ))));
            }
            None if seq < inner.acked_floor => {
                // Below the floor the client has acknowledged (or, for
                // v3, below the last applied seq): it can never be a
                // legitimate replay.
                return envelope(encode_response(&Response::Err(EngineError::Other(
                    format!(
                        "stale sequence {seq}: session already applied {}",
                        inner.last_applied
                    ),
                ))));
            }
            // A fresh seq at or above the floor executes below. A
            // pipelined client's frames may arrive out of seq order,
            // so "greater than some applied seq" proves nothing.
            None => {}
        }
    }
    let resp = match decode_request(body) {
        Ok(
            req @ (Request::SplitOpen { .. }
            | Request::SplitOpenBounds { .. }
            | Request::SplitBoundaries { .. }
            | Request::SplitSummaries { .. }
            | Request::SplitSummariesDelta { .. }
            | Request::SplitRefine { .. }
            | Request::SplitFetch { .. }
            | Request::SplitClose { .. }),
        ) => handle_split_request(&state.db, &mut inner, req),
        Ok(req) => {
            // Per-session load budget: meter `CreateTable` by the
            // bytes the wire actually carried, and reject — typed,
            // on a live connection — the frame that would exceed it.
            let frame_len = body.len() as u64 + 8;
            let over_budget = matches!(req, Request::CreateTable { .. })
                && match state.session_budget {
                    None => {
                        inner.bytes_loaded = inner.bytes_loaded.saturating_add(frame_len);
                        false
                    }
                    Some(budget) => {
                        let would = inner.bytes_loaded.saturating_add(frame_len);
                        if would > budget {
                            true
                        } else {
                            inner.bytes_loaded = would;
                            false
                        }
                    }
                };
            if over_budget {
                Response::Busy(format!(
                    "session load budget exhausted: {} bytes loaded, frame of {frame_len} \
                     would exceed the {}-byte cap",
                    inner.bytes_loaded,
                    state.session_budget.unwrap_or(0)
                ))
            } else {
                handle_request(state, sess.token, &mut inner, req)
            }
        }
        Err(e) => Response::Err(e),
    };
    // A result too large for one frame becomes a *typed* error on a
    // live connection, not a silent hangup the client would read as
    // a crashed server.
    let mut out = encode_response(&resp);
    let env_len = if v4 { 8 } else { 0 };
    if out.len() + env_len > MAX_FRAME as usize {
        out = encode_response(&Response::Err(EngineError::Other(format!(
            "result frame of {} bytes exceeds the {MAX_FRAME}-byte wire limit; \
             transfer large tables in parts",
            out.len()
        ))));
    }
    let out = envelope(out);
    // Cache the (possibly substituted) encoded reply *before* it is
    // written: a connection drop between apply and reply then replays
    // byte-identically. The client's ack (its lowest in-flight seq; the
    // applied seq itself for v3, restoring the single slot) releases
    // window entries it can never replay again.
    if seq != 0 {
        inner.last_applied = inner.last_applied.max(seq);
        let floor = if v4 { ack.min(seq) } else { seq };
        inner.acked_floor = inner.acked_floor.max(floor);
        let keep = inner.acked_floor;
        let mut released = 0u64;
        while let Some(entry) = inner.responses.first_entry() {
            if *entry.key() >= keep {
                break;
            }
            released += entry.remove().map_or(0, |b| b.len()) as u64;
        }
        inner.responses.insert(seq, Some(out.clone()));
        drop(inner);
        state.replay_bytes.fetch_sub(released, Ordering::Relaxed);
        state
            .replay_bytes
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        enforce_replay_budget(state, sess.token);
    }
    out
}

/// Bring the total bytes held across sessions' replay caches back under
/// the budget by evicting *other* sessions' cached replies — never the
/// in-flight session's, whose entry is exactly the one a reconnect would
/// need next. A session whose reply alone exceeds the budget therefore
/// keeps it; the bound is enforced against accumulation across sessions.
fn enforce_replay_budget(state: &Arc<ServeState>, keep_token: u64) {
    if state.replay_bytes.load(Ordering::Relaxed) <= state.replay_budget {
        return;
    }
    let victims: Vec<Arc<SessionState>> = state.sessions.lock().values().cloned().collect();
    for sess in victims {
        if state.replay_bytes.load(Ordering::Relaxed) <= state.replay_budget {
            return;
        }
        if sess.token == keep_token {
            continue;
        }
        // `try_lock`: a session busy applying its own request is about to
        // overwrite its cache anyway; skipping it avoids any lock-order
        // deadlock between two sessions evicting each other.
        let Some(mut inner) = sess.inner.try_lock() else {
            continue;
        };
        let mut len = 0u64;
        for v in inner.responses.values_mut() {
            if let Some(bytes) = v.take() {
                len += bytes.len() as u64;
            }
        }
        if len == 0 {
            continue;
        }
        drop(inner);
        state.replay_bytes.fetch_sub(len, Ordering::Relaxed);
        state.replay_evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// Answer the handshake (the raw, un-enveloped first frame) and attach
/// the session on success. `wire_version` receives the negotiated
/// protocol version: the server speaks every version down to
/// [`MIN_VERSION`], so an old v3 client keeps its pre-multiplexing
/// framing (bare responses, single-slot replay) on this connection.
fn hello_response(
    state: &Arc<ServeState>,
    session: &mut Option<Arc<SessionState>>,
    conn_id: u64,
    payload: &[u8],
    wire_version: &mut u32,
) -> Response {
    match decode_request(payload) {
        Ok(Request::Hello {
            magic,
            version,
            token,
        }) => {
            if magic != MAGIC {
                Response::Err(EngineError::Other("bad protocol magic".into()))
            } else if !(MIN_VERSION..=VERSION).contains(&version) {
                Response::Err(EngineError::Other(format!(
                    "protocol version mismatch: client {version}, server {VERSION} \
                     (oldest supported {MIN_VERSION})"
                )))
            } else {
                *wire_version = version;
                *session = Some(state.attach_session(token, conn_id));
                Response::Caps {
                    column_swap: state.db.config().allow_swap,
                }
            }
        }
        Ok(_) => Response::Err(EngineError::Other(
            "expected Hello as the first request".into(),
        )),
        Err(e) => Response::Err(e),
    }
}

/// splitmix64 finalizer: the deterministic hash behind
/// [`ServeOptions::reply_jitter`].
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn serve_requests(
    state: &Arc<ServeState>,
    conn_id: u64,
    session: &mut Option<Arc<SessionState>>,
    stream: &mut TcpStream,
) {
    let mut wire_version = VERSION;
    loop {
        let payload = match read_frame(stream) {
            Ok(p) => p,
            Err(_) => return, // client went away (or kill() shut us down)
        };
        // Fault injection is checked *after* a request arrives — the
        // failure lands mid-round, between statements of a training run.
        let count = state.requests.fetch_add(1, Ordering::Relaxed) + 1;
        if state.failed() {
            if state.opts.stall {
                // Hung process: never answer, hold the socket until the
                // client's read timeout fires (or kill() closes us).
                loop {
                    std::thread::sleep(Duration::from_millis(50));
                    if state.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
            }
            // Killed process: drop the connection, client sees EOF.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        // Recovering fault: the n-th request is received and then thrown
        // away *before* execution — the retrying client's replay
        // re-executes it from scratch.
        if state
            .opts
            .drop_every
            .is_some_and(|n| n > 0 && count % n == 0)
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let out = match session {
            None => encode_response(&hello_response(
                state,
                session,
                conn_id,
                &payload,
                &mut wire_version,
            )),
            Some(sess) => {
                if payload.len() < 8 {
                    encode_response(&Response::Err(EngineError::Other(
                        "wire decode: request missing its sequence envelope".into(),
                    )))
                } else {
                    let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                    if wire_version >= 4 {
                        if payload.len() < 16 {
                            let mut out = seq.to_le_bytes().to_vec();
                            out.extend_from_slice(&encode_response(&Response::Err(
                                EngineError::Other(
                                    "wire decode: request missing its ack envelope".into(),
                                ),
                            )));
                            out
                        } else {
                            let ack =
                                u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
                            enveloped_response(state, sess, seq, ack, true, &payload[16..])
                        }
                    } else {
                        enveloped_response(state, sess, seq, 0, false, &payload[8..])
                    }
                }
            }
        };
        // Recovering fault (one-shot): request n was *applied*, but the
        // connection drops before the reply — the client's replay must be
        // served from the session's response cache, not re-executed.
        if state.opts.flaky_after.is_some_and(|n| count >= n)
            && !state.flaky_fired.swap(true, Ordering::Relaxed)
        {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        // Deterministic reply jitter: stagger completion order across
        // shards (per-request hash of the seed), never change results.
        if let Some((jseed, max_us)) = state.opts.reply_jitter {
            if max_us > 0 {
                std::thread::sleep(Duration::from_micros(splitmix64(jseed ^ count) % max_us));
            }
        }
        if write_frame(stream, &out).is_err() {
            return;
        }
    }
}

/// Background reclaimer: a session detached for longer than the grace
/// period is removed — its active jobs are cancelled, its split handles
/// freed, and the `jb_` temp tables it created over the wire dropped.
fn sweep_sessions(state: &Arc<ServeState>) {
    let now = Instant::now();
    let expired: Vec<Arc<SessionState>> = {
        let mut sessions = state.sessions.lock();
        let tokens: Vec<u64> = sessions
            .iter()
            .filter(|(_, s)| {
                let inner = s.inner.lock();
                inner.conn_gen.is_none()
                    && inner
                        .detached_at
                        .is_some_and(|t| now.duration_since(t) >= state.grace)
            })
            .map(|(&t, _)| t)
            .collect();
        tokens.iter().filter_map(|t| sessions.remove(t)).collect()
    };
    for sess in expired {
        let temps = {
            let mut inner = sess.inner.lock();
            inner.splits.clear();
            // The session's replay window dies with it: release its bytes
            // from the global budget.
            let cached: u64 = inner
                .responses
                .values()
                .map(|v| v.as_ref().map_or(0, |b| b.len() as u64))
                .sum();
            inner.responses.clear();
            state.replay_bytes.fetch_sub(cached, Ordering::Relaxed);
            std::mem::take(&mut inner.temp_tables)
        };
        for name in temps {
            let _ = ShardTransport::drop_table(&state.db, &name);
        }
        let owned: Vec<Arc<JobHandle>> = state
            .jobs
            .lock()
            .values()
            // Recovered jobs carry owner 0 and belong to no session; they
            // outlive every session expiry.
            .filter(|j| j.owner != 0 && j.owner == sess.token && j.progress.lock().is_active())
            .cloned()
            .collect();
        let cancelled = !owned.is_empty();
        for job in owned {
            cancel_job(&job);
        }
        if cancelled {
            persist_jobs(state);
        }
    }
}

/// Spawn the session-expiry sweeper; ticks every 25ms until shutdown.
fn spawn_sweeper(state: Arc<ServeState>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        while !state.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(25));
            sweep_sessions(&state);
        }
    })
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => return,
        };
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if state.failed() && !state.opts.stall {
            // Refuse service once failed: drop fresh connections too.
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().push((id, clone));
        }
        let st = Arc::clone(&state);
        std::thread::spawn(move || {
            serve_connection(&st, id, stream);
            st.conns.lock().retain(|(i, _)| *i != id);
        });
    }
}

/// Configures a [`WireServer`]: fault injection for the chaos tests, job
/// admission control, the per-session load budget, and the session
/// grace period.
///
/// ```no_run
/// # use joinboost::backend::WireServer;
/// # use joinboost_engine::Database;
/// let server = WireServer::builder(Database::in_memory())
///     .max_jobs(2)
///     .session_budget_bytes(64 << 20)
///     .spawn()
///     .unwrap();
/// ```
pub struct WireServerBuilder {
    db: Database,
    opts: ServeOptions,
    max_jobs: usize,
    session_budget: Option<u64>,
    grace: Duration,
    job_checkpoint_iters: u64,
    replay_budget: u64,
}

impl WireServerBuilder {
    /// Fault injection: fail (hang or drop, per [`Self::stall`]) after
    /// `n` requests.
    pub fn fail_after(mut self, n: u64) -> WireServerBuilder {
        self.opts.fail_after = Some(n);
        self
    }

    /// Fault injection mode: `true` hangs the connection when failed,
    /// `false` (default) drops it.
    pub fn stall(mut self, stall: bool) -> WireServerBuilder {
        self.opts.stall = stall;
        self
    }

    /// Recovering fault injection: drop every `n`-th received request's
    /// connection *before* executing it, then keep serving (see
    /// [`ServeOptions::drop_every`]).
    pub fn drop_every(mut self, n: u64) -> WireServerBuilder {
        self.opts.drop_every = Some(n);
        self
    }

    /// Recovering fault injection, one-shot: execute request `n` but drop
    /// its connection before replying, then serve normally (see
    /// [`ServeOptions::flaky_after`]).
    pub fn flaky_after(mut self, n: u64) -> WireServerBuilder {
        self.opts.flaky_after = Some(n);
        self
    }

    /// Fault injection: abort the whole process after `n` boosting
    /// iterations have trained (see [`ServeOptions::crash_after_iters`]).
    pub fn crash_after_iters(mut self, n: u64) -> WireServerBuilder {
        self.opts.crash_after_iters = Some(n);
        self
    }

    /// Persist a running job's partial forest to the durable registry
    /// every `k` iterations (default 1: every iteration is resumable).
    /// Clamped to at least 1. No effect on non-durable engines.
    pub fn job_checkpoint_iters(mut self, k: u64) -> WireServerBuilder {
        self.job_checkpoint_iters = k.max(1);
        self
    }

    /// Byte budget across all sessions' cached replay responses (default
    /// 8 MiB). Over budget, *other* sessions' cached replies are evicted
    /// — never the session that just applied a request, so the in-flight
    /// exactly-once guarantee always holds. A client replaying into an
    /// evicted entry gets a typed error, never a silent re-execution.
    pub fn replay_budget_bytes(mut self, bytes: u64) -> WireServerBuilder {
        self.replay_budget = bytes;
        self
    }

    /// Admission control: at most `n` training jobs queued + running
    /// (default 4). Excess submissions get a typed
    /// [`Response::Busy`](super::wire::Response::Busy) rejection, not a
    /// hang.
    pub fn max_jobs(mut self, n: usize) -> WireServerBuilder {
        self.max_jobs = n;
        self
    }

    /// Admission control: cap the bytes each session may bulk-load via
    /// `CreateTable` (default unlimited).
    pub fn session_budget_bytes(mut self, bytes: u64) -> WireServerBuilder {
        self.session_budget = Some(bytes);
        self
    }

    /// How long a disconnected session's state (split handles, temp
    /// tables, active jobs, replay cache) survives before the sweeper
    /// reclaims it (default 2s). Must comfortably exceed the client's
    /// worst-case reconnect backoff.
    pub fn session_grace(mut self, grace: Duration) -> WireServerBuilder {
        self.grace = grace;
        self
    }

    /// Deterministic reply jitter: sleep a seed-derived `0..max_micros`
    /// microseconds before each reply (see [`ServeOptions::reply_jitter`]).
    /// The interleaving proptests use it to randomize cross-shard
    /// completion order without changing any result.
    pub fn reply_jitter(mut self, seed: u64, max_micros: u64) -> WireServerBuilder {
        self.opts.reply_jitter = Some((seed, max_micros));
        self
    }

    fn state(self) -> Arc<ServeState> {
        // Recover the durable job registry *before* sweeping orphans: a
        // recovered Done job vouches for its `jb_job<id>_` message
        // tables, which must survive so `PredictBatch { job }` keeps
        // answering after the restart.
        let recovered = if self.db.config().storage_path.is_some() {
            recover_jobs(&self.db)
        } else {
            Vec::new()
        };
        let keep_job_tables: HashSet<u64> = recovered
            .iter()
            .filter(|r| matches!(&*r.handle.progress.lock(), JobProgress::Done { .. }))
            .map(|r| r.handle.id)
            .collect();
        // Orphan sweep, gated on the registry: `jb_` working tables left
        // behind by a previous process are unreachable — except the
        // `jb_sys_` system tables and the message tables of recovered
        // Done jobs, which the registry still refers to.
        for name in self.db.table_names() {
            if !name.starts_with("jb_") || name.starts_with("jb_sys_") {
                continue;
            }
            if job_table_id(&name).is_some_and(|id| keep_job_tables.contains(&id)) {
                continue;
            }
            let _ = ShardTransport::drop_table(&self.db, &name);
        }
        let state = Arc::new(ServeState::new(
            self.db,
            self.opts,
            self.max_jobs,
            self.session_budget,
            self.grace,
            self.job_checkpoint_iters,
            self.replay_budget,
        ));
        if !recovered.is_empty() {
            let next = recovered.iter().map(|r| r.handle.id).max().unwrap_or(0) + 1;
            state.next_job.store(next, Ordering::Relaxed);
            let mut resumable = Vec::new();
            {
                let mut jobs = state.jobs.lock();
                for r in recovered {
                    if r.resume {
                        resumable.push(Arc::clone(&r.handle));
                    }
                    jobs.insert(r.handle.id, r.handle);
                }
            }
            // Interrupted jobs go back to work: each worker replays the
            // persisted forest checkpoint and trains the remaining
            // iterations (bit-identical to the uncrashed run).
            for handle in resumable {
                let st = Arc::clone(&state);
                std::thread::spawn(move || run_job(&st, &handle));
            }
        }
        state
    }

    /// Bind an ephemeral loopback port and serve on a background thread.
    pub fn spawn(self) -> io::Result<WireServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let state = self.state();
        let st = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(listener, st));
        let sweeper = spawn_sweeper(Arc::clone(&state));
        Ok(WireServer {
            addr,
            state,
            accept: Some(accept),
            sweeper: Some(sweeper),
        })
    }

    /// Serve on `listener` until the process exits — the blocking entry
    /// point the `shard_server` binary uses; each accepted connection
    /// still gets its own thread.
    pub fn serve(self, listener: TcpListener) {
        let state = self.state();
        let _sweeper = spawn_sweeper(Arc::clone(&state));
        accept_loop(listener, state);
    }
}

/// An in-process wire server: the full remote protocol over a real
/// loopback TCP socket, hosted on a background thread. What the examples,
/// experiments and most tests use; the `shard_server` binary provides the
/// same loop as a standalone process.
pub struct WireServer {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<std::thread::JoinHandle<()>>,
    sweeper: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Start configuring a server for `db` — see [`WireServerBuilder`].
    pub fn builder(db: Database) -> WireServerBuilder {
        WireServerBuilder {
            db,
            opts: ServeOptions::default(),
            max_jobs: 4,
            session_budget: None,
            grace: Duration::from_secs(2),
            job_checkpoint_iters: 1,
            replay_budget: 8 << 20,
        }
    }

    /// The server's socket address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted engine — tests use it to assert on server-side state
    /// (temp-table cleanup, concurrent clients' tables).
    pub fn database(&self) -> &Database {
        &self.state.db
    }

    /// Requests received so far (across all connections).
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Scorer-dictionary cache misses so far — the invalidation tests
    /// assert that unrelated writes do not force reloads.
    pub fn scorer_cache_loads(&self) -> u64 {
        self.state.scorer_loads.load(Ordering::Relaxed)
    }

    /// Replay-cache entries evicted under the replay byte budget so far
    /// (see [`WireServerBuilder::replay_budget_bytes`]).
    pub fn replay_evictions(&self) -> u64 {
        self.state.replay_evictions.load(Ordering::Relaxed)
    }

    /// Kill the server: stop accepting and sever every live connection.
    /// Clients observe the same thing a crashed process produces.
    pub fn kill(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        for (_, c) in self.state.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.kill();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// How a [`RemoteConnection`] handles transport errors: how many times to
/// reconnect-and-replay, and how the backoff between attempts grows.
///
/// The default is a modest retrying policy; [`RetryPolicy::none()`]
/// restores strict fail-fast (first transport error poisons the
/// connection immediately), which the kill/stall fault tests rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Reconnect attempts after the first failure (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Cap on the (pre-jitter) backoff.
    pub max_backoff: Duration,
    /// Uniform jitter fraction in `[0, 1]`: each backoff is scaled by a
    /// factor drawn from `1 ± jitter`, decorrelating a fleet of clients
    /// that failed together.
    pub jitter: f64,
}

impl RetryPolicy {
    /// Fail fast: no reconnects, the first transport error poisons the
    /// connection — the pre-v3 behavior.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
        }
    }

    /// Backoff before retry number `attempt` (1-based): exponential from
    /// `base_backoff`, capped at `max_backoff`, jittered.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let base = self.base_backoff.as_secs_f64() * (1u64 << exp) as f64;
        let capped = base.min(self.max_backoff.as_secs_f64());
        let factor = if self.jitter > 0.0 {
            let unit = (entropy64() >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            1.0 + self.jitter * (2.0 * unit - 1.0)
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * factor).max(0.0))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter: 0.2,
        }
    }
}

/// Process-unique 64-bit values for resume tokens and backoff jitter:
/// wall clock ⊕ pid ⊕ a counter, through a SplitMix64 finalizer. Not
/// cryptographic — collisions just alias two sessions, and only within
/// one server's grace window.
fn entropy64() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let x = t
        ^ ((std::process::id() as u64) << 32)
        ^ COUNTER.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A fresh, nonzero session resume token.
fn fresh_token() -> u64 {
    entropy64() | 1
}

/// Client-side transport knobs.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Bound on every request/response exchange (read + write timeouts on
    /// the socket): a dead or hung server surfaces as an error after at
    /// most this long, never as a hang.
    pub io_timeout: Duration,
    /// Reconnect-and-replay behavior on transport errors.
    pub retry: RetryPolicy,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
        }
    }
}

/// One framed connection to a wire server: the remote flavor of
/// [`ShardTransport`], and the engine half of [`RemoteBackend`].
///
/// A connection *multiplexes*: any number of threads may have requests
/// in flight over the one socket at once. Each request carries a fresh
/// sequence number; replies carry the seq they answer, so completions
/// may arrive in any order. No dedicated I/O thread exists — whichever
/// waiting caller gets there first takes the reader role and drains
/// reply frames for everyone (leader/follower), handing the role off
/// when its own reply lands.
///
/// On a transport failure the connection reconnects under its
/// [`RetryPolicy`], re-presents its session resume token, and replays
/// *every* in-flight request (the server's replay window makes that
/// exactly-once); only an exhausted retry budget *poisons* the
/// connection, failing all in-flight requests at once, after which every
/// call fails immediately with the original error — cleanup paths
/// touching a dead shard cost nothing, they do not re-wait on timeouts.
pub struct RemoteConnection {
    /// Multiplexer bookkeeping — in-flight slots, the live socket, the
    /// seq counter. Never held across blocking socket I/O, so reply
    /// deposits can always make progress.
    mux: Mutex<MuxState>,
    /// Signals waiters: a reply was deposited, the reader role freed, or
    /// recovery finished (either way the slots say what happened).
    cv: Condvar,
    /// Serializes frame *writes* so concurrent requests cannot
    /// interleave bytes mid-frame. Held across the (possibly blocking)
    /// write and nothing else; the server drains its socket one frame at
    /// a time, so a blocked write never deadlocks against the reader.
    wlock: Mutex<()>,
    addr: String,
    opts: RemoteOptions,
    /// Session resume token presented in every handshake.
    token: u64,
    column_swap: bool,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    /// Split-protocol wire volume (one logical frame per request/reply,
    /// reconnect retransmits excluded) — the per-round traffic the
    /// sharded coordinator reports, as opposed to lifetime totals.
    split_bytes_sent: AtomicU64,
    split_bytes_received: AtomicU64,
    requests: AtomicU64,
    /// Reconnect attempts performed (diagnostics).
    retries: AtomicU64,
    poisoned: Mutex<Option<String>>,
}

/// The multiplexer state behind [`RemoteConnection::mux`].
struct MuxState {
    /// The live socket, or `None` while recovery is rebuilding it (and
    /// forever after poisoning). Senders and the reader work on
    /// `try_clone`d handles, so nothing blocks while holding the lock.
    stream: Option<TcpStream>,
    /// Monotone request sequence numbers, starting at 1.
    next_seq: u64,
    /// Every request that has not yet resolved, keyed by seq. The entry
    /// keeps the *unenveloped* request body so a reconnect can replay it
    /// with a fresh ack.
    inflight: BTreeMap<u64, Pending>,
    /// A thread currently owns the reader role (is blocked reading reply
    /// frames). At most one at a time.
    reading: bool,
    /// Bumped on every reconnect. A thread that hits an I/O error on a
    /// socket of an older generation knows someone else already
    /// recovered past that failure and must not recover again.
    generation: u64,
    /// A thread is inside [`RemoteConnection::recover`] (backoff,
    /// reconnect, replay). At most one at a time.
    recovering: bool,
}

/// One in-flight request: its body (kept for reconnect replay) and the
/// slot its reply lands in.
struct Pending {
    body: Vec<u8>,
    slot: Slot,
}

/// Completion state of an in-flight request.
enum Slot {
    /// No reply yet; on reconnect the request is replayed.
    Waiting,
    /// The reply's encoded `Response` bytes (seq envelope stripped).
    Ready(Vec<u8>),
    /// The connection died and the retry budget is spent.
    Failed(String),
}

/// `[u64 seq][u64 ack][body]` — the v4 request envelope.
fn envelope_v4(seq: u64, ack: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(body.len() + 16);
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.extend_from_slice(&ack.to_le_bytes());
    payload.extend_from_slice(body);
    payload
}

/// Whether a request belongs to the split protocol (for the split wire
/// volume counters).
fn is_split_request(req: &Request) -> bool {
    matches!(
        req,
        Request::SplitOpen { .. }
            | Request::SplitOpenBounds { .. }
            | Request::SplitBoundaries { .. }
            | Request::SplitSummaries { .. }
            | Request::SplitSummariesDelta { .. }
            | Request::SplitRefine { .. }
            | Request::SplitFetch { .. }
            | Request::SplitClose { .. }
    )
}

/// TCP connect + raw `Hello` handshake presenting `token`. Returns the
/// socket, the server's column-swap capability, and the handshake's
/// `(sent, received)` byte counts. Errors stay at the `io` level; the
/// caller adds the shard-address context.
fn connect_and_hello(
    addr: &str,
    opts: &RemoteOptions,
    token: u64,
) -> io::Result<(TcpStream, bool, u64, u64)> {
    let fail = io::Error::other;
    let sock_addr = addr
        .to_socket_addrs()
        .map_err(|e| fail(format!("connect failed: {e}")))?
        .next()
        .ok_or_else(|| fail("no address".into()))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, opts.connect_timeout)
        .map_err(|e| fail(format!("connect failed: {e}")))?;
    stream.set_read_timeout(Some(opts.io_timeout))?;
    stream.set_write_timeout(Some(opts.io_timeout))?;
    let _ = stream.set_nodelay(true);
    let hello = encode_request(&Request::Hello {
        magic: MAGIC,
        version: VERSION,
        token,
    });
    let sent = write_frame(&mut stream, &hello)? as u64;
    let frame = read_frame(&mut stream)?;
    let received = frame.len() as u64 + 4;
    match decode_response(&frame).map_err(|e| fail(e.to_string()))? {
        Response::Caps { column_swap } => Ok((stream, column_swap, sent, received)),
        Response::Err(e) => Err(fail(format!("handshake rejected: {e}"))),
        other => Err(fail(format!("bad handshake reply: {other:?}"))),
    }
}

/// Configures a [`RemoteConnection`]: address, transport timeouts, and
/// the retry policy.
///
/// ```no_run
/// # use std::time::Duration;
/// # use joinboost::backend::{RemoteConnection, RetryPolicy};
/// let conn = RemoteConnection::builder("127.0.0.1:7654")
///     .connect_timeout(Duration::from_secs(1))
///     .io_timeout(Duration::from_secs(10))
///     .retry(RetryPolicy::none())
///     .connect()
///     .unwrap();
/// ```
pub struct RemoteConnectionBuilder {
    addr: String,
    opts: RemoteOptions,
}

impl RemoteConnectionBuilder {
    /// Bound on establishing the TCP connection (default 5s).
    pub fn connect_timeout(mut self, t: Duration) -> RemoteConnectionBuilder {
        self.opts.connect_timeout = t;
        self
    }

    /// Bound on every request/response exchange (default 30s).
    pub fn io_timeout(mut self, t: Duration) -> RemoteConnectionBuilder {
        self.opts.io_timeout = t;
        self
    }

    /// Reconnect-and-replay behavior on transport errors (default: a
    /// modest retrying policy — see [`RetryPolicy`]).
    pub fn retry(mut self, policy: RetryPolicy) -> RemoteConnectionBuilder {
        self.opts.retry = policy;
        self
    }

    /// Connect, handshake, and learn the server's capabilities.
    pub fn connect(self) -> BackendResult<RemoteConnection> {
        RemoteConnection::open(&self.addr, self.opts)
    }
}

impl RemoteConnection {
    /// Start configuring a connection to `addr` — see
    /// [`RemoteConnectionBuilder`].
    pub fn builder(addr: impl ToSocketAddrs + std::fmt::Display) -> RemoteConnectionBuilder {
        RemoteConnectionBuilder {
            addr: addr.to_string(),
            opts: RemoteOptions::default(),
        }
    }

    /// The *initial* connect is single-attempt regardless of the retry
    /// policy: a server that was never there fails fast with its connect
    /// error; retries exist to ride out a server that *was* there.
    fn open(addr: &str, opts: RemoteOptions) -> BackendResult<RemoteConnection> {
        let label = addr.to_string();
        let token = fresh_token();
        let (stream, column_swap, sent, received) = connect_and_hello(&label, &opts, token)
            .map_err(|e| EngineError::Other(format!("shard server at {label}: {e}")))?;
        Ok(RemoteConnection {
            mux: Mutex::new(MuxState {
                stream: Some(stream),
                next_seq: 0,
                inflight: BTreeMap::new(),
                reading: false,
                generation: 0,
                recovering: false,
            }),
            cv: Condvar::new(),
            wlock: Mutex::new(()),
            addr: label,
            opts,
            token,
            column_swap,
            bytes_sent: AtomicU64::new(sent),
            bytes_received: AtomicU64::new(received),
            split_bytes_sent: AtomicU64::new(0),
            split_bytes_received: AtomicU64::new(0),
            requests: AtomicU64::new(1),
            retries: AtomicU64::new(0),
            poisoned: Mutex::new(None),
        })
    }

    /// The address this connection talks to (diagnostics).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the server's engine accepts `SWAP COLUMN`.
    pub fn server_column_swap(&self) -> bool {
        self.column_swap
    }

    /// `(bytes_sent, bytes_received)` on this connection, framing
    /// included — the real shuffle volume of a distributed run.
    pub fn wire_byte_counts(&self) -> (u64, u64) {
        (
            self.bytes_sent.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
        )
    }

    /// Requests completed on this connection.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Reconnect attempts performed so far (diagnostics).
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// `(bytes_sent, bytes_received)` attributable to the split
    /// protocol, framing and envelopes included, counted once per
    /// logical request/reply (reconnect retransmits excluded).
    pub fn split_wire_byte_counts(&self) -> (u64, u64) {
        (
            self.split_bytes_sent.load(Ordering::Relaxed),
            self.split_bytes_received.load(Ordering::Relaxed),
        )
    }

    /// One request/response exchange over the multiplexer: register an
    /// in-flight slot, write the enveloped frame, then wait (or read on
    /// everyone's behalf) until the reply with this seq lands. Transport
    /// failures trigger a shared reconnect-and-replay under the
    /// connection's [`RetryPolicy`]; once the budget is exhausted the
    /// connection is poisoned and the error carries the shard address.
    /// Server-side engine errors come back as the exact [`EngineError`]
    /// variant the engine raised.
    fn request(&self, req: &Request) -> BackendResult<Response> {
        let body = encode_request(req);
        if body.len() + 16 > MAX_FRAME as usize {
            // A purely client-side limit: nothing touched the socket, so
            // the connection stays healthy — no poison, typed error.
            return Err(EngineError::Other(format!(
                "request frame of {} bytes exceeds the {MAX_FRAME}-byte wire limit; \
                 transfer large tables in parts",
                body.len() + 16
            )));
        }
        let split = is_split_request(req);
        let seq = {
            // Registration and the poison check share one critical
            // section with recovery's fail-everything pass, so a request
            // can never slip in after poisoning and wait forever.
            let mut mux = self.mux.lock();
            if let Some(why) = self.poisoned.lock().as_ref() {
                return Err(EngineError::Other(format!(
                    "shard server at {}: connection previously failed: {why}",
                    self.addr
                )));
            }
            mux.next_seq += 1;
            let seq = mux.next_seq;
            if split {
                self.split_bytes_sent
                    .fetch_add(body.len() as u64 + 20, Ordering::Relaxed);
            }
            mux.inflight.insert(
                seq,
                Pending {
                    body,
                    slot: Slot::Waiting,
                },
            );
            seq
        };
        self.send(seq);
        let outcome = self.await_reply(seq);
        let result = match outcome {
            Ok(bytes) => {
                if split {
                    self.split_bytes_received
                        .fetch_add(bytes.len() as u64 + 12, Ordering::Relaxed);
                }
                self.requests.fetch_add(1, Ordering::Relaxed);
                decode_response(&bytes).map_err(|e| {
                    // A reply that decodes to garbage is a broken peer,
                    // not a recoverable drop — replaying would fetch the
                    // same cached bytes. Poison.
                    let mut p = self.poisoned.lock();
                    if p.is_none() {
                        *p = Some(e.to_string());
                    }
                    e.to_string()
                })
            }
            Err(why) => Err(why),
        };
        result.map_err(|e| EngineError::Other(format!("shard server at {}: {e}", self.addr)))
    }

    /// Envelope and write in-flight request `seq`. The ack — the lowest
    /// seq still in flight — is computed at write time, so every frame
    /// (including recovery replays) carries the freshest window release.
    /// A write failure routes into [`RemoteConnection::recover`]; a
    /// `None` stream means recovery is already rebuilding the socket and
    /// its replay pass owns delivery of this request.
    fn send(&self, seq: u64) {
        let (payload, stream, generation) = {
            let mux = self.mux.lock();
            let Some(stream) = mux.stream.as_ref() else {
                return;
            };
            let Some(p) = mux.inflight.get(&seq) else {
                return;
            };
            let ack = *mux.inflight.keys().next().expect("inflight holds seq");
            let stream = match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    let generation = mux.generation;
                    drop(mux);
                    self.recover(generation, e);
                    return;
                }
            };
            (envelope_v4(seq, ack, &p.body), stream, mux.generation)
        };
        let mut stream = stream;
        let written = {
            let _w = self.wlock.lock();
            write_frame(&mut stream, &payload)
        };
        match written {
            Ok(n) => {
                self.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) => self.recover(generation, e),
        }
    }

    /// Block until in-flight request `seq` resolves, taking the reader
    /// role whenever it is free (leader/follower: exactly one waiter
    /// reads, deposits every reply it sees, and hands off).
    fn await_reply(&self, seq: u64) -> Result<Vec<u8>, String> {
        let mut mux = self.mux.lock();
        loop {
            match mux.inflight.get(&seq).map(|p| &p.slot) {
                Some(Slot::Waiting) => {}
                None => {
                    // Unreachable: only this thread removes its entry.
                    return Err(format!("in-flight slot for seq {seq} vanished"));
                }
                Some(_) => {
                    let p = mux.inflight.remove(&seq).expect("just matched");
                    return match p.slot {
                        Slot::Ready(bytes) => Ok(bytes),
                        Slot::Failed(why) => Err(why),
                        Slot::Waiting => unreachable!("matched resolved slot"),
                    };
                }
            }
            if !mux.reading && !mux.recovering && mux.stream.is_some() {
                let generation = mux.generation;
                match mux.stream.as_ref().expect("checked is_some").try_clone() {
                    Ok(stream) => {
                        mux.reading = true;
                        drop(mux);
                        self.read_until(seq, stream, generation);
                    }
                    Err(e) => {
                        drop(mux);
                        self.recover(generation, e);
                    }
                }
                mux = self.mux.lock();
                continue;
            }
            mux = self.cv.wait(mux);
        }
    }

    /// The reader role: drain reply frames — depositing each into its
    /// in-flight slot by seq — until our own request `seq` resolves, the
    /// socket dies (routes into recovery), or a reconnect makes this
    /// socket generation stale. Clears `reading` and wakes all waiters
    /// on every exit path.
    fn read_until(&self, seq: u64, mut stream: TcpStream, generation: u64) {
        loop {
            match read_frame(&mut stream) {
                Ok(frame) => {
                    self.bytes_received
                        .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
                    let mut mux = self.mux.lock();
                    if frame.len() >= 8 {
                        let rseq = u64::from_le_bytes(frame[..8].try_into().expect("8 bytes"));
                        if let Some(p) = mux.inflight.get_mut(&rseq) {
                            if matches!(p.slot, Slot::Waiting) {
                                p.slot = Slot::Ready(frame[8..].to_vec());
                            }
                        }
                        // An unknown or already-resolved seq is a
                        // duplicate delivery (a reconnect replay raced
                        // the original reply): drop it.
                    }
                    let mine =
                        !matches!(mux.inflight.get(&seq).map(|p| &p.slot), Some(Slot::Waiting));
                    if mine || mux.generation != generation {
                        // Hand the role off: either our reply landed or
                        // recovery replaced the socket (its replay
                        // re-delivers anything still buffered here).
                        mux.reading = false;
                        drop(mux);
                        self.cv.notify_all();
                        return;
                    }
                    drop(mux);
                    self.cv.notify_all();
                }
                Err(e) => {
                    self.mux.lock().reading = false;
                    self.cv.notify_all();
                    self.recover(generation, e);
                    return;
                }
            }
        }
    }

    /// Shared reconnect-and-replay. Exactly one thread runs this at a
    /// time: it tears down the socket of `generation` (unblocking any
    /// parked reader), then under the [`RetryPolicy`] reconnects,
    /// re-presents the resume token, and replays every request still
    /// waiting — in seq order, with fresh acks. The server's replay
    /// window turns re-delivery into exactly-once. An exhausted budget
    /// poisons the connection and fails every waiter with the last
    /// transport error.
    fn recover(&self, generation: u64, err: io::Error) {
        {
            let mut mux = self.mux.lock();
            if mux.generation != generation || mux.recovering {
                // The failure is from a socket generation someone else
                // already recovered past (or is recovering right now).
                return;
            }
            mux.recovering = true;
            mux.generation += 1;
            if let Some(s) = mux.stream.take() {
                // A reader parked on the dead socket returns immediately
                // once it is shut down.
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
        let retry = self.opts.retry;
        let mut last_err = err;
        for attempt in 1..=retry.max_retries {
            self.retries.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(retry.backoff(attempt));
            let (mut stream, sent, received) =
                match connect_and_hello(&self.addr, &self.opts, self.token) {
                    Ok((stream, _, sent, received)) => (stream, sent, received),
                    Err(e) => {
                        last_err = e;
                        continue; // reconnect failed: spend another attempt
                    }
                };
            self.bytes_sent.fetch_add(sent, Ordering::Relaxed);
            self.bytes_received.fetch_add(received, Ordering::Relaxed);
            // Install the socket and snapshot the replays in one
            // critical section: requests registered later see the live
            // stream and send themselves. (A request that does both is
            // delivered twice; the server's window and the reader's
            // resolved-slot check both drop the duplicate.)
            let replays: Vec<Vec<u8>> = {
                let mut mux = self.mux.lock();
                match stream.try_clone() {
                    Ok(s) => mux.stream = Some(s),
                    Err(e) => {
                        last_err = e;
                        continue;
                    }
                }
                let ack = mux.inflight.keys().next().copied();
                mux.inflight
                    .iter()
                    .filter(|(_, p)| matches!(p.slot, Slot::Waiting))
                    .map(|(&s, p)| envelope_v4(s, ack.unwrap_or(s), &p.body))
                    .collect()
            };
            self.cv.notify_all();
            let mut replay_err = None;
            for payload in &replays {
                let written = {
                    let _w = self.wlock.lock();
                    write_frame(&mut stream, payload)
                };
                match written {
                    Ok(n) => {
                        self.bytes_sent.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(e) => {
                        replay_err = Some(e);
                        break;
                    }
                }
            }
            match replay_err {
                None => {
                    self.mux.lock().recovering = false;
                    self.cv.notify_all();
                    return;
                }
                Some(e) => {
                    // The freshly installed socket died too: reclaim it
                    // (we still hold `recovering`, so nobody else can
                    // race a competing recovery) and spend another
                    // attempt.
                    last_err = e;
                    let mut mux = self.mux.lock();
                    mux.generation += 1;
                    if let Some(s) = mux.stream.take() {
                        let _ = s.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
        }
        // Budget exhausted: poison and fail every waiter at once.
        let why = if retry.max_retries == 0 {
            last_err.to_string()
        } else {
            format!(
                "{last_err} (after {} reconnect attempts)",
                retry.max_retries
            )
        };
        let mut mux = self.mux.lock();
        {
            let mut p = self.poisoned.lock();
            if p.is_none() {
                *p = Some(why.clone());
            }
        }
        for p in mux.inflight.values_mut() {
            if matches!(p.slot, Slot::Waiting) {
                p.slot = Slot::Failed(why.clone());
            }
        }
        mux.recovering = false;
        drop(mux);
        self.cv.notify_all();
    }

    /// Request + unwrap a server-side error into the engine error it was.
    /// An admission-control rejection becomes a typed `server busy` error
    /// — like `Response::Err`, it does *not* poison the connection.
    fn call(&self, req: &Request) -> BackendResult<Response> {
        match self.request(req)? {
            Response::Err(e) => Err(e),
            Response::Busy(m) => Err(EngineError::Other(format!(
                "shard server at {}: server busy: {m}",
                self.addr
            ))),
            ok => Ok(ok),
        }
    }

    fn unexpected(&self, what: &str, got: &Response) -> EngineError {
        EngineError::Other(format!(
            "shard server at {}: unexpected reply to {what}: {got:?}",
            self.addr
        ))
    }

    /// Execute one SQL statement given as text.
    pub fn execute_text(&self, sql: &str) -> BackendResult {
        match self.call(&Request::Execute { sql: sql.into() })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("Execute", &other)),
        }
    }

    /// Names of every table the server holds (diagnostics / tests).
    pub fn table_names(&self) -> BackendResult<Vec<String>> {
        match self.call(&Request::TableNames)? {
            Response::Names(n) => Ok(n),
            other => Err(self.unexpected("TableNames", &other)),
        }
    }

    /// One `PredictBatch` round trip, in any of its modes.
    fn predict_wire(
        &self,
        job: Option<u64>,
        spec: Option<&ScorerSpec>,
        keys: &[i64],
        partial: bool,
    ) -> BackendResult<Vec<(bool, f64)>> {
        match self.call(&Request::PredictBatch {
            job,
            spec: spec.map(|s| Box::new(s.clone())),
            keys: keys.to_vec(),
            partial,
        })? {
            Response::Scores { found, scores } => {
                if found.len() != keys.len() || scores.len() != keys.len() {
                    return Err(EngineError::Other(format!(
                        "shard server at {}: PredictBatch answered {} scores for {} keys",
                        self.addr,
                        scores.len(),
                        keys.len()
                    )));
                }
                Ok(found.into_iter().zip(scores).collect())
            }
            other => Err(self.unexpected("PredictBatch", &other)),
        }
    }
}

impl ShardTransport for RemoteConnection {
    fn execute(&self, stmt: &Statement) -> BackendResult {
        // SQL ships as text; the server re-parses the identical statement
        // (the round-trip fixed point of the SQL-text backend).
        self.execute_text(&stmt.to_string())
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        match self.call(&Request::CreateTable {
            name: name.into(),
            table,
        })? {
            Response::Unit => Ok(()),
            other => Err(self.unexpected("CreateTable", &other)),
        }
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        match self.call(&Request::Snapshot { name: name.into() })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("Snapshot", &other)),
        }
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        match self.call(&Request::GatherRows {
            name: name.into(),
            rows: rows.to_vec(),
        })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("GatherRows", &other)),
        }
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        match self.call(&Request::ColumnNames { name: table.into() })? {
            Response::Names(n) => Ok(n),
            other => Err(self.unexpected("ColumnNames", &other)),
        }
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        match self.call(&Request::ColumnDtype {
            table: table.into(),
            column: column.into(),
        })? {
            Response::Dtype(d) => Ok(d),
            other => Err(self.unexpected("ColumnDtype", &other)),
        }
    }

    fn has_table(&self, name: &str) -> bool {
        matches!(
            self.call(&Request::HasTable { name: name.into() }),
            Ok(Response::Bool(true))
        )
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        match self.call(&Request::RowCount { name: name.into() })? {
            Response::Count(n) => Ok(n as usize),
            other => Err(self.unexpected("RowCount", &other)),
        }
    }

    fn drop_table(&self, name: &str) -> BackendResult<()> {
        match self.call(&Request::DropTableIfExists { name: name.into() })? {
            Response::Unit => Ok(()),
            other => Err(self.unexpected("DropTableIfExists", &other)),
        }
    }

    fn split_open(
        &self,
        stmt: &Statement,
        spec: &SplitSpec,
        k: usize,
    ) -> BackendResult<SplitOpen<'_>> {
        // The absorbed result stays on the server; only the protocol's
        // messages (boundaries, summaries, candidate rows) will cross.
        // `k > 0` uses the fused open: the reply already carries the
        // first k equal-count boundary keys, saving one round trip.
        if k > 0 {
            let req = Request::SplitOpenBounds {
                sql: stmt.to_string(),
                key_col: spec.key_col as u32,
                c0_col: spec.c0_col as u32,
                c1_col: spec.c1_col as u32,
                specs: spec.specs.iter().map(|s| s.to_tag()).collect(),
                k: k as u32,
            };
            return match self.call(&req)? {
                Response::SplitOpenedBounds { id, rows, bounds } => Ok(SplitOpen::Protocol {
                    handle: Box::new(RemoteSplitHandle {
                        conn: self,
                        id,
                        rows: rows as usize,
                    }),
                    bounds: keys_from_table(&bounds),
                }),
                // Protocol inapplicable on the server's data: the
                // absorbed result came back, ready for the dense merge.
                Response::Table(t) => Ok(SplitOpen::Dense(t)),
                other => Err(self.unexpected("SplitOpenBounds", &other)),
            };
        }
        let req = Request::SplitOpen {
            sql: stmt.to_string(),
            key_col: spec.key_col as u32,
            c0_col: spec.c0_col as u32,
            c1_col: spec.c1_col as u32,
            specs: spec.specs.iter().map(|s| s.to_tag()).collect(),
        };
        match self.call(&req)? {
            Response::SplitOpened(id, rows) => Ok(SplitOpen::Protocol {
                handle: Box::new(RemoteSplitHandle {
                    conn: self,
                    id,
                    rows: rows as usize,
                }),
                bounds: Vec::new(),
            }),
            // Protocol inapplicable on the server's data: the absorbed
            // result came back instead, ready for the dense merge.
            Response::Table(t) => Ok(SplitOpen::Dense(t)),
            other => Err(self.unexpected("SplitOpen", &other)),
        }
    }

    fn predict_partials(&self, spec: &ScorerSpec, keys: &[i64]) -> BackendResult<Vec<(bool, f64)>> {
        // Shard-resident scoring: only keys and partial sums cross the
        // wire, never message tables.
        self.predict_wire(None, Some(spec), keys, true)
    }

    fn wire_bytes(&self) -> (u64, u64) {
        self.wire_byte_counts()
    }

    fn split_wire_bytes(&self) -> (u64, u64) {
        self.split_wire_byte_counts()
    }
}

/// Client proxy of a server-side split handle: every method is one
/// request/response on the shard's connection.
struct RemoteSplitHandle<'a> {
    conn: &'a RemoteConnection,
    id: u64,
    rows: usize,
}

impl RemoteSplitHandle<'_> {
    fn table_reply(&self, what: &str, req: &Request) -> BackendResult<Table> {
        match self.conn.call(req)? {
            Response::Table(t) => Ok(t),
            other => Err(self.conn.unexpected(what, &other)),
        }
    }
}

impl SplitHandle for RemoteSplitHandle<'_> {
    fn num_rows(&self) -> usize {
        self.rows
    }

    fn boundaries(&self, k: usize) -> BackendResult<Vec<Datum>> {
        let t = self.table_reply(
            "SplitBoundaries",
            &Request::SplitBoundaries {
                id: self.id,
                k: k as u32,
            },
        )?;
        Ok(keys_from_table(&t))
    }

    fn summaries(&self, grid: &[Datum]) -> BackendResult<Vec<IntervalSummary>> {
        let t = self.table_reply(
            "SplitSummaries",
            &Request::SplitSummaries {
                id: self.id,
                grid: keys_to_table(grid),
            },
        )?;
        summaries_from_table(&t).ok_or_else(|| {
            EngineError::Other(format!(
                "shard server at {}: malformed split summaries",
                self.conn.addr
            ))
        })
    }

    fn summaries_delta(
        &self,
        grid: &[Datum],
        changed: &[usize],
    ) -> BackendResult<Vec<IntervalSummary>> {
        // The delta frame: full grid (cheap — keys only), but summaries
        // come back solely for the `changed` intervals; the coordinator
        // reconstructs the rest from its cache, bit-identically.
        let t = self.table_reply(
            "SplitSummariesDelta",
            &Request::SplitSummariesDelta {
                id: self.id,
                grid: keys_to_table(grid),
                changed: changed.iter().map(|&j| j as u32).collect(),
            },
        )?;
        summaries_from_table(&t).ok_or_else(|| {
            EngineError::Other(format!(
                "shard server at {}: malformed split delta summaries",
                self.conn.addr
            ))
        })
    }

    fn refine(&self, grid: &[Datum], targets: &[(usize, usize)]) -> BackendResult<Vec<Datum>> {
        let t = self.table_reply(
            "SplitRefine",
            &Request::SplitRefine {
                id: self.id,
                grid: keys_to_table(grid),
                targets: targets
                    .iter()
                    .map(|&(j, per)| (j as u32, per as u32))
                    .collect(),
            },
        )?;
        Ok(keys_from_table(&t))
    }

    fn fetch(&self, grid: &[Datum], retain: &[bool]) -> BackendResult<Table> {
        self.table_reply(
            "SplitFetch",
            &Request::SplitFetch {
                id: self.id,
                grid: keys_to_table(grid),
                retain: retain.to_vec(),
            },
        )
    }

    fn into_all_rows(self: Box<Self>) -> BackendResult<Table> {
        // The dense fallback: one interval covering every key ships the
        // whole absorbed result — exactly the cost the protocol avoids
        // when it does apply. (Drop then releases the server-side state.)
        let bounds = self.boundaries(2)?;
        match bounds.last() {
            None => self.fetch(&[], &[]),
            Some(max) => {
                let max = max.clone();
                self.fetch(&[max], &[true])
            }
        }
    }
}

impl Drop for RemoteSplitHandle<'_> {
    fn drop(&mut self) {
        // Best-effort release of the server-side state; a dead
        // connection already dropped it with the session.
        let _ = self.conn.call(&Request::SplitClose { id: self.id });
    }
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

/// A full [`SqlBackend`] over one remote engine process.
///
/// Every statement ships as SQL text; tables move as framed columnar
/// blocks. Capabilities are learned from the server's handshake;
/// [`BackendCapabilities::external_interop`] is always off (an
/// `Arc`-shared dataframe cannot cross a process boundary), so the
/// trainer's capability checks reject the `DP` update path up front.
pub struct RemoteBackend {
    conn: RemoteConnection,
    label: String,
    statements: AtomicU64,
    selects: AtomicU64,
}

/// Configures a [`RemoteBackend`]: address plus transport timeouts.
pub struct RemoteBackendBuilder {
    inner: RemoteConnectionBuilder,
}

impl RemoteBackendBuilder {
    /// Bound on establishing the TCP connection (default 5s).
    pub fn connect_timeout(mut self, t: Duration) -> RemoteBackendBuilder {
        self.inner = self.inner.connect_timeout(t);
        self
    }

    /// Bound on every request/response exchange (default 30s).
    pub fn io_timeout(mut self, t: Duration) -> RemoteBackendBuilder {
        self.inner = self.inner.io_timeout(t);
        self
    }

    /// Reconnect-and-replay behavior on transport errors.
    pub fn retry(mut self, policy: RetryPolicy) -> RemoteBackendBuilder {
        self.inner = self.inner.retry(policy);
        self
    }

    /// Connect and wrap the connection as a full [`SqlBackend`].
    pub fn connect(self) -> BackendResult<RemoteBackend> {
        Ok(RemoteBackend::from_connection(self.inner.connect()?))
    }
}

impl RemoteBackend {
    /// Start configuring a backend for `addr` — see
    /// [`RemoteBackendBuilder`].
    pub fn builder(addr: impl ToSocketAddrs + std::fmt::Display) -> RemoteBackendBuilder {
        RemoteBackendBuilder {
            inner: RemoteConnection::builder(addr),
        }
    }

    fn from_connection(conn: RemoteConnection) -> RemoteBackend {
        RemoteBackend {
            label: "remote".to_string(),
            conn,
            statements: AtomicU64::new(0),
            selects: AtomicU64::new(0),
        }
    }

    /// The underlying connection (byte counters, diagnostics).
    pub fn connection(&self) -> &RemoteConnection {
        &self.conn
    }

    fn count(&self, sql: &str) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        let head = sql.trim_start();
        // get(..6) rather than [..6]: byte 6 of arbitrary text may not be
        // a char boundary.
        if head
            .get(..6)
            .is_some_and(|h| h.eq_ignore_ascii_case("SELECT"))
        {
            self.selects.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SqlBackend for RemoteBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            window_functions: true,
            ast_statements: false,
            column_swap: self.conn.server_column_swap(),
            external_interop: false,
            shards: 1,
        }
    }

    fn execute(&self, sql: &str) -> BackendResult {
        self.count(sql);
        self.conn.execute_text(sql)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        let sql = stmt.to_string();
        self.count(&sql);
        self.conn.execute_text(&sql)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        ShardTransport::create_table(&self.conn, name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        ShardTransport::snapshot(&self.conn, name)
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        ShardTransport::column_names(&self.conn, table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        ShardTransport::column_dtype(&self.conn, table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        ShardTransport::has_table(&self.conn, name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        ShardTransport::row_count(&self.conn, name)
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        // Ship only the sample, not the snapshot it came from.
        ShardTransport::gather_rows(&self.conn, name, rows)
    }

    fn drop_table_if_exists(&self, name: &str) -> BackendResult<()> {
        ShardTransport::drop_table(&self.conn, name)
    }

    fn predict_batch(&self, spec: &ScorerSpec, keys: &[i64]) -> BackendResult<Vec<(bool, f64)>> {
        // Full scores (init included): the server holds every message
        // table, so no coordinator-side merge is needed.
        self.conn.predict_wire(None, Some(spec), keys, false)
    }

    fn stats(&self) -> BackendStats {
        let (bytes_sent, bytes_received) = self.conn.wire_byte_counts();
        BackendStats {
            statements: self.statements.load(Ordering::Relaxed),
            selects: self.selects.load(Ordering::Relaxed),
            bytes_sent,
            bytes_received,
            ..BackendStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// ServeClient
// ---------------------------------------------------------------------------

/// A client-visible job state, decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Registered, not yet picked up by a worker.
    Queued,
    /// Training; `iterations` boosting rounds finished so far.
    Running {
        /// Boosting iterations completed.
        iterations: u64,
    },
    /// Trained successfully; ready for `PredictBatch`.
    Done {
        /// Boosting iterations completed.
        iterations: u64,
    },
    /// Training raised an error (the server's message).
    Failed(String),
    /// Cancelled — explicitly or because its submitter disconnected.
    Cancelled,
}

impl JobStatus {
    /// Terminal states never change again; polling can stop.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done { .. } | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }
}

/// What a serving call can fail with. `Busy` is backpressure on a
/// healthy connection — retry later; `Engine` carries everything else
/// (transport failures, server-side errors).
#[derive(Debug)]
pub enum ServeError {
    /// The server declined admission (job limit or session budget). The
    /// connection is still usable.
    Busy(String),
    /// A transport or engine error.
    Engine(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy(m) => write!(f, "server busy: {m}"),
            ServeError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

/// The serving-tier client: submit training jobs, poll and cancel them,
/// and score key batches against the message tables a finished job
/// compiled — all over one wire connection.
///
/// ```no_run
/// # use joinboost::backend::{JobSpec, ServeClient};
/// let client = ServeClient::connect("127.0.0.1:7654").unwrap();
/// let spec = JobSpec {
///     relations: vec![("sales".into(), vec![])],
///     edges: vec![],
///     target_relation: "sales".into(),
///     target_column: "net_profit".into(),
///     key_column: Some("sale_id".into()),
///     ..JobSpec::default()
/// };
/// let id = client.submit(&spec).unwrap();
/// let status = client.wait(id).unwrap();
/// let scores = client.predict(id, &[1, 2, 3]).unwrap();
/// ```
pub struct ServeClient {
    conn: RemoteConnection,
}

impl ServeClient {
    /// Connect to a wire server with default timeouts.
    pub fn connect(
        addr: impl ToSocketAddrs + std::fmt::Display,
    ) -> Result<ServeClient, ServeError> {
        Ok(ServeClient::from_connection(
            RemoteConnection::builder(addr).connect()?,
        ))
    }

    /// Wrap an existing connection (e.g. one built with custom timeouts).
    pub fn from_connection(conn: RemoteConnection) -> ServeClient {
        ServeClient { conn }
    }

    /// The underlying connection (byte counters, diagnostics).
    pub fn connection(&self) -> &RemoteConnection {
        &self.conn
    }

    /// Exchange, splitting `Busy` out of the error stream so callers can
    /// treat backpressure differently from failure.
    fn serve_call(&self, req: &Request) -> Result<Response, ServeError> {
        match self.conn.request(req)? {
            Response::Err(e) => Err(ServeError::Engine(e)),
            Response::Busy(m) => Err(ServeError::Busy(m)),
            ok => Ok(ok),
        }
    }

    fn status(&self, resp: Response) -> Result<JobStatus, ServeError> {
        match resp {
            Response::JobState {
                state,
                iterations,
                message,
            } => Ok(match state {
                0 => JobStatus::Queued,
                1 => JobStatus::Running { iterations },
                2 => JobStatus::Done { iterations },
                3 => JobStatus::Failed(message),
                _ => JobStatus::Cancelled,
            }),
            other => Err(ServeError::Engine(self.conn.unexpected("PollJob", &other))),
        }
    }

    /// Submit a training job; returns its id, or [`ServeError::Busy`]
    /// when the server's job limit is reached.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, ServeError> {
        match self.serve_call(&Request::SubmitJob {
            spec: Box::new(spec.clone()),
        })? {
            Response::JobSubmitted(id) => Ok(id),
            other => Err(ServeError::Engine(
                self.conn.unexpected("SubmitJob", &other),
            )),
        }
    }

    /// The job's current state. Unknown ids are an error naming the id.
    pub fn poll(&self, id: u64) -> Result<JobStatus, ServeError> {
        let resp = self.serve_call(&Request::PollJob { id })?;
        self.status(resp)
    }

    /// Request cancellation (idempotent) and report the state after it.
    /// A queued job dies immediately; a running one stops at its next
    /// iteration boundary.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, ServeError> {
        let resp = self.serve_call(&Request::CancelJob { id })?;
        self.status(resp)
    }

    /// Poll every 10ms until the job reaches a terminal state.
    pub fn wait(&self, id: u64) -> Result<JobStatus, ServeError> {
        loop {
            let status = self.poll(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Score `keys` against the message tables job `id` compiled.
    /// `None` marks keys absent from the (implicit) join — exactly the
    /// rows a materialized inner join would not contain.
    pub fn predict(&self, id: u64, keys: &[i64]) -> Result<Vec<Option<f64>>, ServeError> {
        let rs = self
            .conn
            .predict_wire(Some(id), None, keys, false)
            .map_err(ServeError::Engine)?;
        Ok(rs.into_iter().map(|(f, s)| f.then_some(s)).collect())
    }

    /// Score `keys` against message tables described by an inline `spec`
    /// (deployed out-of-band, e.g. by [`FactorizedScorer`] compilation).
    ///
    /// [`FactorizedScorer`]: crate::serve::FactorizedScorer
    pub fn predict_spec(
        &self,
        spec: &ScorerSpec,
        keys: &[i64],
    ) -> Result<Vec<Option<f64>>, ServeError> {
        let rs = self
            .conn
            .predict_wire(None, Some(spec), keys, false)
            .map_err(ServeError::Engine)?;
        Ok(rs.into_iter().map(|(f, s)| f.then_some(s)).collect())
    }
}
