//! The remote backend: a JoinBoost engine hosted in *another process*,
//! spoken to over the wire protocol of [`crate::backend::wire`].
//!
//! Two halves:
//!
//! * **Server** — [`serve`] runs an accept loop over a [`TcpListener`],
//!   hosting one shared [`Database`]: every connection gets an OS thread,
//!   every request maps onto the same engine entry points the in-process
//!   backends use. [`WireServer::spawn`] runs the same loop on a
//!   background thread (examples, experiments, tests); the
//!   `shard_server` binary wraps [`serve`] for true multi-process
//!   deployments. [`ServeOptions`] carries the fault-injection knobs the
//!   test suite uses to kill or stall a server mid-round.
//! * **Client** — [`RemoteConnection`] is one framed, timeout-guarded
//!   socket (the pluggable shard transport of
//!   [`crate::backend::ShardedBackend`]); [`RemoteBackend`] wraps a
//!   connection into a full [`SqlBackend`], so a training run can target a
//!   single remote engine exactly like a local one.
//!
//! SQL travels as text — the soundness of that rests on the
//! `print ∘ parse ∘ print` fixed point proved by
//! [`crate::backend::SqlTextBackend`] (see `DESIGN.md` § "Wire
//! protocol"). Failure handling is deliberately *fail-fast*: connect and
//! I/O timeouts bound every wait, and the first transport error poisons
//! the connection so later calls (temp-table cleanup included) return
//! immediately instead of re-waiting on a dead peer.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use joinboost_engine::{DataType, Database, EngineError, Table};
use joinboost_graph::JoinGraph;
use joinboost_sql::ast::Statement;

use super::sharded::SplitOpen;
use super::split::{
    keys_from_table, keys_to_table, summaries_from_table, summaries_to_table, IntervalSummary,
    LocalSplitState, MergeSpec, SplitHandle, SplitSpec,
};
use super::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    JobSpec, Request, Response, MAGIC, MAX_FRAME, VERSION,
};
use super::{BackendCapabilities, BackendResult, BackendStats, ShardTransport, SqlBackend};
use crate::boosting::train_gbm_cb;
use crate::dataset::Dataset;
use crate::params::TrainParams;
use crate::serve::{compile_messages, MessageIndex, ScorerSpec};
use joinboost_engine::Datum;

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side knobs. The fault-injection fields exist for the test rig:
/// a real deployment leaves them at `Default`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// After this many requests have been *received* (across all
    /// connections), the server stops serving: with [`ServeOptions::stall`]
    /// unset it drops every connection (a killed process — clients see
    /// EOF/reset immediately); with it set the sockets stay open but no
    /// reply ever comes (a hung process — clients run into their read
    /// timeout). `None` serves forever.
    pub fail_after: Option<u64>,
    /// Fault mode: stall (hold sockets silently) instead of dropping them.
    pub stall: bool,
}

/// A training job's life: `Queued → Running → Done | Failed | Cancelled`.
/// `Cancelled` can also be entered straight from `Queued`.
enum JobProgress {
    Queued,
    Running {
        iterations: u64,
    },
    Done {
        iterations: u64,
        /// Message tables compiled from the trained model when the job
        /// named a `key_column`; what `PredictBatch { job }` scores
        /// against.
        spec: Option<ScorerSpec>,
    },
    Failed(String),
    Cancelled,
}

impl JobProgress {
    fn is_active(&self) -> bool {
        matches!(self, JobProgress::Queued | JobProgress::Running { .. })
    }

    /// The wire view of this state (tags documented on
    /// [`Response::JobState`]).
    fn response(&self) -> Response {
        let (state, iterations, message) = match self {
            JobProgress::Queued => (0, 0, String::new()),
            JobProgress::Running { iterations } => (1, *iterations, String::new()),
            JobProgress::Done { iterations, .. } => (2, *iterations, String::new()),
            JobProgress::Failed(m) => (3, 0, m.clone()),
            JobProgress::Cancelled => (4, 0, String::new()),
        };
        Response::JobState {
            state,
            iterations,
            message,
        }
    }
}

/// One registered job: owned by the connection that submitted it, driven
/// by a background worker thread, cancellable from any connection.
struct JobHandle {
    id: u64,
    /// Connection id of the submitter (jobs still active when their
    /// submitter disconnects are cancelled).
    owner: u64,
    /// Cooperative cancel flag, checked by the training callback after
    /// every boosting iteration.
    cancel: AtomicBool,
    progress: Mutex<JobProgress>,
}

fn cancel_job(job: &JobHandle) {
    job.cancel.store(true, Ordering::Relaxed);
    let mut p = job.progress.lock();
    if matches!(*p, JobProgress::Queued) {
        // Not picked up by its worker yet: terminal immediately.
        *p = JobProgress::Cancelled;
    }
}

struct ServeState {
    db: Database,
    opts: ServeOptions,
    requests: AtomicU64,
    shutdown: AtomicBool,
    /// Clones of the live sockets (keyed by connection id), so `kill`
    /// can yank connections out from under their threads. Entries leave
    /// when their connection ends — a long-running server does not
    /// accumulate dead fds.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    next_conn: AtomicU64,
    /// The job registry: id → handle. Terminal jobs stay registered so
    /// late polls answer their final state.
    jobs: Mutex<HashMap<u64, Arc<JobHandle>>>,
    next_job: AtomicU64,
    /// Admission control: at most this many jobs queued + running.
    max_jobs: usize,
    /// Admission control: per-session cap on bytes bulk-loaded via
    /// `CreateTable` (`None` = unlimited).
    session_budget: Option<u64>,
    /// Loaded message-table dictionaries, keyed by fact table name.
    /// Invalidated on any mutating request — predict sweeps between
    /// mutations pay the table scan once.
    scorer_cache: Mutex<HashMap<String, Arc<MessageIndex>>>,
}

impl ServeState {
    fn new(
        db: Database,
        opts: ServeOptions,
        max_jobs: usize,
        session_budget: Option<u64>,
    ) -> ServeState {
        ServeState {
            db,
            opts,
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            max_jobs,
            session_budget,
            scorer_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Has the fault-injection threshold been crossed (or `kill` called)?
    fn failed(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
            || self
                .opts
                .fail_after
                .is_some_and(|n| self.requests.load(Ordering::Relaxed) >= n)
    }

    /// The message-table dictionary for `spec`, loaded once and cached.
    fn scorer_index(&self, spec: &ScorerSpec) -> BackendResult<Arc<MessageIndex>> {
        if let Some(idx) = self.scorer_cache.lock().get(&spec.fact_table) {
            return Ok(Arc::clone(idx));
        }
        let idx = Arc::new(MessageIndex::load(spec, &mut |n| self.db.snapshot(n))?);
        let mut cache = self.scorer_cache.lock();
        if cache.len() >= 8 {
            cache.clear();
        }
        cache.insert(spec.fact_table.clone(), Arc::clone(&idx));
        Ok(idx)
    }
}

/// Per-connection state: open split-protocol handles and the session's
/// load budget. Handles live and die with their connection — a vanished
/// client cannot leak state past its socket.
struct Session {
    conn_id: u64,
    splits: std::collections::HashMap<u64, LocalSplitState>,
    next_split: u64,
    /// Bytes bulk-loaded via `CreateTable` on this connection (frame
    /// sizes, the number the wire actually carried).
    bytes_loaded: u64,
}

impl Session {
    fn new(conn_id: u64) -> Session {
        Session {
            conn_id,
            splits: std::collections::HashMap::new(),
            next_split: 0,
            bytes_loaded: 0,
        }
    }
}

/// Handle one `Split*` request against the connection's session.
fn handle_split_request(db: &Database, session: &mut Session, req: Request) -> Response {
    match req {
        Request::SplitOpen {
            sql,
            key_col,
            c0_col,
            c1_col,
            specs,
        } => {
            let specs: Option<Vec<MergeSpec>> =
                specs.iter().map(|&t| MergeSpec::from_tag(t)).collect();
            let Some(specs) = specs else {
                return Response::Err(EngineError::Other("bad merge-spec tag".into()));
            };
            let table = match db.execute(&sql) {
                Ok(t) => t,
                Err(e) => return Response::Err(e),
            };
            if [key_col, c0_col, c1_col]
                .iter()
                .any(|&c| c as usize >= table.num_columns())
                || specs.len() != table.num_columns()
            {
                return Response::Err(EngineError::Other(
                    "split spec does not match the absorbed result".into(),
                ));
            }
            let spec = SplitSpec {
                key_col: key_col as usize,
                c0_col: c0_col as usize,
                c1_col: c1_col as usize,
                specs,
            };
            match LocalSplitState::build(table, spec) {
                // Protocol inapplicable here: hand the absorbed result
                // back so the client's dense fallback needs no second
                // execution.
                Err(table) => Response::Table(table),
                Ok(state) => {
                    let rows = state.num_rows() as u64;
                    let id = session.next_split;
                    session.next_split += 1;
                    session.splits.insert(id, state);
                    Response::SplitOpened(id, rows)
                }
            }
        }
        Request::SplitClose { id } => {
            session.splits.remove(&id);
            Response::Unit
        }
        Request::SplitBoundaries { id, .. }
        | Request::SplitSummaries { id, .. }
        | Request::SplitRefine { id, .. }
        | Request::SplitFetch { id, .. } => {
            let Some(state) = session.splits.get(&id) else {
                return Response::Err(EngineError::Other(format!("unknown split handle {id}")));
            };
            let result = match req {
                Request::SplitBoundaries { k, .. } => state
                    .boundaries(k as usize)
                    .map(|keys| Response::Table(keys_to_table(&keys))),
                Request::SplitSummaries { grid, .. } => state
                    .summaries(&keys_from_table(&grid))
                    .map(|s| Response::Table(summaries_to_table(&s))),
                Request::SplitRefine { grid, targets, .. } => {
                    let targets: Vec<(usize, usize)> = targets
                        .iter()
                        .map(|&(j, per)| (j as usize, per as usize))
                        .collect();
                    let grid = keys_from_table(&grid);
                    if targets.iter().any(|&(j, _)| j >= grid.len()) {
                        return Response::Err(EngineError::Other(
                            "refine interval out of grid range".into(),
                        ));
                    }
                    state
                        .refine(&grid, &targets)
                        .map(|keys| Response::Table(keys_to_table(&keys)))
                }
                Request::SplitFetch { grid, retain, .. } => {
                    let grid = keys_from_table(&grid);
                    if retain.len() != grid.len() {
                        return Response::Err(EngineError::Other(
                            "retain mask does not match the grid".into(),
                        ));
                    }
                    state.fetch(&grid, &retain).map(Response::Table)
                }
                _ => unreachable!("outer match covers the split requests"),
            };
            result.unwrap_or_else(Response::Err)
        }
        _ => unreachable!("caller routes only split requests here"),
    }
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// Admit (or reject) a job submission, register it, and hand it to a
/// worker thread.
fn submit_job(state: &Arc<ServeState>, session: &Session, spec: JobSpec) -> Response {
    {
        let jobs = state.jobs.lock();
        let active = jobs
            .values()
            .filter(|j| j.progress.lock().is_active())
            .count();
        if active >= state.max_jobs {
            // Typed backpressure on a healthy connection — the client
            // retries later instead of timing out against a hang.
            return Response::Busy(format!(
                "{active} training jobs already queued or running (limit {})",
                state.max_jobs
            ));
        }
    }
    let id = state.next_job.fetch_add(1, Ordering::Relaxed);
    let handle = Arc::new(JobHandle {
        id,
        owner: session.conn_id,
        cancel: AtomicBool::new(false),
        progress: Mutex::new(JobProgress::Queued),
    });
    state.jobs.lock().insert(id, Arc::clone(&handle));
    let st = Arc::clone(state);
    std::thread::spawn(move || run_job(&st, &handle, spec));
    Response::JobSubmitted(id)
}

/// Worker-thread body: drive one job from `Queued` to a terminal state.
fn run_job(state: &Arc<ServeState>, handle: &Arc<JobHandle>, spec: JobSpec) {
    if handle.cancel.load(Ordering::Relaxed) {
        *handle.progress.lock() = JobProgress::Cancelled;
        return;
    }
    *handle.progress.lock() = JobProgress::Running { iterations: 0 };
    let outcome = train_job(state, handle, &spec);
    let mut p = handle.progress.lock();
    *p = match outcome {
        Err(msg) => JobProgress::Failed(msg),
        Ok(compiled) => {
            let iterations = match *p {
                JobProgress::Running { iterations } => iterations,
                _ => 0,
            };
            if handle.cancel.load(Ordering::Relaxed) {
                // The training loop broke early; the dataset guard has
                // already dropped every `jb_` temp table it created.
                JobProgress::Cancelled
            } else {
                JobProgress::Done {
                    iterations,
                    spec: compiled,
                }
            }
        }
    };
}

/// Train the job's model and, when a `key_column` was named, compile it
/// into `jb_job{id}_`-prefixed message tables that outlive training.
fn train_job(
    state: &Arc<ServeState>,
    handle: &Arc<JobHandle>,
    spec: &JobSpec,
) -> Result<Option<ScorerSpec>, String> {
    let err = |e: EngineError| e.to_string();
    let mut graph = JoinGraph::new();
    for (name, features) in &spec.relations {
        let refs: Vec<&str> = features.iter().map(String::as_str).collect();
        graph.add_relation(name, &refs).map_err(|e| e.to_string())?;
    }
    for (a, b, keys) in &spec.edges {
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        graph.add_edge(a, b, &refs).map_err(|e| e.to_string())?;
    }
    let set = Dataset::new(&state.db, graph, &spec.target_relation, &spec.target_column)
        .map_err(|e| e.to_string())?;
    let params = TrainParams {
        num_iterations: spec.num_iterations as usize,
        num_leaves: spec.num_leaves as usize,
        learning_rate: spec.learning_rate,
        leaf_quantization: spec.leaf_quantization,
        seed: spec.seed,
        ..TrainParams::default()
    };
    let model = train_gbm_cb(&set, &params, |iter, _| {
        *handle.progress.lock() = JobProgress::Running {
            iterations: iter as u64 + 1,
        };
        !handle.cancel.load(Ordering::Relaxed)
    })
    .map_err(|e| e.to_string())?;
    if handle.cancel.load(Ordering::Relaxed) {
        return Ok(None);
    }
    match &spec.key_column {
        None => Ok(None),
        Some(key) => {
            // Not dataset temps: the `jb_job{id}_` tables must survive
            // the dataset guard so `PredictBatch { job }` can score.
            let mut n = 0u32;
            let prefix = format!("jb_job{}", handle.id);
            let compiled = compile_messages(&state.db, &set.graph, &model, key, &mut |hint| {
                let name = format!("{prefix}_{hint}_{n}");
                n += 1;
                name
            })
            .map_err(err)?;
            Ok(Some(compiled))
        }
    }
}

/// Serve one `PredictBatch` request: resolve the scorer spec (from a
/// finished job or inline), evaluate against the cached message-table
/// dictionary.
fn predict_batch_response(
    state: &ServeState,
    job: Option<u64>,
    spec: Option<Box<ScorerSpec>>,
    keys: &[i64],
    partial: bool,
) -> Response {
    let fail = |m: String| Response::Err(EngineError::Other(m));
    let spec: ScorerSpec = match (job, spec) {
        (Some(id), None) => {
            let handle = state.jobs.lock().get(&id).cloned();
            let Some(handle) = handle else {
                return fail(format!("unknown job id {id}"));
            };
            let p = handle.progress.lock();
            match &*p {
                JobProgress::Done { spec: Some(s), .. } => s.clone(),
                JobProgress::Done { spec: None, .. } => {
                    return fail(format!(
                        "job {id} trained without a key_column; no message tables to score"
                    ))
                }
                JobProgress::Queued => return fail(format!("job {id} is still queued")),
                JobProgress::Running { .. } => return fail(format!("job {id} is still running")),
                JobProgress::Failed(m) => return fail(format!("job {id} failed: {m}")),
                JobProgress::Cancelled => return fail(format!("job {id} was cancelled")),
            }
        }
        (None, Some(s)) => *s,
        _ => return fail("PredictBatch requires exactly one of job id or scorer spec".into()),
    };
    let idx = match state.scorer_index(&spec) {
        Ok(i) => i,
        Err(e) => return Response::Err(e),
    };
    // Partial mode: shard-resident scoring starts from 0 so the
    // coordinator adds `init_score` exactly once per key.
    let start = if partial { 0.0 } else { spec.init_score };
    match idx.eval_batch(keys, start) {
        Ok(rs) => Response::Scores {
            found: rs.iter().map(|r| r.0).collect(),
            scores: rs.iter().map(|r| r.1).collect(),
        },
        Err(e) => Response::Err(e),
    }
}

/// Execute one decoded request against the hosted engine.
fn handle_request(state: &Arc<ServeState>, session: &Session, req: Request) -> Response {
    let db = &state.db;
    let table = |r: Result<Table, EngineError>| match r {
        Ok(t) => Response::Table(t),
        Err(e) => Response::Err(e),
    };
    match req {
        Request::Hello { magic, version } => {
            if magic != MAGIC {
                Response::Err(EngineError::Other("bad protocol magic".into()))
            } else if version != VERSION {
                Response::Err(EngineError::Other(format!(
                    "protocol version mismatch: client {version}, server {VERSION}"
                )))
            } else {
                Response::Caps {
                    column_swap: db.config().allow_swap,
                }
            }
        }
        Request::Execute { sql } => {
            // Any statement may rewrite a message table: drop cached
            // dictionaries rather than risk serving stale scores.
            state.scorer_cache.lock().clear();
            table(db.execute(&sql))
        }
        Request::CreateTable { name, table: t } => {
            state.scorer_cache.lock().clear();
            match db.create_table(&name, t) {
                Ok(()) => Response::Unit,
                Err(e) => Response::Err(e),
            }
        }
        Request::Snapshot { name } => table(db.snapshot(&name)),
        Request::ColumnNames { name } => match db.column_names(&name) {
            Ok(names) => Response::Names(names),
            Err(e) => Response::Err(e),
        },
        Request::ColumnDtype { table, column } => match db.column_dtype(&table, &column) {
            Ok(d) => Response::Dtype(d),
            Err(e) => Response::Err(e),
        },
        Request::HasTable { name } => Response::Bool(db.has_table(&name)),
        Request::RowCount { name } => match db.row_count(&name) {
            Ok(n) => Response::Count(n as u64),
            Err(e) => Response::Err(e),
        },
        // Tolerant drop and bounds-checked gather share the in-process
        // transport's implementation — one copy of the semantics for
        // local and remote shards.
        Request::DropTableIfExists { name } => {
            state.scorer_cache.lock().clear();
            match ShardTransport::drop_table(db, &name) {
                Ok(()) => Response::Unit,
                Err(e) => Response::Err(e),
            }
        }
        Request::GatherRows { name, rows } => table(ShardTransport::gather_rows(db, &name, &rows)),
        Request::TableNames => Response::Names(db.table_names()),
        Request::SubmitJob { spec } => submit_job(state, session, *spec),
        Request::PollJob { id } => match state.jobs.lock().get(&id) {
            Some(job) => job.progress.lock().response(),
            None => Response::Err(EngineError::Other(format!("unknown job id {id}"))),
        },
        Request::CancelJob { id } => {
            let job = state.jobs.lock().get(&id).cloned();
            match job {
                Some(job) => {
                    // Idempotent: cancelling a terminal job just reports
                    // its (unchanged) final state.
                    cancel_job(&job);
                    job.progress.lock().response()
                }
                None => Response::Err(EngineError::Other(format!("unknown job id {id}"))),
            }
        }
        Request::PredictBatch {
            job,
            spec,
            keys,
            partial,
        } => predict_batch_response(state, job, spec, &keys, partial),
        Request::SplitOpen { .. }
        | Request::SplitBoundaries { .. }
        | Request::SplitSummaries { .. }
        | Request::SplitRefine { .. }
        | Request::SplitFetch { .. }
        | Request::SplitClose { .. } => {
            // The connection loop routes these to the session-aware
            // handler first; reaching here is a protocol bug.
            Response::Err(EngineError::Other("split request outside a session".into()))
        }
    }
}

/// One connection's request loop. Ends on EOF, I/O error, or fault
/// injection. On exit, jobs this connection submitted that are still
/// queued or running get cancelled — a vanished client cannot pin
/// server resources.
fn serve_connection(state: &Arc<ServeState>, conn_id: u64, mut stream: TcpStream) {
    let mut session = Session::new(conn_id);
    serve_requests(state, &mut session, &mut stream);
    let owned: Vec<Arc<JobHandle>> = state
        .jobs
        .lock()
        .values()
        .filter(|j| j.owner == conn_id && j.progress.lock().is_active())
        .cloned()
        .collect();
    for job in owned {
        cancel_job(&job);
    }
}

fn serve_requests(state: &Arc<ServeState>, session: &mut Session, stream: &mut TcpStream) {
    loop {
        let payload = match read_frame(stream) {
            Ok(p) => p,
            Err(_) => return, // client went away (or kill() shut us down)
        };
        // Fault injection is checked *after* a request arrives — the
        // failure lands mid-round, between statements of a training run.
        state.requests.fetch_add(1, Ordering::Relaxed);
        if state.failed() {
            if state.opts.stall {
                // Hung process: never answer, hold the socket until the
                // client's read timeout fires (or kill() closes us).
                loop {
                    std::thread::sleep(Duration::from_millis(50));
                    if state.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                }
            }
            // Killed process: drop the connection, client sees EOF.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let resp = match decode_request(&payload) {
            Ok(
                req @ (Request::SplitOpen { .. }
                | Request::SplitBoundaries { .. }
                | Request::SplitSummaries { .. }
                | Request::SplitRefine { .. }
                | Request::SplitFetch { .. }
                | Request::SplitClose { .. }),
            ) => handle_split_request(&state.db, session, req),
            Ok(req) => {
                // Per-session load budget: meter `CreateTable` by the
                // bytes the wire actually carried, and reject — typed,
                // on a live connection — the frame that would exceed it.
                let over_budget = matches!(req, Request::CreateTable { .. })
                    && match state.session_budget {
                        None => {
                            session.bytes_loaded =
                                session.bytes_loaded.saturating_add(payload.len() as u64);
                            false
                        }
                        Some(budget) => {
                            let would = session.bytes_loaded.saturating_add(payload.len() as u64);
                            if would > budget {
                                true
                            } else {
                                session.bytes_loaded = would;
                                false
                            }
                        }
                    };
                if over_budget {
                    Response::Busy(format!(
                        "session load budget exhausted: {} bytes loaded, frame of {} would \
                         exceed the {}-byte cap",
                        session.bytes_loaded,
                        payload.len(),
                        state.session_budget.unwrap_or(0)
                    ))
                } else {
                    handle_request(state, session, req)
                }
            }
            Err(e) => Response::Err(e),
        };
        // A result too large for one frame becomes a *typed* error on a
        // live connection, not a silent hangup the client would read as
        // a crashed server.
        let mut out = encode_response(&resp);
        if out.len() > MAX_FRAME as usize {
            out = encode_response(&Response::Err(EngineError::Other(format!(
                "result frame of {} bytes exceeds the {MAX_FRAME}-byte wire limit; \
                 transfer large tables in parts",
                out.len()
            ))));
        }
        if write_frame(stream, &out).is_err() {
            return;
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => return,
        };
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if state.failed() && !state.opts.stall {
            // Refuse service once failed: drop fresh connections too.
            continue;
        }
        let _ = stream.set_nodelay(true);
        let id = state.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state.conns.lock().push((id, clone));
        }
        let st = Arc::clone(&state);
        std::thread::spawn(move || {
            serve_connection(&st, id, stream);
            st.conns.lock().retain(|(i, _)| *i != id);
        });
    }
}

/// Serve `db` on `listener` until the process exits.
#[deprecated(note = "use WireServer::builder(db).serve(listener)")]
pub fn serve(listener: TcpListener, db: Database, opts: ServeOptions) {
    let mut b = WireServer::builder(db).stall(opts.stall);
    if let Some(n) = opts.fail_after {
        b = b.fail_after(n);
    }
    b.serve(listener);
}

/// Configures a [`WireServer`]: fault injection for the chaos tests, job
/// admission control, and the per-session load budget.
///
/// ```no_run
/// # use joinboost::backend::WireServer;
/// # use joinboost_engine::Database;
/// let server = WireServer::builder(Database::in_memory())
///     .max_jobs(2)
///     .session_budget_bytes(64 << 20)
///     .spawn()
///     .unwrap();
/// ```
pub struct WireServerBuilder {
    db: Database,
    opts: ServeOptions,
    max_jobs: usize,
    session_budget: Option<u64>,
}

impl WireServerBuilder {
    /// Fault injection: fail (hang or drop, per [`Self::stall`]) after
    /// `n` requests.
    pub fn fail_after(mut self, n: u64) -> WireServerBuilder {
        self.opts.fail_after = Some(n);
        self
    }

    /// Fault injection mode: `true` hangs the connection when failed,
    /// `false` (default) drops it.
    pub fn stall(mut self, stall: bool) -> WireServerBuilder {
        self.opts.stall = stall;
        self
    }

    /// Admission control: at most `n` training jobs queued + running
    /// (default 4). Excess submissions get a typed
    /// [`Response::Busy`](super::wire::Response::Busy) rejection, not a
    /// hang.
    pub fn max_jobs(mut self, n: usize) -> WireServerBuilder {
        self.max_jobs = n;
        self
    }

    /// Admission control: cap the bytes each session may bulk-load via
    /// `CreateTable` (default unlimited).
    pub fn session_budget_bytes(mut self, bytes: u64) -> WireServerBuilder {
        self.session_budget = Some(bytes);
        self
    }

    fn state(self) -> Arc<ServeState> {
        Arc::new(ServeState::new(
            self.db,
            self.opts,
            self.max_jobs,
            self.session_budget,
        ))
    }

    /// Bind an ephemeral loopback port and serve on a background thread.
    pub fn spawn(self) -> io::Result<WireServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let state = self.state();
        let st = Arc::clone(&state);
        let accept = std::thread::spawn(move || accept_loop(listener, st));
        Ok(WireServer {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// Serve on `listener` until the process exits — the blocking entry
    /// point the `shard_server` binary uses; each accepted connection
    /// still gets its own thread.
    pub fn serve(self, listener: TcpListener) {
        accept_loop(listener, self.state());
    }
}

/// An in-process wire server: the full remote protocol over a real
/// loopback TCP socket, hosted on a background thread. What the examples,
/// experiments and most tests use; the `shard_server` binary provides the
/// same loop as a standalone process.
pub struct WireServer {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Start configuring a server for `db` — see [`WireServerBuilder`].
    pub fn builder(db: Database) -> WireServerBuilder {
        WireServerBuilder {
            db,
            opts: ServeOptions::default(),
            max_jobs: 4,
            session_budget: None,
        }
    }

    /// Bind an ephemeral loopback port and serve `db` on a background
    /// thread.
    #[deprecated(note = "use WireServer::builder(db).spawn()")]
    pub fn spawn(db: Database, opts: ServeOptions) -> io::Result<WireServer> {
        let mut b = WireServer::builder(db).stall(opts.stall);
        if let Some(n) = opts.fail_after {
            b = b.fail_after(n);
        }
        b.spawn()
    }

    /// The server's socket address (`127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The hosted engine — tests use it to assert on server-side state
    /// (temp-table cleanup, concurrent clients' tables).
    pub fn database(&self) -> &Database {
        &self.state.db
    }

    /// Requests received so far (across all connections).
    pub fn requests(&self) -> u64 {
        self.state.requests.load(Ordering::Relaxed)
    }

    /// Kill the server: stop accepting and sever every live connection.
    /// Clients observe the same thing a crashed process produces.
    pub fn kill(&mut self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
        for (_, c) in self.state.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.kill();
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side transport knobs.
#[derive(Debug, Clone, Copy)]
pub struct RemoteOptions {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Bound on every request/response exchange (read + write timeouts on
    /// the socket): a dead or hung server surfaces as an error after at
    /// most this long, never as a hang.
    pub io_timeout: Duration,
}

impl Default for RemoteOptions {
    fn default() -> Self {
        RemoteOptions {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// One framed connection to a wire server: the remote flavor of
/// [`ShardTransport`], and the engine half of [`RemoteBackend`].
///
/// A connection serializes its requests behind a mutex (the protocol is
/// strictly request/response); the sharded fan-out gets its parallelism
/// from holding one connection per shard. The first transport failure
/// *poisons* the connection: every later call fails immediately with the
/// original error, so cleanup paths touching a dead shard cost nothing —
/// they do not re-wait on timeouts.
pub struct RemoteConnection {
    stream: Mutex<TcpStream>,
    addr: String,
    column_swap: bool,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    requests: AtomicU64,
    poisoned: Mutex<Option<String>>,
}

/// Configures a [`RemoteConnection`]: address plus transport timeouts.
///
/// ```no_run
/// # use std::time::Duration;
/// # use joinboost::backend::RemoteConnection;
/// let conn = RemoteConnection::builder("127.0.0.1:7654")
///     .connect_timeout(Duration::from_secs(1))
///     .io_timeout(Duration::from_secs(10))
///     .connect()
///     .unwrap();
/// ```
pub struct RemoteConnectionBuilder {
    addr: String,
    opts: RemoteOptions,
}

impl RemoteConnectionBuilder {
    /// Bound on establishing the TCP connection (default 5s).
    pub fn connect_timeout(mut self, t: Duration) -> RemoteConnectionBuilder {
        self.opts.connect_timeout = t;
        self
    }

    /// Bound on every request/response exchange (default 30s).
    pub fn io_timeout(mut self, t: Duration) -> RemoteConnectionBuilder {
        self.opts.io_timeout = t;
        self
    }

    /// Connect, handshake, and learn the server's capabilities.
    pub fn connect(self) -> BackendResult<RemoteConnection> {
        RemoteConnection::open(&self.addr, self.opts)
    }
}

impl RemoteConnection {
    /// Start configuring a connection to `addr` — see
    /// [`RemoteConnectionBuilder`].
    pub fn builder(addr: impl ToSocketAddrs + std::fmt::Display) -> RemoteConnectionBuilder {
        RemoteConnectionBuilder {
            addr: addr.to_string(),
            opts: RemoteOptions::default(),
        }
    }

    /// Connect, handshake, and learn the server's capabilities.
    #[deprecated(note = "use RemoteConnection::builder(addr).connect()")]
    pub fn connect(
        addr: impl ToSocketAddrs + std::fmt::Display,
    ) -> BackendResult<RemoteConnection> {
        RemoteConnection::builder(addr).connect()
    }

    /// [`RemoteConnection::builder`] with explicit timeouts.
    #[deprecated(note = "use RemoteConnection::builder(addr) and its timeout setters")]
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        opts: RemoteOptions,
    ) -> BackendResult<RemoteConnection> {
        RemoteConnection::open(&addr.to_string(), opts)
    }

    fn open(addr: &str, opts: RemoteOptions) -> BackendResult<RemoteConnection> {
        let label = addr.to_string();
        let ctx = |e: io::Error| {
            EngineError::Other(format!("shard server at {label}: connect failed: {e}"))
        };
        let sock_addr =
            addr.to_socket_addrs().map_err(ctx)?.next().ok_or_else(|| {
                EngineError::Other(format!("shard server at {label}: no address"))
            })?;
        let stream = TcpStream::connect_timeout(&sock_addr, opts.connect_timeout).map_err(ctx)?;
        stream
            .set_read_timeout(Some(opts.io_timeout))
            .map_err(ctx)?;
        stream
            .set_write_timeout(Some(opts.io_timeout))
            .map_err(ctx)?;
        let _ = stream.set_nodelay(true);
        let conn = RemoteConnection {
            stream: Mutex::new(stream),
            addr: label,
            column_swap: false,
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            poisoned: Mutex::new(None),
        };
        let column_swap = match conn.call(&Request::Hello {
            magic: MAGIC,
            version: VERSION,
        })? {
            Response::Caps { column_swap } => column_swap,
            other => {
                return Err(EngineError::Other(format!(
                    "shard server at {}: bad handshake reply: {other:?}",
                    conn.addr
                )))
            }
        };
        Ok(RemoteConnection {
            column_swap,
            ..conn
        })
    }

    /// The address this connection talks to (diagnostics).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the server's engine accepts `SWAP COLUMN`.
    pub fn server_column_swap(&self) -> bool {
        self.column_swap
    }

    /// `(bytes_sent, bytes_received)` on this connection, framing
    /// included — the real shuffle volume of a distributed run.
    pub fn wire_byte_counts(&self) -> (u64, u64) {
        (
            self.bytes_sent.load(Ordering::Relaxed),
            self.bytes_received.load(Ordering::Relaxed),
        )
    }

    /// Requests completed on this connection.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// One request/response exchange. Transport failures poison the
    /// connection and carry the shard address; server-side engine errors
    /// come back as the exact [`EngineError`] variant the engine raised.
    fn request(&self, req: &Request) -> BackendResult<Response> {
        if let Some(why) = self.poisoned.lock().as_ref() {
            return Err(EngineError::Other(format!(
                "shard server at {}: connection previously failed: {why}",
                self.addr
            )));
        }
        let payload = encode_request(req);
        if payload.len() > MAX_FRAME as usize {
            // A purely client-side limit: nothing touched the socket, so
            // the connection stays healthy — no poison, typed error.
            return Err(EngineError::Other(format!(
                "request frame of {} bytes exceeds the {MAX_FRAME}-byte wire limit; \
                 transfer large tables in parts",
                payload.len()
            )));
        }
        let result = self.exchange(&payload);
        if let Err(e) = &result {
            let mut p = self.poisoned.lock();
            if p.is_none() {
                *p = Some(e.to_string());
            }
        }
        result.map_err(|e| EngineError::Other(format!("shard server at {}: {e}", self.addr)))
    }

    fn exchange(&self, payload: &[u8]) -> Result<Response, io::Error> {
        let mut stream = self.stream.lock();
        let sent = write_frame(&mut *stream, payload)?;
        self.bytes_sent.fetch_add(sent as u64, Ordering::Relaxed);
        let frame = read_frame(&mut *stream)?;
        self.bytes_received
            .fetch_add(frame.len() as u64 + 4, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        decode_response(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Request + unwrap a server-side error into the engine error it was.
    /// An admission-control rejection becomes a typed `server busy` error
    /// — like `Response::Err`, it does *not* poison the connection.
    fn call(&self, req: &Request) -> BackendResult<Response> {
        match self.request(req)? {
            Response::Err(e) => Err(e),
            Response::Busy(m) => Err(EngineError::Other(format!(
                "shard server at {}: server busy: {m}",
                self.addr
            ))),
            ok => Ok(ok),
        }
    }

    fn unexpected(&self, what: &str, got: &Response) -> EngineError {
        EngineError::Other(format!(
            "shard server at {}: unexpected reply to {what}: {got:?}",
            self.addr
        ))
    }

    /// Execute one SQL statement given as text.
    pub fn execute_text(&self, sql: &str) -> BackendResult {
        match self.call(&Request::Execute { sql: sql.into() })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("Execute", &other)),
        }
    }

    /// Names of every table the server holds (diagnostics / tests).
    pub fn table_names(&self) -> BackendResult<Vec<String>> {
        match self.call(&Request::TableNames)? {
            Response::Names(n) => Ok(n),
            other => Err(self.unexpected("TableNames", &other)),
        }
    }

    /// One `PredictBatch` round trip, in any of its modes.
    fn predict_wire(
        &self,
        job: Option<u64>,
        spec: Option<&ScorerSpec>,
        keys: &[i64],
        partial: bool,
    ) -> BackendResult<Vec<(bool, f64)>> {
        match self.call(&Request::PredictBatch {
            job,
            spec: spec.map(|s| Box::new(s.clone())),
            keys: keys.to_vec(),
            partial,
        })? {
            Response::Scores { found, scores } => {
                if found.len() != keys.len() || scores.len() != keys.len() {
                    return Err(EngineError::Other(format!(
                        "shard server at {}: PredictBatch answered {} scores for {} keys",
                        self.addr,
                        scores.len(),
                        keys.len()
                    )));
                }
                Ok(found.into_iter().zip(scores).collect())
            }
            other => Err(self.unexpected("PredictBatch", &other)),
        }
    }
}

impl ShardTransport for RemoteConnection {
    fn execute(&self, stmt: &Statement) -> BackendResult {
        // SQL ships as text; the server re-parses the identical statement
        // (the round-trip fixed point of the SQL-text backend).
        self.execute_text(&stmt.to_string())
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        match self.call(&Request::CreateTable {
            name: name.into(),
            table,
        })? {
            Response::Unit => Ok(()),
            other => Err(self.unexpected("CreateTable", &other)),
        }
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        match self.call(&Request::Snapshot { name: name.into() })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("Snapshot", &other)),
        }
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        match self.call(&Request::GatherRows {
            name: name.into(),
            rows: rows.to_vec(),
        })? {
            Response::Table(t) => Ok(t),
            other => Err(self.unexpected("GatherRows", &other)),
        }
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        match self.call(&Request::ColumnNames { name: table.into() })? {
            Response::Names(n) => Ok(n),
            other => Err(self.unexpected("ColumnNames", &other)),
        }
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        match self.call(&Request::ColumnDtype {
            table: table.into(),
            column: column.into(),
        })? {
            Response::Dtype(d) => Ok(d),
            other => Err(self.unexpected("ColumnDtype", &other)),
        }
    }

    fn has_table(&self, name: &str) -> bool {
        matches!(
            self.call(&Request::HasTable { name: name.into() }),
            Ok(Response::Bool(true))
        )
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        match self.call(&Request::RowCount { name: name.into() })? {
            Response::Count(n) => Ok(n as usize),
            other => Err(self.unexpected("RowCount", &other)),
        }
    }

    fn drop_table(&self, name: &str) -> BackendResult<()> {
        match self.call(&Request::DropTableIfExists { name: name.into() })? {
            Response::Unit => Ok(()),
            other => Err(self.unexpected("DropTableIfExists", &other)),
        }
    }

    fn split_open(&self, stmt: &Statement, spec: &SplitSpec) -> BackendResult<SplitOpen<'_>> {
        // The absorbed result stays on the server; only the protocol's
        // messages (boundaries, summaries, candidate rows) will cross.
        let req = Request::SplitOpen {
            sql: stmt.to_string(),
            key_col: spec.key_col as u32,
            c0_col: spec.c0_col as u32,
            c1_col: spec.c1_col as u32,
            specs: spec.specs.iter().map(|s| s.to_tag()).collect(),
        };
        match self.call(&req)? {
            Response::SplitOpened(id, rows) => {
                Ok(SplitOpen::Protocol(Box::new(RemoteSplitHandle {
                    conn: self,
                    id,
                    rows: rows as usize,
                })))
            }
            // Protocol inapplicable on the server's data: the absorbed
            // result came back instead, ready for the dense merge.
            Response::Table(t) => Ok(SplitOpen::Dense(t)),
            other => Err(self.unexpected("SplitOpen", &other)),
        }
    }

    fn predict_partials(&self, spec: &ScorerSpec, keys: &[i64]) -> BackendResult<Vec<(bool, f64)>> {
        // Shard-resident scoring: only keys and partial sums cross the
        // wire, never message tables.
        self.predict_wire(None, Some(spec), keys, true)
    }

    fn wire_bytes(&self) -> (u64, u64) {
        self.wire_byte_counts()
    }
}

/// Client proxy of a server-side split handle: every method is one
/// request/response on the shard's connection.
struct RemoteSplitHandle<'a> {
    conn: &'a RemoteConnection,
    id: u64,
    rows: usize,
}

impl RemoteSplitHandle<'_> {
    fn table_reply(&self, what: &str, req: &Request) -> BackendResult<Table> {
        match self.conn.call(req)? {
            Response::Table(t) => Ok(t),
            other => Err(self.conn.unexpected(what, &other)),
        }
    }
}

impl SplitHandle for RemoteSplitHandle<'_> {
    fn num_rows(&self) -> usize {
        self.rows
    }

    fn boundaries(&self, k: usize) -> BackendResult<Vec<Datum>> {
        let t = self.table_reply(
            "SplitBoundaries",
            &Request::SplitBoundaries {
                id: self.id,
                k: k as u32,
            },
        )?;
        Ok(keys_from_table(&t))
    }

    fn summaries(&self, grid: &[Datum]) -> BackendResult<Vec<IntervalSummary>> {
        let t = self.table_reply(
            "SplitSummaries",
            &Request::SplitSummaries {
                id: self.id,
                grid: keys_to_table(grid),
            },
        )?;
        summaries_from_table(&t).ok_or_else(|| {
            EngineError::Other(format!(
                "shard server at {}: malformed split summaries",
                self.conn.addr
            ))
        })
    }

    fn refine(&self, grid: &[Datum], targets: &[(usize, usize)]) -> BackendResult<Vec<Datum>> {
        let t = self.table_reply(
            "SplitRefine",
            &Request::SplitRefine {
                id: self.id,
                grid: keys_to_table(grid),
                targets: targets
                    .iter()
                    .map(|&(j, per)| (j as u32, per as u32))
                    .collect(),
            },
        )?;
        Ok(keys_from_table(&t))
    }

    fn fetch(&self, grid: &[Datum], retain: &[bool]) -> BackendResult<Table> {
        self.table_reply(
            "SplitFetch",
            &Request::SplitFetch {
                id: self.id,
                grid: keys_to_table(grid),
                retain: retain.to_vec(),
            },
        )
    }

    fn into_all_rows(self: Box<Self>) -> BackendResult<Table> {
        // The dense fallback: one interval covering every key ships the
        // whole absorbed result — exactly the cost the protocol avoids
        // when it does apply. (Drop then releases the server-side state.)
        let bounds = self.boundaries(2)?;
        match bounds.last() {
            None => self.fetch(&[], &[]),
            Some(max) => {
                let max = max.clone();
                self.fetch(&[max], &[true])
            }
        }
    }
}

impl Drop for RemoteSplitHandle<'_> {
    fn drop(&mut self) {
        // Best-effort release of the server-side state; a dead
        // connection already dropped it with the session.
        let _ = self.conn.call(&Request::SplitClose { id: self.id });
    }
}

// ---------------------------------------------------------------------------
// RemoteBackend
// ---------------------------------------------------------------------------

/// A full [`SqlBackend`] over one remote engine process.
///
/// Every statement ships as SQL text; tables move as framed columnar
/// blocks. Capabilities are learned from the server's handshake;
/// [`BackendCapabilities::external_interop`] is always off (an
/// `Arc`-shared dataframe cannot cross a process boundary), so the
/// trainer's capability checks reject the `DP` update path up front.
pub struct RemoteBackend {
    conn: RemoteConnection,
    label: String,
    statements: AtomicU64,
    selects: AtomicU64,
}

/// Configures a [`RemoteBackend`]: address plus transport timeouts.
pub struct RemoteBackendBuilder {
    inner: RemoteConnectionBuilder,
}

impl RemoteBackendBuilder {
    /// Bound on establishing the TCP connection (default 5s).
    pub fn connect_timeout(mut self, t: Duration) -> RemoteBackendBuilder {
        self.inner = self.inner.connect_timeout(t);
        self
    }

    /// Bound on every request/response exchange (default 30s).
    pub fn io_timeout(mut self, t: Duration) -> RemoteBackendBuilder {
        self.inner = self.inner.io_timeout(t);
        self
    }

    /// Connect and wrap the connection as a full [`SqlBackend`].
    pub fn connect(self) -> BackendResult<RemoteBackend> {
        Ok(RemoteBackend::from_connection(self.inner.connect()?))
    }
}

impl RemoteBackend {
    /// Start configuring a backend for `addr` — see
    /// [`RemoteBackendBuilder`].
    pub fn builder(addr: impl ToSocketAddrs + std::fmt::Display) -> RemoteBackendBuilder {
        RemoteBackendBuilder {
            inner: RemoteConnection::builder(addr),
        }
    }

    fn from_connection(conn: RemoteConnection) -> RemoteBackend {
        RemoteBackend {
            label: "remote".to_string(),
            conn,
            statements: AtomicU64::new(0),
            selects: AtomicU64::new(0),
        }
    }

    /// Connect to a wire server with default timeouts.
    #[deprecated(note = "use RemoteBackend::builder(addr).connect()")]
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> BackendResult<RemoteBackend> {
        RemoteBackend::builder(addr).connect()
    }

    /// Connect with explicit timeouts.
    #[deprecated(note = "use RemoteBackend::builder(addr) and its timeout setters")]
    pub fn connect_with(
        addr: impl ToSocketAddrs + std::fmt::Display,
        opts: RemoteOptions,
    ) -> BackendResult<RemoteBackend> {
        Ok(RemoteBackend::from_connection(RemoteConnection::open(
            &addr.to_string(),
            opts,
        )?))
    }

    /// The underlying connection (byte counters, diagnostics).
    pub fn connection(&self) -> &RemoteConnection {
        &self.conn
    }

    fn count(&self, sql: &str) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        let head = sql.trim_start();
        // get(..6) rather than [..6]: byte 6 of arbitrary text may not be
        // a char boundary.
        if head
            .get(..6)
            .is_some_and(|h| h.eq_ignore_ascii_case("SELECT"))
        {
            self.selects.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl SqlBackend for RemoteBackend {
    fn name(&self) -> &str {
        &self.label
    }

    fn capabilities(&self) -> BackendCapabilities {
        BackendCapabilities {
            window_functions: true,
            ast_statements: false,
            column_swap: self.conn.server_column_swap(),
            external_interop: false,
            shards: 1,
        }
    }

    fn execute(&self, sql: &str) -> BackendResult {
        self.count(sql);
        self.conn.execute_text(sql)
    }

    fn execute_ast(&self, stmt: &Statement) -> BackendResult {
        let sql = stmt.to_string();
        self.count(&sql);
        self.conn.execute_text(&sql)
    }

    fn create_table(&self, name: &str, table: Table) -> BackendResult<()> {
        ShardTransport::create_table(&self.conn, name, table)
    }

    fn snapshot(&self, name: &str) -> BackendResult<Table> {
        ShardTransport::snapshot(&self.conn, name)
    }

    fn column_names(&self, table: &str) -> BackendResult<Vec<String>> {
        ShardTransport::column_names(&self.conn, table)
    }

    fn column_dtype(&self, table: &str, column: &str) -> BackendResult<DataType> {
        ShardTransport::column_dtype(&self.conn, table, column)
    }

    fn has_table(&self, name: &str) -> bool {
        ShardTransport::has_table(&self.conn, name)
    }

    fn row_count(&self, name: &str) -> BackendResult<usize> {
        ShardTransport::row_count(&self.conn, name)
    }

    fn gather_rows(&self, name: &str, rows: &[u32]) -> BackendResult<Table> {
        // Ship only the sample, not the snapshot it came from.
        ShardTransport::gather_rows(&self.conn, name, rows)
    }

    fn drop_table_if_exists(&self, name: &str) -> BackendResult<()> {
        ShardTransport::drop_table(&self.conn, name)
    }

    fn predict_batch(&self, spec: &ScorerSpec, keys: &[i64]) -> BackendResult<Vec<(bool, f64)>> {
        // Full scores (init included): the server holds every message
        // table, so no coordinator-side merge is needed.
        self.conn.predict_wire(None, Some(spec), keys, false)
    }

    fn stats(&self) -> BackendStats {
        let (bytes_sent, bytes_received) = self.conn.wire_byte_counts();
        BackendStats {
            statements: self.statements.load(Ordering::Relaxed),
            selects: self.selects.load(Ordering::Relaxed),
            bytes_sent,
            bytes_received,
            ..BackendStats::default()
        }
    }
}

// ---------------------------------------------------------------------------
// ServeClient
// ---------------------------------------------------------------------------

/// A client-visible job state, decoded from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Registered, not yet picked up by a worker.
    Queued,
    /// Training; `iterations` boosting rounds finished so far.
    Running {
        /// Boosting iterations completed.
        iterations: u64,
    },
    /// Trained successfully; ready for `PredictBatch`.
    Done {
        /// Boosting iterations completed.
        iterations: u64,
    },
    /// Training raised an error (the server's message).
    Failed(String),
    /// Cancelled — explicitly or because its submitter disconnected.
    Cancelled,
}

impl JobStatus {
    /// Terminal states never change again; polling can stop.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done { .. } | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }
}

/// What a serving call can fail with. `Busy` is backpressure on a
/// healthy connection — retry later; `Engine` carries everything else
/// (transport failures, server-side errors).
#[derive(Debug)]
pub enum ServeError {
    /// The server declined admission (job limit or session budget). The
    /// connection is still usable.
    Busy(String),
    /// A transport or engine error.
    Engine(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy(m) => write!(f, "server busy: {m}"),
            ServeError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

/// The serving-tier client: submit training jobs, poll and cancel them,
/// and score key batches against the message tables a finished job
/// compiled — all over one wire connection.
///
/// ```no_run
/// # use joinboost::backend::{JobSpec, ServeClient};
/// let client = ServeClient::connect("127.0.0.1:7654").unwrap();
/// let spec = JobSpec {
///     relations: vec![("sales".into(), vec![])],
///     edges: vec![],
///     target_relation: "sales".into(),
///     target_column: "net_profit".into(),
///     key_column: Some("sale_id".into()),
///     ..JobSpec::default()
/// };
/// let id = client.submit(&spec).unwrap();
/// let status = client.wait(id).unwrap();
/// let scores = client.predict(id, &[1, 2, 3]).unwrap();
/// ```
pub struct ServeClient {
    conn: RemoteConnection,
}

impl ServeClient {
    /// Connect to a wire server with default timeouts.
    pub fn connect(
        addr: impl ToSocketAddrs + std::fmt::Display,
    ) -> Result<ServeClient, ServeError> {
        Ok(ServeClient::from_connection(
            RemoteConnection::builder(addr).connect()?,
        ))
    }

    /// Wrap an existing connection (e.g. one built with custom timeouts).
    pub fn from_connection(conn: RemoteConnection) -> ServeClient {
        ServeClient { conn }
    }

    /// The underlying connection (byte counters, diagnostics).
    pub fn connection(&self) -> &RemoteConnection {
        &self.conn
    }

    /// Exchange, splitting `Busy` out of the error stream so callers can
    /// treat backpressure differently from failure.
    fn serve_call(&self, req: &Request) -> Result<Response, ServeError> {
        match self.conn.request(req)? {
            Response::Err(e) => Err(ServeError::Engine(e)),
            Response::Busy(m) => Err(ServeError::Busy(m)),
            ok => Ok(ok),
        }
    }

    fn status(&self, resp: Response) -> Result<JobStatus, ServeError> {
        match resp {
            Response::JobState {
                state,
                iterations,
                message,
            } => Ok(match state {
                0 => JobStatus::Queued,
                1 => JobStatus::Running { iterations },
                2 => JobStatus::Done { iterations },
                3 => JobStatus::Failed(message),
                _ => JobStatus::Cancelled,
            }),
            other => Err(ServeError::Engine(self.conn.unexpected("PollJob", &other))),
        }
    }

    /// Submit a training job; returns its id, or [`ServeError::Busy`]
    /// when the server's job limit is reached.
    pub fn submit(&self, spec: &JobSpec) -> Result<u64, ServeError> {
        match self.serve_call(&Request::SubmitJob {
            spec: Box::new(spec.clone()),
        })? {
            Response::JobSubmitted(id) => Ok(id),
            other => Err(ServeError::Engine(
                self.conn.unexpected("SubmitJob", &other),
            )),
        }
    }

    /// The job's current state. Unknown ids are an error naming the id.
    pub fn poll(&self, id: u64) -> Result<JobStatus, ServeError> {
        let resp = self.serve_call(&Request::PollJob { id })?;
        self.status(resp)
    }

    /// Request cancellation (idempotent) and report the state after it.
    /// A queued job dies immediately; a running one stops at its next
    /// iteration boundary.
    pub fn cancel(&self, id: u64) -> Result<JobStatus, ServeError> {
        let resp = self.serve_call(&Request::CancelJob { id })?;
        self.status(resp)
    }

    /// Poll every 10ms until the job reaches a terminal state.
    pub fn wait(&self, id: u64) -> Result<JobStatus, ServeError> {
        loop {
            let status = self.poll(id)?;
            if status.is_terminal() {
                return Ok(status);
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Score `keys` against the message tables job `id` compiled.
    /// `None` marks keys absent from the (implicit) join — exactly the
    /// rows a materialized inner join would not contain.
    pub fn predict(&self, id: u64, keys: &[i64]) -> Result<Vec<Option<f64>>, ServeError> {
        let rs = self
            .conn
            .predict_wire(Some(id), None, keys, false)
            .map_err(ServeError::Engine)?;
        Ok(rs.into_iter().map(|(f, s)| f.then_some(s)).collect())
    }

    /// Score `keys` against message tables described by an inline `spec`
    /// (deployed out-of-band, e.g. by [`FactorizedScorer`] compilation).
    ///
    /// [`FactorizedScorer`]: crate::serve::FactorizedScorer
    pub fn predict_spec(
        &self,
        spec: &ScorerSpec,
        keys: &[i64],
    ) -> Result<Vec<Option<f64>>, ServeError> {
        let rs = self
            .conn
            .predict_wire(None, Some(spec), keys, false)
            .map_err(ServeError::Engine)?;
        Ok(rs.into_iter().map(|(f, s)| f.then_some(s)).collect())
    }
}
