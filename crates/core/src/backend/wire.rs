//! The wire protocol of the remote backend: length-prefixed frames
//! carrying SQL *text* and columnar table blocks.
//!
//! Design (see `DESIGN.md` § "Wire protocol"):
//!
//! * **Framing** — every message is `[u32 LE length][payload]`; a frame is
//!   read fully or the connection is dead. Requests and responses are
//!   *multiplexed* (v4): the client may have many requests in flight on
//!   one socket, and matches each response to its request by sequence
//!   number. Oversized lengths (> [`MAX_FRAME`]) are rejected before
//!   any allocation, so a corrupt or malicious peer cannot OOM the reader.
//! * **Sessions and replay (v3/v4)** — the first frame on a connection is
//!   a raw [`Request::Hello`] carrying a client-generated *resume token*;
//!   every later request frame carries a `u64` monotone sequence number.
//!   v3 frames are `[u64 LE seq][encoded request]` with bare responses;
//!   v4 frames are `[u64 LE seq][u64 LE ack][encoded request]` and every
//!   response is `[u64 LE seq][encoded response]` so a pipelined client
//!   can match out-of-order-completed replies. The server keeps, per
//!   token, the encoded responses of every applied-but-unacknowledged
//!   request (`ack` = the client's lowest in-flight seq releases older
//!   entries): a reconnecting client that re-presents its token and
//!   re-issues its in-flight requests either gets the *cached* responses
//!   (applied but the reply was lost — replay of non-idempotent
//!   CREATE/UPDATE is therefore safe) or fresh executions (they never
//!   arrived). The server still answers v3 Hellos with v3 framing.
//! * **SQL travels as text** — [`Request::Execute`] carries the printed
//!   statement, leaning on the `print ∘ parse ∘ print` fixed-point proved
//!   by [`crate::backend::SqlTextBackend`]: the server re-parses exactly
//!   the statement the client's planner built.
//! * **Tables travel as columnar blocks** — type tag + contiguous values
//!   per column (f64s by bit pattern, strings as dictionary + codes,
//!   validity as a packed bitmap), so a decoded [`Table`] is *bit-exact*,
//!   not just value-equal: NaN payloads, `-0.0` and dictionary order all
//!   survive. The `wire_roundtrip` proptests pin this down.
//! * **Errors stay typed** — [`EngineError`] crosses the wire as a kind
//!   tag plus its field string, so a remote `UnknownTable` is the *same*
//!   variant the local engine would have produced; transport failures (and
//!   only those) map into [`EngineError::Other`] with the shard address
//!   attached.
//!
//! Everything here is synchronous `std::io` over any `Read`/`Write` pair —
//! the repo builds without tokio, and one OS thread per connection is
//! exactly the concurrency model the sharded fan-out already uses.

use std::io::{self, Read, Write};

use bytes::BufMut;

use joinboost_engine::column::ColumnData;
use joinboost_engine::table::ColumnMeta;
use joinboost_engine::{Column, DataType, EngineError, Table};

use crate::serve::ScorerSpec;
use crate::tree::{Split, SplitCondition, Tree, TreeNode};

/// A training job as submitted over the wire: the join graph by name
/// (the referenced tables must already be loaded on the server), the
/// target binding, and the training parameters the serving tier exposes.
///
/// `key_column` names a unique `Int` column on the target relation; when
/// set, a finished job compiles its model into message tables (see
/// [`crate::serve`]) so [`Request::PredictBatch`] can score keys against
/// it without a join.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// `(relation name, feature columns)` — one entry per table.
    pub relations: Vec<(String, Vec<String>)>,
    /// `(relation a, relation b, join key columns)` edges; `a` is the
    /// many side (the graph defaults to many-to-one toward `b`).
    pub edges: Vec<(String, String, Vec<String>)>,
    /// Relation holding the target column.
    pub target_relation: String,
    /// The target (label) column.
    pub target_column: String,
    /// Predict-key column on the target relation; `None` trains without
    /// deploying message tables.
    pub key_column: Option<String>,
    /// Boosting iterations.
    pub num_iterations: u32,
    /// Leaves per tree.
    pub num_leaves: u32,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Dyadic leaf grid (0 disables; see `DESIGN.md` § Backends).
    pub leaf_quantization: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for JobSpec {
    fn default() -> JobSpec {
        JobSpec {
            relations: Vec::new(),
            edges: Vec::new(),
            target_relation: String::new(),
            target_column: String::new(),
            key_column: None,
            num_iterations: 3,
            num_leaves: 8,
            learning_rate: 0.5,
            leaf_quantization: (2.0f64).powi(-10),
            seed: 42,
        }
    }
}

/// Protocol magic, sent in [`Request::Hello`]: `"JBWP"` (JoinBoost wire
/// protocol).
pub const MAGIC: u32 = 0x4a42_5750;

/// Protocol version; bumped on any incompatible codec change. The server
/// rejects a `Hello` with an *unknown* version instead of misdecoding,
/// but still speaks v3 framing to a v3 client (tolerant decode for old
/// clients).
/// Version 2 added the job/predict API (`SubmitJob` … `PredictBatch`).
/// Version 3 added the session resume token in `Hello` and the per-request
/// `[u64 LE seq]` envelope that makes reconnect-and-replay safe.
/// Version 4 added multiplexing (`[seq][ack]` request envelopes, `[seq]`
/// response envelopes, a replay *window* instead of a single slot) and the
/// delta-encoded split refinement messages ([`Request::SplitSummariesDelta`],
/// [`Request::SplitOpenBounds`]).
pub const VERSION: u32 = 4;

/// Oldest protocol version the server still accepts. A v3 client gets v3
/// framing (single-slot replay, bare responses) on its connection.
pub const MIN_VERSION: u32 = 3;

/// Upper bound on one frame's payload (64 MiB). Larger tables must be
/// loaded in parts; in practice JoinBoost's shard messages are orders of
/// magnitude smaller.
pub const MAX_FRAME: u32 = 64 << 20;

/// One client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: protocol magic + version + session resume token. Always
    /// the first (and only un-enveloped) frame on a connection. The server
    /// answers with [`Response::Caps`] or an error on a version mismatch.
    /// Re-presenting a token re-attaches the connection to that session's
    /// surviving state (split handles, temp tables, replay cache).
    Hello {
        /// Must equal [`MAGIC`].
        magic: u32,
        /// Must equal [`VERSION`].
        version: u32,
        /// Client-generated session resume token (nonzero in practice;
        /// absent on the wire for pre-v3 clients and decoded as 0 so the
        /// version check still produces a clean mismatch error).
        token: u64,
    },
    /// Execute one SQL statement given as text; the answer is
    /// [`Response::Table`] (empty for non-`SELECT`s).
    Execute {
        /// The statement, printed by the client's emitter.
        sql: String,
    },
    /// Bulk-load a table under the given name (columnar block).
    CreateTable {
        /// Table name to register.
        name: String,
        /// The table payload.
        table: Table,
    },
    /// Materialize a full scan of a table.
    Snapshot {
        /// Table to scan.
        name: String,
    },
    /// Column names of a table (schema lookup).
    ColumnNames {
        /// Table to describe.
        name: String,
    },
    /// Data type of one column.
    ColumnDtype {
        /// Table holding the column.
        table: String,
        /// Column to describe.
        column: String,
    },
    /// Does the table exist?
    HasTable {
        /// Table to probe.
        name: String,
    },
    /// Number of rows in a table.
    RowCount {
        /// Table to count.
        name: String,
    },
    /// Temp-table lifecycle: drop if present, succeed either way.
    DropTableIfExists {
        /// Table to drop.
        name: String,
    },
    /// Ship only the rows at the given snapshot-order positions (the
    /// messages-not-scans path of random-forest sampling).
    GatherRows {
        /// Table to sample from.
        name: String,
        /// Snapshot-order positions, in the order they should return.
        rows: Vec<u32>,
    },
    /// Names of every table the server currently holds (diagnostics; the
    /// fault-injection tests use it to prove temp-table cleanup).
    TableNames,
    /// Open a split-protocol handle: execute the absorbed per-value query
    /// and keep its sorted, prefix-summed result *server-side* (see
    /// [`crate::backend::split`]). The reply is
    /// [`Response::SplitOpened`].
    SplitOpen {
        /// The absorbed inner query, as text.
        sql: String,
        /// Column index of the single group key.
        key_col: u32,
        /// Column index of split component 0.
        c0_col: u32,
        /// Column index of split component 1.
        c1_col: u32,
        /// Per-column [`crate::backend::split::MergeSpec`] wire tags.
        specs: Vec<u8>,
    },
    /// Equal-count boundary keys of an open split handle (1-column table).
    SplitBoundaries {
        /// Handle from [`Response::SplitOpened`].
        id: u64,
        /// Number of boundaries requested.
        k: u32,
    },
    /// Per-interval boundary summaries for a grid (8-column table back).
    SplitSummaries {
        /// Handle from [`Response::SplitOpened`].
        id: u64,
        /// Ascending grid keys as a 1-column table.
        grid: Table,
    },
    /// Sub-boundary keys inside the given `(interval, per-shard budget)`
    /// targets (1-column table back).
    SplitRefine {
        /// Handle from [`Response::SplitOpened`].
        id: u64,
        /// Ascending grid keys as a 1-column table.
        grid: Table,
        /// `(interval index, key budget)` pairs.
        targets: Vec<(u32, u32)>,
    },
    /// The shard's run-compressed contribution: full rows for retained
    /// intervals, one compressed partial per non-empty pruned interval.
    SplitFetch {
        /// Handle from [`Response::SplitOpened`].
        id: u64,
        /// Ascending grid keys as a 1-column table.
        grid: Table,
        /// Per-interval retention decisions, parallel to the grid.
        retain: Vec<bool>,
    },
    /// Delta variant of [`Request::SplitSummaries`] (v4): the coordinator
    /// caches the previous round's per-interval summaries per shard and
    /// asks only for the intervals the refined grid *changed* — an
    /// interval's summary is a pure function of its absolute row range,
    /// so intervals whose bounding keys survived refinement are
    /// bit-identical and need not be recomputed or re-shipped. The reply
    /// is [`Response::Table`] carrying only the changed intervals'
    /// summaries, in `changed` order.
    SplitSummariesDelta {
        /// Handle from [`Response::SplitOpened`].
        id: u64,
        /// Ascending grid keys as a 1-column table (the *full* grid; the
        /// delta is in which intervals are summarized, not the keys).
        grid: Table,
        /// Strictly ascending interval indices into the grid to summarize.
        changed: Vec<u32>,
    },
    /// Fused [`Request::SplitOpen`] + [`Request::SplitBoundaries`] (v4):
    /// opens the handle and returns the first `k` equal-count boundary
    /// keys in one round trip ([`Response::SplitOpenedBounds`]), batching
    /// the split protocol's opening broadcast into a single frame per
    /// shard. Dense fallback still answers [`Response::Table`].
    SplitOpenBounds {
        /// The absorbed inner query, as text.
        sql: String,
        /// Column index of the single group key.
        key_col: u32,
        /// Column index of split component 0.
        c0_col: u32,
        /// Column index of split component 1.
        c1_col: u32,
        /// Per-column [`crate::backend::split::MergeSpec`] wire tags.
        specs: Vec<u8>,
        /// Number of boundary keys requested.
        k: u32,
    },
    /// Release a split handle's server-side state.
    SplitClose {
        /// Handle from [`Response::SplitOpened`].
        id: u64,
    },
    /// Submit a training job; answered with [`Response::JobSubmitted`]
    /// (the job id) or [`Response::Busy`] when admission control rejects
    /// it. Training runs on a background worker; poll for progress.
    SubmitJob {
        /// The job: graph, target, parameters.
        spec: Box<JobSpec>,
    },
    /// Current state of a job; answered with [`Response::JobState`]. Any
    /// connection may poll any job id.
    PollJob {
        /// Id from [`Response::JobSubmitted`].
        id: u64,
    },
    /// Cancel a queued or running job. Idempotent: cancelling a finished
    /// or already-cancelled job answers its terminal state unchanged.
    CancelJob {
        /// Id from [`Response::JobSubmitted`].
        id: u64,
    },
    /// Score a batch of predict keys against deployed message tables;
    /// answered with [`Response::Scores`]. Either the compiled tables of
    /// a `Done` job (`job`) or an inline [`ScorerSpec`] naming
    /// server-resident tables (`spec`) — exactly one must be set.
    PredictBatch {
        /// Score against this finished job's compiled message tables.
        job: Option<u64>,
        /// Score against these server-resident tables directly.
        spec: Option<Box<ScorerSpec>>,
        /// The predict keys.
        keys: Vec<i64>,
        /// `true`: shard-partial scores accumulated from `0.0` (the
        /// caller adds the initial score once per found key); `false`:
        /// full scores starting from the model's initial score.
        partial: bool,
    },
}

/// One server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake answer: what the server's engine supports.
    Caps {
        /// Whether the server accepts `SWAP COLUMN` statements.
        column_swap: bool,
    },
    /// A result table (bit-exact columnar block).
    Table(Table),
    /// Success without a payload.
    Unit,
    /// A list of names.
    Names(Vec<String>),
    /// A column's data type.
    Dtype(DataType),
    /// A boolean answer.
    Bool(bool),
    /// A row count.
    Count(u64),
    /// The engine error the statement produced, variant preserved.
    Err(EngineError),
    /// Reply to [`Request::SplitOpen`] when the protocol applies:
    /// `(handle id, rows)`. When the shard's data disqualifies the
    /// protocol (NULL components), the server answers with
    /// [`Response::Table`] carrying the absorbed result instead, so the
    /// dense fallback costs no second execution.
    SplitOpened(u64, u64),
    /// Reply to [`Request::SplitOpenBounds`] when the protocol applies:
    /// the handle, its row count, and the first equal-count boundary keys
    /// as a 1-column table. Dense fallback answers [`Response::Table`],
    /// exactly as for [`Request::SplitOpen`].
    SplitOpenedBounds {
        /// Handle id for subsequent split requests.
        id: u64,
        /// Rows behind the handle.
        rows: u64,
        /// Equal-count boundary keys (1-column table).
        bounds: Table,
    },
    /// Reply to [`Request::SubmitJob`]: the job id to poll.
    JobSubmitted(u64),
    /// Reply to [`Request::PollJob`] / [`Request::CancelJob`]: the job's
    /// current state.
    JobState {
        /// State tag: 0 queued, 1 running, 2 done, 3 failed, 4 cancelled.
        state: u8,
        /// Boosting iterations completed so far.
        iterations: u64,
        /// Failure message (empty unless failed).
        message: String,
    },
    /// Typed admission-control rejection (too many jobs, session budget
    /// exhausted). Deliberately *not* an [`EngineError`]: the connection
    /// stays healthy and the client may retry later.
    Busy(String),
    /// Reply to [`Request::PredictBatch`]: per key, whether its tuple is
    /// in `R⋈` and its (partial) score. Parallel to the request's keys.
    Scores {
        /// `found[i]`: key `i` is present in the join.
        found: Vec<bool>,
        /// `scores[i]`: the score (0.0 when not found).
        scores: Vec<f64>,
    },
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Write one `[u32 LE length][payload]` frame. Returns the total number of
/// bytes put on the wire (`payload.len() + 4`).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<usize> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(payload.len() + 4)
}

/// Read one frame; fails on EOF, short reads and oversized lengths.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

// ---------------------------------------------------------------------------
// Checked reader
// ---------------------------------------------------------------------------

/// Cursor over a received payload with *checked* reads: a truncated or
/// corrupt frame surfaces as a decode error, never a panic — a killed
/// server must not take the client down with it.
struct Reader<'a> {
    buf: &'a [u8],
}

type DecodeResult<T> = Result<T, EngineError>;

fn corrupt(what: &str) -> EngineError {
    EngineError::Other(format!("wire decode: {what}"))
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() < n {
            return Err(corrupt("truncated frame"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Length-checked count of fixed-size items: guards allocations
    /// against frames whose headers promise more data than they carry.
    fn count(&mut self, item_bytes: usize) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(item_bytes.max(1)) > self.buf.len() {
            return Err(corrupt("count exceeds frame size"));
        }
        Ok(n)
    }

    fn string(&mut self) -> DecodeResult<String> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }

    /// Pre-allocation guard: the next `n` items of `item_bytes` each must
    /// fit in the remaining buffer.
    fn ensure(&self, n: usize, item_bytes: usize) -> DecodeResult<()> {
        if n.saturating_mul(item_bytes) > self.buf.len() {
            return Err(corrupt("announced length exceeds frame size"));
        }
        Ok(())
    }

    /// Bytes not yet consumed (for fields optional at the tail of a
    /// message, e.g. the pre-v3 `Hello` without a resume token).
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn done(&self) -> DecodeResult<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes after message"))
        }
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Table codec
// ---------------------------------------------------------------------------

const DATA_INT: u8 = 0;
const DATA_FLOAT: u8 = 1;
const DATA_STR: u8 = 2;

/// Append a columnar block encoding of `t` to `buf`. Bit-exact: floats go
/// by bit pattern, string dictionaries keep their order and codes.
pub fn encode_table(t: &Table, buf: &mut Vec<u8>) {
    buf.put_u32_le(t.num_columns() as u32);
    buf.put_u64_le(t.num_rows() as u64);
    for (meta, col) in t.meta.iter().zip(&t.columns) {
        match &meta.qualifier {
            None => buf.put_u8(0),
            Some(q) => {
                buf.put_u8(1);
                put_string(buf, q);
            }
        }
        put_string(buf, &meta.name);
        match &col.data {
            ColumnData::Int(v) => {
                buf.put_u8(DATA_INT);
                for &x in v {
                    buf.put_i64_le(x);
                }
            }
            ColumnData::Float(v) => {
                buf.put_u8(DATA_FLOAT);
                for &x in v {
                    buf.put_u64_le(x.to_bits());
                }
            }
            ColumnData::Str { dict, codes } => {
                buf.put_u8(DATA_STR);
                buf.put_u32_le(dict.len() as u32);
                for s in dict {
                    put_string(buf, s);
                }
                for &c in codes {
                    buf.put_u32_le(c);
                }
            }
        }
        match &col.validity {
            None => buf.put_u8(0),
            Some(mask) => {
                buf.put_u8(1);
                // Packed bitmap, LSB-first within each byte.
                let mut byte = 0u8;
                for (i, &ok) in mask.iter().enumerate() {
                    if ok {
                        byte |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        buf.put_u8(byte);
                        byte = 0;
                    }
                }
                if mask.len() % 8 != 0 {
                    buf.put_u8(byte);
                }
            }
        }
    }
}

fn decode_column(r: &mut Reader<'_>, nrows: usize) -> DecodeResult<Column> {
    let data = match r.u8()? {
        DATA_INT => {
            r.ensure(nrows, 8)?;
            let mut v = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                v.push(r.i64()?);
            }
            ColumnData::Int(v)
        }
        DATA_FLOAT => {
            r.ensure(nrows, 8)?;
            let mut v = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                v.push(f64::from_bits(r.u64()?));
            }
            ColumnData::Float(v)
        }
        DATA_STR => {
            let ndict = r.count(4)?;
            let mut dict = Vec::with_capacity(ndict);
            for _ in 0..ndict {
                dict.push(r.string()?);
            }
            r.ensure(nrows, 4)?;
            let mut codes = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let c = r.u32()?;
                if c as usize >= ndict {
                    return Err(corrupt("string code out of dictionary range"));
                }
                codes.push(c);
            }
            ColumnData::Str { dict, codes }
        }
        _ => return Err(corrupt("unknown column data tag")),
    };
    let validity = match r.u8()? {
        0 => None,
        1 => {
            let bytes = r.take(nrows.div_ceil(8))?;
            Some(
                (0..nrows)
                    .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
                    .collect(),
            )
        }
        _ => return Err(corrupt("unknown validity tag")),
    };
    Ok(Column { data, validity })
}

/// Decode a columnar block produced by [`encode_table`].
fn decode_table(r: &mut Reader<'_>) -> DecodeResult<Table> {
    let ncols = r.count(1)?;
    let nrows = r.u64()? as usize;
    // Each row needs at least one byte per column in the frame.
    if nrows.saturating_mul(ncols.max(1)) > (MAX_FRAME as usize) * 8 {
        return Err(corrupt("row count exceeds frame capacity"));
    }
    let mut t = Table::new();
    for _ in 0..ncols {
        let qualifier = match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            _ => return Err(corrupt("unknown qualifier tag")),
        };
        let name = r.string()?;
        let col = decode_column(r, nrows)?;
        let meta = match qualifier {
            None => ColumnMeta::new(name),
            Some(q) => ColumnMeta::qualified(q, name),
        };
        t.push_column(meta, col);
    }
    Ok(t)
}

/// Standalone table decode (the proptest entry point): the whole buffer
/// must be one encoded table.
pub fn decode_table_bytes(bytes: &[u8]) -> DecodeResult<Table> {
    let mut r = Reader::new(bytes);
    let t = decode_table(&mut r)?;
    r.done()?;
    Ok(t)
}

/// Standalone table encode (the proptest entry point).
pub fn encode_table_bytes(t: &Table) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_table(t, &mut buf);
    buf
}

// ---------------------------------------------------------------------------
// Error codec
// ---------------------------------------------------------------------------

fn encode_engine_error(e: &EngineError, buf: &mut Vec<u8>) {
    let (tag, msg): (u8, &str) = match e {
        EngineError::Parse(m) => (0, m),
        EngineError::UnknownTable(m) => (1, m),
        EngineError::TableExists(m) => (2, m),
        EngineError::UnknownColumn(m) => (3, m),
        EngineError::TypeMismatch(m) => (4, m),
        EngineError::Other(m) => (5, m),
    };
    buf.put_u8(tag);
    put_string(buf, msg);
}

fn decode_engine_error(r: &mut Reader<'_>) -> DecodeResult<EngineError> {
    let tag = r.u8()?;
    let msg = r.string()?;
    Ok(match tag {
        0 => EngineError::Parse(msg),
        1 => EngineError::UnknownTable(msg),
        2 => EngineError::TableExists(msg),
        3 => EngineError::UnknownColumn(msg),
        4 => EngineError::TypeMismatch(msg),
        5 => EngineError::Other(msg),
        _ => return Err(corrupt("unknown error tag")),
    })
}

// ---------------------------------------------------------------------------
// Job / scorer codecs
// ---------------------------------------------------------------------------

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.put_u64_le(x.to_bits());
}

fn put_strings(buf: &mut Vec<u8>, ss: &[String]) {
    buf.put_u32_le(ss.len() as u32);
    for s in ss {
        put_string(buf, s);
    }
}

fn read_f64(r: &mut Reader<'_>) -> DecodeResult<f64> {
    Ok(f64::from_bits(r.u64()?))
}

fn read_strings(r: &mut Reader<'_>) -> DecodeResult<Vec<String>> {
    let n = r.count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.string()?);
    }
    Ok(out)
}

fn encode_scorer_spec(spec: &ScorerSpec, buf: &mut Vec<u8>) {
    put_f64(buf, spec.init_score);
    put_f64(buf, spec.learning_rate);
    buf.put_u32_le(spec.leaf_values.len() as u32);
    for tree in &spec.leaf_values {
        buf.put_u32_le(tree.len() as u32);
        for &v in tree {
            put_f64(buf, v);
        }
    }
    put_string(buf, &spec.fact_table);
    put_string(buf, &spec.key_column);
    put_strings(buf, &spec.dim_tables);
}

fn decode_scorer_spec(r: &mut Reader<'_>) -> DecodeResult<ScorerSpec> {
    let init_score = read_f64(r)?;
    let learning_rate = read_f64(r)?;
    let nt = r.count(4)?;
    let mut leaf_values = Vec::with_capacity(nt);
    for _ in 0..nt {
        let nl = r.count(8)?;
        let mut tree = Vec::with_capacity(nl);
        for _ in 0..nl {
            tree.push(read_f64(r)?);
        }
        leaf_values.push(tree);
    }
    Ok(ScorerSpec {
        init_score,
        learning_rate,
        leaf_values,
        fact_table: r.string()?,
        key_column: r.string()?,
        dim_tables: read_strings(r)?,
    })
}

fn encode_job_spec(spec: &JobSpec, buf: &mut Vec<u8>) {
    buf.put_u32_le(spec.relations.len() as u32);
    for (name, feats) in &spec.relations {
        put_string(buf, name);
        put_strings(buf, feats);
    }
    buf.put_u32_le(spec.edges.len() as u32);
    for (a, b, keys) in &spec.edges {
        put_string(buf, a);
        put_string(buf, b);
        put_strings(buf, keys);
    }
    put_string(buf, &spec.target_relation);
    put_string(buf, &spec.target_column);
    match &spec.key_column {
        None => buf.put_u8(0),
        Some(k) => {
            buf.put_u8(1);
            put_string(buf, k);
        }
    }
    buf.put_u32_le(spec.num_iterations);
    buf.put_u32_le(spec.num_leaves);
    put_f64(buf, spec.learning_rate);
    put_f64(buf, spec.leaf_quantization);
    buf.put_u64_le(spec.seed);
}

fn decode_job_spec(r: &mut Reader<'_>) -> DecodeResult<JobSpec> {
    let nr = r.count(4)?;
    let mut relations = Vec::with_capacity(nr);
    for _ in 0..nr {
        let name = r.string()?;
        relations.push((name, read_strings(r)?));
    }
    let ne = r.count(4)?;
    let mut edges = Vec::with_capacity(ne);
    for _ in 0..ne {
        let a = r.string()?;
        let b = r.string()?;
        edges.push((a, b, read_strings(r)?));
    }
    Ok(JobSpec {
        relations,
        edges,
        target_relation: r.string()?,
        target_column: r.string()?,
        key_column: match r.u8()? {
            0 => None,
            1 => Some(r.string()?),
            _ => return Err(corrupt("unknown option tag")),
        },
        num_iterations: r.u32()?,
        num_leaves: r.u32()?,
        learning_rate: read_f64(r)?,
        leaf_quantization: read_f64(r)?,
        seed: r.u64()?,
    })
}

// ---------------------------------------------------------------------------
// Durable registry blobs
// ---------------------------------------------------------------------------
//
// The server's durable job registry (`jb_sys_jobs`, see
// [`crate::backend::remote`]) stores job specs, compiled scorers and
// partial-forest training checkpoints as byte blobs inside engine string
// columns. The blobs reuse the wire codecs, so every float survives by
// bit pattern — the resume-bit-identity argument needs the recovered
// forest to be *exactly* the one that was checkpointed.

/// Encode a [`JobSpec`] as a standalone blob for the durable registry.
pub(crate) fn job_spec_bytes(spec: &JobSpec) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_job_spec(spec, &mut buf);
    buf
}

/// Decode a registry [`JobSpec`] blob (whole-buffer, no trailing bytes).
pub(crate) fn job_spec_from_bytes(bytes: &[u8]) -> DecodeResult<JobSpec> {
    let mut r = Reader::new(bytes);
    let spec = decode_job_spec(&mut r)?;
    r.done()?;
    Ok(spec)
}

/// Encode a [`ScorerSpec`] as a standalone blob for the durable registry.
pub(crate) fn scorer_spec_bytes(spec: &ScorerSpec) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_scorer_spec(spec, &mut buf);
    buf
}

/// Decode a registry [`ScorerSpec`] blob (whole-buffer).
pub(crate) fn scorer_spec_from_bytes(bytes: &[u8]) -> DecodeResult<ScorerSpec> {
    let mut r = Reader::new(bytes);
    let spec = decode_scorer_spec(&mut r)?;
    r.done()?;
    Ok(spec)
}

const SPLIT_LEAF: u8 = 0;
const SPLIT_LTEQ: u8 = 1;
const SPLIT_EQ_NUM: u8 = 2;
const SPLIT_EQ_STR: u8 = 3;

/// Encode a (possibly partial) forest as a standalone blob: the training
/// checkpoint the durable job registry persists every k iterations.
pub(crate) fn forest_bytes(trees: &[Tree]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u32_le(trees.len() as u32);
    for tree in trees {
        buf.put_u32_le(tree.nodes.len() as u32);
        for node in &tree.nodes {
            match &node.split {
                None => buf.put_u8(SPLIT_LEAF),
                Some(split) => {
                    match &split.cond {
                        SplitCondition::LtEq(v) => {
                            buf.put_u8(SPLIT_LTEQ);
                            put_f64(&mut buf, *v);
                        }
                        SplitCondition::EqNum(v) => {
                            buf.put_u8(SPLIT_EQ_NUM);
                            put_f64(&mut buf, *v);
                        }
                        SplitCondition::EqStr(s) => {
                            buf.put_u8(SPLIT_EQ_STR);
                            put_string(&mut buf, s);
                        }
                    }
                    put_string(&mut buf, &split.feature);
                    put_string(&mut buf, &split.relation);
                    buf.put_u8(split.default_left as u8);
                }
            }
            buf.put_u32_le(node.left as u32);
            buf.put_u32_le(node.right as u32);
            put_f64(&mut buf, node.value);
            put_f64(&mut buf, node.weight);
            buf.put_u32_le(node.depth as u32);
        }
    }
    buf
}

/// Decode a registry forest blob (whole-buffer). Bit-exact inverse of
/// [`forest_bytes`].
pub(crate) fn forest_from_bytes(bytes: &[u8]) -> DecodeResult<Vec<Tree>> {
    let mut r = Reader::new(bytes);
    let ntrees = r.count(4)?;
    let mut trees = Vec::with_capacity(ntrees);
    for _ in 0..ntrees {
        let nnodes = r.count(16)?;
        let mut nodes = Vec::with_capacity(nnodes);
        for _ in 0..nnodes {
            let tag = r.u8()?;
            let split = match tag {
                SPLIT_LEAF => None,
                SPLIT_LTEQ | SPLIT_EQ_NUM | SPLIT_EQ_STR => {
                    let cond = match tag {
                        SPLIT_LTEQ => SplitCondition::LtEq(read_f64(&mut r)?),
                        SPLIT_EQ_NUM => SplitCondition::EqNum(read_f64(&mut r)?),
                        _ => SplitCondition::EqStr(r.string()?),
                    };
                    Some(Split {
                        feature: r.string()?,
                        relation: r.string()?,
                        cond,
                        default_left: match r.u8()? {
                            0 => false,
                            1 => true,
                            _ => return Err(corrupt("bad default_left flag")),
                        },
                    })
                }
                _ => return Err(corrupt("unknown split tag")),
            };
            nodes.push(TreeNode {
                split,
                left: r.u32()? as usize,
                right: r.u32()? as usize,
                value: read_f64(&mut r)?,
                weight: read_f64(&mut r)?,
                depth: r.u32()? as usize,
            });
        }
        trees.push(Tree { nodes });
    }
    r.done()?;
    Ok(trees)
}

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
    }
}

fn dtype_from(tag: u8) -> DecodeResult<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        _ => return Err(corrupt("unknown dtype tag")),
    })
}

// ---------------------------------------------------------------------------
// Request / Response codecs
// ---------------------------------------------------------------------------

const REQ_HELLO: u8 = 0;
const REQ_EXECUTE: u8 = 1;
const REQ_CREATE_TABLE: u8 = 2;
const REQ_SNAPSHOT: u8 = 3;
const REQ_COLUMN_NAMES: u8 = 4;
const REQ_COLUMN_DTYPE: u8 = 5;
const REQ_HAS_TABLE: u8 = 6;
const REQ_ROW_COUNT: u8 = 7;
const REQ_DROP_IF_EXISTS: u8 = 8;
const REQ_GATHER_ROWS: u8 = 9;
const REQ_TABLE_NAMES: u8 = 10;
const REQ_SPLIT_OPEN: u8 = 11;
const REQ_SPLIT_BOUNDARIES: u8 = 12;
const REQ_SPLIT_SUMMARIES: u8 = 13;
const REQ_SPLIT_REFINE: u8 = 14;
const REQ_SPLIT_FETCH: u8 = 15;
const REQ_SPLIT_CLOSE: u8 = 16;
const REQ_SUBMIT_JOB: u8 = 17;
const REQ_POLL_JOB: u8 = 18;
const REQ_CANCEL_JOB: u8 = 19;
const REQ_PREDICT_BATCH: u8 = 20;
const REQ_SPLIT_SUMMARIES_DELTA: u8 = 21;
const REQ_SPLIT_OPEN_BOUNDS: u8 = 22;

/// Encode one request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Hello {
            magic,
            version,
            token,
        } => {
            buf.put_u8(REQ_HELLO);
            buf.put_u32_le(*magic);
            buf.put_u32_le(*version);
            buf.put_u64_le(*token);
        }
        Request::Execute { sql } => {
            buf.put_u8(REQ_EXECUTE);
            put_string(&mut buf, sql);
        }
        Request::CreateTable { name, table } => {
            buf.put_u8(REQ_CREATE_TABLE);
            put_string(&mut buf, name);
            encode_table(table, &mut buf);
        }
        Request::Snapshot { name } => {
            buf.put_u8(REQ_SNAPSHOT);
            put_string(&mut buf, name);
        }
        Request::ColumnNames { name } => {
            buf.put_u8(REQ_COLUMN_NAMES);
            put_string(&mut buf, name);
        }
        Request::ColumnDtype { table, column } => {
            buf.put_u8(REQ_COLUMN_DTYPE);
            put_string(&mut buf, table);
            put_string(&mut buf, column);
        }
        Request::HasTable { name } => {
            buf.put_u8(REQ_HAS_TABLE);
            put_string(&mut buf, name);
        }
        Request::RowCount { name } => {
            buf.put_u8(REQ_ROW_COUNT);
            put_string(&mut buf, name);
        }
        Request::DropTableIfExists { name } => {
            buf.put_u8(REQ_DROP_IF_EXISTS);
            put_string(&mut buf, name);
        }
        Request::GatherRows { name, rows } => {
            buf.put_u8(REQ_GATHER_ROWS);
            put_string(&mut buf, name);
            buf.put_u32_le(rows.len() as u32);
            for &x in rows {
                buf.put_u32_le(x);
            }
        }
        Request::TableNames => buf.put_u8(REQ_TABLE_NAMES),
        Request::SplitOpen {
            sql,
            key_col,
            c0_col,
            c1_col,
            specs,
        } => {
            buf.put_u8(REQ_SPLIT_OPEN);
            put_string(&mut buf, sql);
            buf.put_u32_le(*key_col);
            buf.put_u32_le(*c0_col);
            buf.put_u32_le(*c1_col);
            buf.put_u32_le(specs.len() as u32);
            buf.put_slice(specs);
        }
        Request::SplitBoundaries { id, k } => {
            buf.put_u8(REQ_SPLIT_BOUNDARIES);
            buf.put_u64_le(*id);
            buf.put_u32_le(*k);
        }
        Request::SplitSummaries { id, grid } => {
            buf.put_u8(REQ_SPLIT_SUMMARIES);
            buf.put_u64_le(*id);
            encode_table(grid, &mut buf);
        }
        Request::SplitRefine { id, grid, targets } => {
            buf.put_u8(REQ_SPLIT_REFINE);
            buf.put_u64_le(*id);
            encode_table(grid, &mut buf);
            buf.put_u32_le(targets.len() as u32);
            for &(j, per) in targets {
                buf.put_u32_le(j);
                buf.put_u32_le(per);
            }
        }
        Request::SplitFetch { id, grid, retain } => {
            buf.put_u8(REQ_SPLIT_FETCH);
            buf.put_u64_le(*id);
            encode_table(grid, &mut buf);
            buf.put_u32_le(retain.len() as u32);
            for &r in retain {
                buf.put_u8(u8::from(r));
            }
        }
        Request::SplitSummariesDelta { id, grid, changed } => {
            buf.put_u8(REQ_SPLIT_SUMMARIES_DELTA);
            buf.put_u64_le(*id);
            encode_table(grid, &mut buf);
            buf.put_u32_le(changed.len() as u32);
            for &j in changed {
                buf.put_u32_le(j);
            }
        }
        Request::SplitOpenBounds {
            sql,
            key_col,
            c0_col,
            c1_col,
            specs,
            k,
        } => {
            buf.put_u8(REQ_SPLIT_OPEN_BOUNDS);
            put_string(&mut buf, sql);
            buf.put_u32_le(*key_col);
            buf.put_u32_le(*c0_col);
            buf.put_u32_le(*c1_col);
            buf.put_u32_le(specs.len() as u32);
            buf.put_slice(specs);
            buf.put_u32_le(*k);
        }
        Request::SplitClose { id } => {
            buf.put_u8(REQ_SPLIT_CLOSE);
            buf.put_u64_le(*id);
        }
        Request::SubmitJob { spec } => {
            buf.put_u8(REQ_SUBMIT_JOB);
            encode_job_spec(spec, &mut buf);
        }
        Request::PollJob { id } => {
            buf.put_u8(REQ_POLL_JOB);
            buf.put_u64_le(*id);
        }
        Request::CancelJob { id } => {
            buf.put_u8(REQ_CANCEL_JOB);
            buf.put_u64_le(*id);
        }
        Request::PredictBatch {
            job,
            spec,
            keys,
            partial,
        } => {
            buf.put_u8(REQ_PREDICT_BATCH);
            match job {
                None => buf.put_u8(0),
                Some(id) => {
                    buf.put_u8(1);
                    buf.put_u64_le(*id);
                }
            }
            match spec {
                None => buf.put_u8(0),
                Some(s) => {
                    buf.put_u8(1);
                    encode_scorer_spec(s, &mut buf);
                }
            }
            buf.put_u32_le(keys.len() as u32);
            for &k in keys {
                buf.put_i64_le(k);
            }
            buf.put_u8(u8::from(*partial));
        }
    }
    buf
}

/// Decode one request frame payload.
pub fn decode_request(bytes: &[u8]) -> DecodeResult<Request> {
    let mut r = Reader::new(bytes);
    let req = match r.u8()? {
        REQ_HELLO => {
            let magic = r.u32()?;
            let version = r.u32()?;
            // Pre-v3 Hellos carry no token; default it so the server's
            // version check reports a clean mismatch instead of a decode
            // error.
            let token = if r.remaining() >= 8 { r.u64()? } else { 0 };
            Request::Hello {
                magic,
                version,
                token,
            }
        }
        REQ_EXECUTE => Request::Execute { sql: r.string()? },
        REQ_CREATE_TABLE => {
            let name = r.string()?;
            let table = decode_table(&mut r)?;
            Request::CreateTable { name, table }
        }
        REQ_SNAPSHOT => Request::Snapshot { name: r.string()? },
        REQ_COLUMN_NAMES => Request::ColumnNames { name: r.string()? },
        REQ_COLUMN_DTYPE => Request::ColumnDtype {
            table: r.string()?,
            column: r.string()?,
        },
        REQ_HAS_TABLE => Request::HasTable { name: r.string()? },
        REQ_ROW_COUNT => Request::RowCount { name: r.string()? },
        REQ_DROP_IF_EXISTS => Request::DropTableIfExists { name: r.string()? },
        REQ_GATHER_ROWS => {
            let name = r.string()?;
            let n = r.count(4)?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                rows.push(r.u32()?);
            }
            Request::GatherRows { name, rows }
        }
        REQ_TABLE_NAMES => Request::TableNames,
        REQ_SPLIT_OPEN => {
            let sql = r.string()?;
            let key_col = r.u32()?;
            let c0_col = r.u32()?;
            let c1_col = r.u32()?;
            let n = r.count(1)?;
            let specs = r.take(n)?.to_vec();
            Request::SplitOpen {
                sql,
                key_col,
                c0_col,
                c1_col,
                specs,
            }
        }
        REQ_SPLIT_BOUNDARIES => Request::SplitBoundaries {
            id: r.u64()?,
            k: r.u32()?,
        },
        REQ_SPLIT_SUMMARIES => {
            let id = r.u64()?;
            let grid = decode_table(&mut r)?;
            Request::SplitSummaries { id, grid }
        }
        REQ_SPLIT_REFINE => {
            let id = r.u64()?;
            let grid = decode_table(&mut r)?;
            let n = r.count(8)?;
            let mut targets = Vec::with_capacity(n);
            for _ in 0..n {
                targets.push((r.u32()?, r.u32()?));
            }
            Request::SplitRefine { id, grid, targets }
        }
        REQ_SPLIT_FETCH => {
            let id = r.u64()?;
            let grid = decode_table(&mut r)?;
            let n = r.count(1)?;
            let retain = r.take(n)?.iter().map(|&b| b != 0).collect();
            Request::SplitFetch { id, grid, retain }
        }
        REQ_SPLIT_SUMMARIES_DELTA => {
            let id = r.u64()?;
            let grid = decode_table(&mut r)?;
            let n = r.count(4)?;
            let mut changed = Vec::with_capacity(n);
            for _ in 0..n {
                changed.push(r.u32()?);
            }
            // Strict ascent is part of the contract: it makes the reply's
            // interval order unambiguous and rejects duplicate work.
            if changed.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt("delta intervals not strictly ascending"));
            }
            Request::SplitSummariesDelta { id, grid, changed }
        }
        REQ_SPLIT_OPEN_BOUNDS => {
            let sql = r.string()?;
            let key_col = r.u32()?;
            let c0_col = r.u32()?;
            let c1_col = r.u32()?;
            let n = r.count(1)?;
            let specs = r.take(n)?.to_vec();
            let k = r.u32()?;
            Request::SplitOpenBounds {
                sql,
                key_col,
                c0_col,
                c1_col,
                specs,
                k,
            }
        }
        REQ_SPLIT_CLOSE => Request::SplitClose { id: r.u64()? },
        REQ_SUBMIT_JOB => Request::SubmitJob {
            spec: Box::new(decode_job_spec(&mut r)?),
        },
        REQ_POLL_JOB => Request::PollJob { id: r.u64()? },
        REQ_CANCEL_JOB => Request::CancelJob { id: r.u64()? },
        REQ_PREDICT_BATCH => {
            let job = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                _ => return Err(corrupt("unknown option tag")),
            };
            let spec = match r.u8()? {
                0 => None,
                1 => Some(Box::new(decode_scorer_spec(&mut r)?)),
                _ => return Err(corrupt("unknown option tag")),
            };
            let n = r.count(8)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.i64()?);
            }
            let partial = r.u8()? != 0;
            Request::PredictBatch {
                job,
                spec,
                keys,
                partial,
            }
        }
        _ => return Err(corrupt("unknown request tag")),
    };
    r.done()?;
    Ok(req)
}

const RESP_CAPS: u8 = 0;
const RESP_TABLE: u8 = 1;
const RESP_UNIT: u8 = 2;
const RESP_NAMES: u8 = 3;
const RESP_DTYPE: u8 = 4;
const RESP_BOOL: u8 = 5;
const RESP_COUNT: u8 = 6;
const RESP_ERR: u8 = 7;
const RESP_SPLIT_OPENED: u8 = 8;
const RESP_JOB_SUBMITTED: u8 = 9;
const RESP_JOB_STATE: u8 = 10;
const RESP_BUSY: u8 = 11;
const RESP_SCORES: u8 = 12;
const RESP_SPLIT_OPENED_BOUNDS: u8 = 13;

/// Encode one response into a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Caps { column_swap } => {
            buf.put_u8(RESP_CAPS);
            buf.put_u8(u8::from(*column_swap));
        }
        Response::Table(t) => {
            buf.put_u8(RESP_TABLE);
            encode_table(t, &mut buf);
        }
        Response::Unit => buf.put_u8(RESP_UNIT),
        Response::Names(names) => {
            buf.put_u8(RESP_NAMES);
            buf.put_u32_le(names.len() as u32);
            for n in names {
                put_string(&mut buf, n);
            }
        }
        Response::Dtype(d) => {
            buf.put_u8(RESP_DTYPE);
            buf.put_u8(dtype_tag(*d));
        }
        Response::Bool(b) => {
            buf.put_u8(RESP_BOOL);
            buf.put_u8(u8::from(*b));
        }
        Response::Count(c) => {
            buf.put_u8(RESP_COUNT);
            buf.put_u64_le(*c);
        }
        Response::Err(e) => {
            buf.put_u8(RESP_ERR);
            encode_engine_error(e, &mut buf);
        }
        Response::SplitOpened(id, rows) => {
            buf.put_u8(RESP_SPLIT_OPENED);
            buf.put_u64_le(*id);
            buf.put_u64_le(*rows);
        }
        Response::SplitOpenedBounds { id, rows, bounds } => {
            buf.put_u8(RESP_SPLIT_OPENED_BOUNDS);
            buf.put_u64_le(*id);
            buf.put_u64_le(*rows);
            encode_table(bounds, &mut buf);
        }
        Response::JobSubmitted(id) => {
            buf.put_u8(RESP_JOB_SUBMITTED);
            buf.put_u64_le(*id);
        }
        Response::JobState {
            state,
            iterations,
            message,
        } => {
            buf.put_u8(RESP_JOB_STATE);
            buf.put_u8(*state);
            buf.put_u64_le(*iterations);
            put_string(&mut buf, message);
        }
        Response::Busy(reason) => {
            buf.put_u8(RESP_BUSY);
            put_string(&mut buf, reason);
        }
        Response::Scores { found, scores } => {
            buf.put_u8(RESP_SCORES);
            buf.put_u32_le(found.len() as u32);
            for (&f, &s) in found.iter().zip(scores) {
                buf.put_u8(u8::from(f));
                put_f64(&mut buf, s);
            }
        }
    }
    buf
}

/// Decode one response frame payload.
pub fn decode_response(bytes: &[u8]) -> DecodeResult<Response> {
    let mut r = Reader::new(bytes);
    let resp = match r.u8()? {
        RESP_CAPS => Response::Caps {
            column_swap: r.u8()? != 0,
        },
        RESP_TABLE => Response::Table(decode_table(&mut r)?),
        RESP_UNIT => Response::Unit,
        RESP_NAMES => {
            let n = r.count(4)?;
            let mut names = Vec::with_capacity(n);
            for _ in 0..n {
                names.push(r.string()?);
            }
            Response::Names(names)
        }
        RESP_DTYPE => Response::Dtype(dtype_from(r.u8()?)?),
        RESP_BOOL => Response::Bool(r.u8()? != 0),
        RESP_COUNT => Response::Count(r.u64()?),
        RESP_ERR => Response::Err(decode_engine_error(&mut r)?),
        RESP_SPLIT_OPENED => Response::SplitOpened(r.u64()?, r.u64()?),
        RESP_SPLIT_OPENED_BOUNDS => {
            let id = r.u64()?;
            let rows = r.u64()?;
            let bounds = decode_table(&mut r)?;
            Response::SplitOpenedBounds { id, rows, bounds }
        }
        RESP_JOB_SUBMITTED => Response::JobSubmitted(r.u64()?),
        RESP_JOB_STATE => {
            let state = r.u8()?;
            if state > 4 {
                return Err(corrupt("unknown job state tag"));
            }
            Response::JobState {
                state,
                iterations: r.u64()?,
                message: r.string()?,
            }
        }
        RESP_BUSY => Response::Busy(r.string()?),
        RESP_SCORES => {
            let n = r.count(9)?;
            let mut found = Vec::with_capacity(n);
            let mut scores = Vec::with_capacity(n);
            for _ in 0..n {
                found.push(r.u8()? != 0);
                scores.push(read_f64(&mut r)?);
            }
            Response::Scores { found, scores }
        }
        _ => return Err(corrupt("unknown response tag")),
    };
    r.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use joinboost_engine::Datum;

    fn sample_scorer_spec() -> ScorerSpec {
        ScorerSpec {
            init_score: 1.5,
            learning_rate: 0.5,
            leaf_values: vec![vec![-0.25, 0.75], vec![0.0]],
            fact_table: "jb_job1_msg_fact".into(),
            key_column: "sale_id".into(),
            dim_tables: vec!["jb_job1_msg_items".into(), "jb_job1_msg_dates".into()],
        }
    }

    fn sample_table() -> Table {
        let mut t = Table::new();
        t.push_column(ColumnMeta::new("a"), Column::int(vec![1, -5, i64::MAX]));
        t.push_column(
            ColumnMeta::qualified("q", "b"),
            Column {
                data: ColumnData::Float(vec![0.5, -0.0, f64::NAN]),
                validity: Some(vec![true, false, true]),
            },
        );
        t.push_column(
            ColumnMeta::new("c"),
            Column::str(vec!["x".into(), "".into(), "x".into()]),
        );
        t
    }

    #[test]
    fn table_roundtrips_bit_exactly() {
        let t = sample_table();
        let bytes = encode_table_bytes(&t);
        let back = decode_table_bytes(&bytes).unwrap();
        // Bit-exact: re-encoding the decoded table yields identical bytes
        // (PartialEq would miss NaN payloads and -0.0).
        assert_eq!(encode_table_bytes(&back), bytes);
        assert_eq!(back.num_rows(), 3);
        assert_eq!(back.meta, t.meta);
        assert_eq!(back.columns[1].get(1), Datum::Null);
    }

    #[test]
    fn empty_and_zero_column_tables_roundtrip() {
        for t in [
            Table::new(),
            Table::from_columns(vec![("x", Column::int(vec![]))]),
        ] {
            let bytes = encode_table_bytes(&t);
            let back = decode_table_bytes(&bytes).unwrap();
            assert_eq!(encode_table_bytes(&back), bytes);
            assert_eq!(back.num_rows(), 0);
            assert_eq!(back.num_columns(), t.num_columns());
        }
    }

    #[test]
    fn truncated_and_corrupt_frames_error_not_panic() {
        let t = sample_table();
        let bytes = encode_table_bytes(&t);
        for cut in 0..bytes.len() {
            assert!(decode_table_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // A frame announcing more rows than it carries must not allocate
        // or panic.
        let mut evil = Vec::new();
        evil.put_u32_le(1); // one column
        evil.put_u64_le(u64::MAX); // absurd row count
        assert!(decode_table_bytes(&evil).is_err());
        assert!(decode_request(&[99]).is_err());
        assert!(decode_response(&[99]).is_err());
    }

    #[test]
    fn requests_and_responses_roundtrip() {
        let reqs = vec![
            Request::Hello {
                magic: MAGIC,
                version: VERSION,
                token: 0x5eed_f00d_dead_beef,
            },
            Request::Execute {
                sql: "SELECT a, SUM(y) AS s FROM r GROUP BY a".into(),
            },
            Request::CreateTable {
                name: "t".into(),
                table: sample_table(),
            },
            Request::Snapshot { name: "t".into() },
            Request::ColumnNames { name: "t".into() },
            Request::ColumnDtype {
                table: "t".into(),
                column: "a".into(),
            },
            Request::HasTable { name: "t".into() },
            Request::RowCount { name: "t".into() },
            Request::DropTableIfExists { name: "t".into() },
            Request::GatherRows {
                name: "t".into(),
                rows: vec![2, 0, 2],
            },
            Request::TableNames,
            Request::SplitSummariesDelta {
                id: 3,
                grid: sample_table(),
                changed: vec![0, 2, 5],
            },
            Request::SplitOpenBounds {
                sql: "SELECT k, c0, c1 FROM r".into(),
                key_col: 0,
                c0_col: 1,
                c1_col: 2,
                specs: vec![0, 1, 2],
                k: 16,
            },
            Request::SubmitJob {
                spec: Box::new(JobSpec {
                    relations: vec![
                        ("sales".into(), vec![]),
                        ("items".into(), vec!["f_items".into()]),
                    ],
                    edges: vec![("sales".into(), "items".into(), vec!["items_id".into()])],
                    target_relation: "sales".into(),
                    target_column: "net_profit".into(),
                    key_column: Some("sale_id".into()),
                    ..JobSpec::default()
                }),
            },
            Request::PollJob { id: 7 },
            Request::CancelJob { id: u64::MAX },
            Request::PredictBatch {
                job: Some(7),
                spec: None,
                keys: vec![1, -1, i64::MAX],
                partial: true,
            },
            Request::PredictBatch {
                job: None,
                spec: Some(Box::new(sample_scorer_spec())),
                keys: vec![],
                partial: false,
            },
        ];
        for req in reqs {
            let enc = encode_request(&req);
            let back = decode_request(&enc).unwrap();
            // Compare via re-encoding: PartialEq on a NaN-bearing table
            // would reject a perfectly bit-exact round-trip.
            assert_eq!(encode_request(&back), enc, "{req:?}");
        }
        let resps = vec![
            Response::Caps { column_swap: true },
            Response::Table(sample_table()),
            Response::Unit,
            Response::Names(vec!["a".into(), "b".into()]),
            Response::Dtype(DataType::Str),
            Response::Bool(false),
            Response::Count(42),
            Response::Err(EngineError::UnknownTable("ghost".into())),
            Response::SplitOpened(3, 99),
            Response::SplitOpenedBounds {
                id: 3,
                rows: 99,
                bounds: sample_table(),
            },
            Response::JobSubmitted(12),
            Response::JobState {
                state: 3,
                iterations: 2,
                message: "boom".into(),
            },
            Response::Busy("4 jobs already running".into()),
            Response::Scores {
                found: vec![true, false, true],
                scores: vec![-0.0, 0.0, f64::NAN],
            },
        ];
        for resp in resps {
            let enc = encode_response(&resp);
            let back = decode_response(&enc).unwrap();
            // Compare via re-encoding (NaN-proof) and structurally.
            assert_eq!(encode_response(&back), enc, "{resp:?}");
        }
    }

    #[test]
    fn unsorted_delta_intervals_are_rejected() {
        for changed in [vec![2u32, 0, 5], vec![1, 1]] {
            let enc = encode_request(&Request::SplitSummariesDelta {
                id: 1,
                grid: sample_table(),
                changed,
            });
            assert!(decode_request(&enc).is_err());
        }
    }

    #[test]
    fn pre_v3_hello_without_token_decodes_with_token_zero() {
        // A v2 client's Hello stops after magic + version; the decoder
        // must surface it (token 0) so the server can answer with a
        // version-mismatch error rather than a decode error.
        let mut old = Vec::new();
        old.put_u8(0); // REQ_HELLO
        old.put_u32_le(MAGIC);
        old.put_u32_le(2);
        assert_eq!(
            decode_request(&old).unwrap(),
            Request::Hello {
                magic: MAGIC,
                version: 2,
                token: 0,
            }
        );
    }

    #[test]
    fn frames_roundtrip_over_a_byte_pipe() {
        let payload = encode_request(&Request::Execute {
            sql: "SELECT 1 AS one".into(),
        });
        let mut pipe = Vec::new();
        let sent = write_frame(&mut pipe, &payload).unwrap();
        assert_eq!(sent, payload.len() + 4);
        let mut cursor: &[u8] = &pipe;
        assert_eq!(read_frame(&mut cursor).unwrap(), payload);
        // Oversized length prefix is rejected before allocation.
        let mut evil: &[u8] = &(MAX_FRAME + 1).to_le_bytes();
        assert!(read_frame(&mut evil).is_err());
    }
}
